//! Declarative fault plans for the NetRS simulation (§III-C "Exception
//! handling", evaluated as a subsystem rather than an ad-hoc demo).
//!
//! A [`FaultPlan`] is a serde-serializable timeline of [`FaultEvent`]s —
//! server crashes/recoveries/slowdowns, link failures/degradations,
//! RSNode operator failures, packet-loss bursts — plus the client-side
//! [`RetryPolicy`] and the recovery-detection parameters. The simulator
//! schedules each timed event as an ordinary engine event, so runs stay
//! byte-for-byte deterministic per seed, and a plan with no events is
//! provably zero-cost: the run is identical to one with no plan at all.
//!
//! The run's availability outcome is summarized in
//! [`AvailabilityStats`]: timeouts, retries, duplicate-completion drops,
//! dropped copies, the p99 during the failed window, and time-to-recover
//! measured as the windowed mean latency re-entering a steady-state band.

#![forbid(unsafe_code)]

use netrs_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// A physical link in the fat-tree, as named by a fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkRef {
    /// The access link between a host and its ToR switch (both
    /// directions).
    HostUplink {
        /// The host id (see `netrs_topology::HostId`).
        host: u32,
    },
    /// The link between two directly connected switches (both
    /// directions; order does not matter).
    SwitchLink {
        /// One endpoint's switch id.
        a: u32,
        /// The other endpoint's switch id.
        b: u32,
    },
}

/// One injectable fault or recovery.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// A storage server fail-stops: its queue is lost, in-flight work is
    /// lost, and arrivals are dropped until it recovers.
    ServerCrash {
        /// The server index (0-based, `< servers`).
        server: u32,
    },
    /// A crashed server comes back empty.
    ServerRecover {
        /// The server index.
        server: u32,
    },
    /// A server's service rate is multiplied by `factor` (1.0 = nominal;
    /// 0.5 = half speed). Applies until the next `ServerSlowdown` (or a
    /// crash/recover cycle) for the same server.
    ServerSlowdown {
        /// The server index.
        server: u32,
        /// Service-rate multiplier, `> 0`.
        factor: f64,
    },
    /// A link goes dark: ECMP routes around it; hosts whose only path
    /// died are partitioned and their packets are dropped.
    LinkFail {
        /// The failed link.
        link: LinkRef,
    },
    /// A link's traversal latency is multiplied by `factor` (> 0).
    LinkDegrade {
        /// The degraded link.
        link: LinkRef,
        /// Latency multiplier, `> 0`.
        factor: f64,
    },
    /// A failed or degraded link returns to nominal.
    LinkRecover {
        /// The recovering link.
        link: LinkRef,
    },
    /// An RSNode operator fail-stops: packets steered to it blackhole
    /// until the controller detects the failure (after the plan's
    /// `detection_delay`) and degrades its traffic groups to DRS.
    OperatorFail {
        /// The switch hosting the operator.
        switch: u32,
    },
    /// A failed operator comes back; the controller restores its
    /// baseline traffic groups.
    OperatorRecover {
        /// The switch hosting the operator.
        switch: u32,
    },
    /// Every packet delivery is independently dropped with `probability`
    /// for `duration` of simulated time.
    PacketLossBurst {
        /// Per-delivery drop probability, in `[0, 1]`.
        probability: f64,
        /// How long the burst lasts.
        duration: SimDuration,
    },
}

/// A fault scheduled at a point on the simulation timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedFault {
    /// Simulated time (from the start of the run) at which the fault is
    /// injected.
    pub at: SimDuration,
    /// What happens.
    pub fault: FaultEvent,
}

/// Client-side request timeout and retry with capped exponential
/// backoff. Active for every scheme whenever a plan has events.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// How long a request may remain incomplete before the client acts.
    pub timeout: SimDuration,
    /// Retries per read before the request is abandoned and counted as
    /// timed out. Writes never retry: an incomplete write is abandoned
    /// at its first timeout.
    pub max_retries: u32,
    /// Multiplier on the previous wait for each successive check.
    pub backoff_factor: f64,
    /// Upper bound on any single backoff wait.
    pub max_backoff: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: SimDuration::from_millis(50),
            max_retries: 3,
            backoff_factor: 2.0,
            max_backoff: SimDuration::from_millis(400),
        }
    }
}

/// A complete fault scenario: the timeline plus the policies that govern
/// how clients and the controller react and how recovery is measured.
///
/// Deserialization is hand-written so plan files only need the `events`
/// timeline; every tuning knob falls back to its default when absent.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPlan {
    /// The fault timeline (any order; the engine sorts by time).
    pub events: Vec<TimedFault>,
    /// Client-side timeout/retry policy.
    pub retry: RetryPolicy,
    /// Time between an operator fail-stop and the controller rerouting
    /// its traffic groups to DRS (§III-C failover).
    pub detection_delay: SimDuration,
    /// Length of the sliding window used to detect recovery.
    pub recovery_window: SimDuration,
    /// The steady-state band: recovered once a disruption-free window's
    /// mean latency is at most `tolerance ×` the pre-fault mean.
    pub recovery_tolerance: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            events: Vec::new(),
            retry: RetryPolicy::default(),
            detection_delay: SimDuration::from_millis(1),
            recovery_window: SimDuration::from_millis(20),
            recovery_tolerance: 1.5,
        }
    }
}

impl Deserialize for FaultPlan {
    fn deser(v: &serde::Value) -> Result<Self, serde::DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| serde::DeError::custom("expected object for FaultPlan"))?;
        let defaults = FaultPlan::default();
        // Only the timeline is required; every knob has a sane default.
        let opt = |name: &str| v.get(name);
        Ok(FaultPlan {
            events: serde::field(entries, "events", "FaultPlan")
                .and_then(Vec::<TimedFault>::deser)?,
            retry: match opt("retry") {
                Some(r) => RetryPolicy::deser(r)?,
                None => defaults.retry,
            },
            detection_delay: match opt("detection_delay") {
                Some(d) => SimDuration::deser(d)?,
                None => defaults.detection_delay,
            },
            recovery_window: match opt("recovery_window") {
                Some(d) => SimDuration::deser(d)?,
                None => defaults.recovery_window,
            },
            recovery_tolerance: match opt("recovery_tolerance") {
                Some(t) => f64::deser(t)?,
                None => defaults.recovery_tolerance,
            },
        })
    }
}

impl FaultPlan {
    /// Whether the plan injects anything at all. A plan with no events
    /// leaves the run byte-identical to a run with no plan.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !self.events.is_empty()
    }

    /// Validates the plan's internal invariants (bounds against a
    /// concrete topology are the simulator's job).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), String> {
        for (i, ev) in self.events.iter().enumerate() {
            match ev.fault {
                FaultEvent::ServerSlowdown { factor, .. } if factor <= 0.0 => {
                    return Err(format!(
                        "fault {i}: server slowdown factor must be positive"
                    ));
                }
                FaultEvent::LinkDegrade { factor, .. } if factor <= 0.0 => {
                    return Err(format!("fault {i}: link degrade factor must be positive"));
                }
                FaultEvent::PacketLossBurst {
                    probability,
                    duration,
                } => {
                    if !(0.0..=1.0).contains(&probability) {
                        return Err(format!("fault {i}: loss probability must be in [0, 1]"));
                    }
                    if duration == SimDuration::ZERO {
                        return Err(format!("fault {i}: loss burst needs a positive duration"));
                    }
                }
                _ => {}
            }
        }
        if self.retry.timeout == SimDuration::ZERO {
            return Err("retry timeout must be positive".into());
        }
        if self.retry.backoff_factor < 1.0 {
            return Err("retry backoff factor must be at least 1".into());
        }
        if self.retry.max_backoff == SimDuration::ZERO {
            return Err("retry max backoff must be positive".into());
        }
        if self.recovery_window == SimDuration::ZERO {
            return Err("recovery window must be positive".into());
        }
        if self.recovery_tolerance < 1.0 {
            return Err("recovery tolerance must be at least 1".into());
        }
        Ok(())
    }

    /// Parses a plan from JSON text (the `simulate --faults` format) and
    /// validates it.
    ///
    /// # Errors
    ///
    /// Returns the parse error or the first violated invariant.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let plan: FaultPlan =
            serde_json::from_str(text).map_err(|e| format!("invalid fault plan: {e}"))?;
        plan.validate()?;
        Ok(plan)
    }

    /// The wait before retry check `attempt + 1`, i.e. the timeout
    /// scaled by `backoff_factor^attempt` and capped at `max_backoff`.
    #[must_use]
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let scaled = self
            .retry
            .timeout
            .mul_f64(self.retry.backoff_factor.powi(attempt.min(30) as i32));
        scaled.min(self.retry.max_backoff.max(self.retry.timeout))
    }
}

/// Availability outcome of a run under a fault plan. Attached to
/// `RunStats` only when the plan injected at least one fault.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AvailabilityStats {
    /// Fault events actually injected during the run.
    pub faults_injected: u64,
    /// Requests abandoned after exhausting their retries (reads) or
    /// their single timeout (writes). `completed + timeouts == issued`.
    pub timeouts: u64,
    /// Read retries issued by the timeout machinery.
    pub retries: u64,
    /// Responses that arrived for requests already resolved (completed
    /// or abandoned) and were dropped at the client.
    pub duplicate_drops: u64,
    /// Request copies dropped in flight: blackholed at dead operators,
    /// lost with crashed servers, on dead/partitioned paths, or to
    /// packet-loss bursts.
    pub copies_dropped: u64,
    /// p99 read latency over completions between the first fault and
    /// recovery (zero when nothing completed in that window).
    pub failed_window_p99: SimDuration,
    /// Time from the last injected fault until the windowed mean read
    /// latency re-entered the steady-state band with no disruptions in
    /// the window; `None` if the run never re-stabilized.
    pub time_to_recover: Option<SimDuration>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> FaultPlan {
        FaultPlan {
            events: vec![
                TimedFault {
                    at: SimDuration::from_millis(500),
                    fault: FaultEvent::OperatorFail { switch: 3 },
                },
                TimedFault {
                    at: SimDuration::from_millis(600),
                    fault: FaultEvent::ServerCrash { server: 2 },
                },
                TimedFault {
                    at: SimDuration::from_millis(700),
                    fault: FaultEvent::LinkDegrade {
                        link: LinkRef::SwitchLink { a: 1, b: 9 },
                        factor: 4.0,
                    },
                },
                TimedFault {
                    at: SimDuration::from_millis(800),
                    fault: FaultEvent::PacketLossBurst {
                        probability: 0.1,
                        duration: SimDuration::from_millis(50),
                    },
                },
            ],
            ..FaultPlan::default()
        }
    }

    #[test]
    fn plan_round_trips_through_json() {
        let plan = sample_plan();
        let json = serde_json::to_string_pretty(&plan).unwrap();
        let back = FaultPlan::from_json(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn default_plan_is_inactive_and_valid() {
        let plan = FaultPlan::default();
        assert!(!plan.is_active());
        plan.validate().unwrap();
        assert!(sample_plan().is_active());
    }

    #[test]
    fn validation_rejects_bad_factors() {
        let mut plan = FaultPlan::default();
        plan.events.push(TimedFault {
            at: SimDuration::ZERO,
            fault: FaultEvent::ServerSlowdown {
                server: 0,
                factor: 0.0,
            },
        });
        assert!(plan.validate().unwrap_err().contains("slowdown factor"));

        let mut plan = FaultPlan::default();
        plan.events.push(TimedFault {
            at: SimDuration::ZERO,
            fault: FaultEvent::LinkDegrade {
                link: LinkRef::HostUplink { host: 0 },
                factor: -1.0,
            },
        });
        assert!(plan.validate().unwrap_err().contains("degrade factor"));

        let mut plan = FaultPlan::default();
        plan.events.push(TimedFault {
            at: SimDuration::ZERO,
            fault: FaultEvent::PacketLossBurst {
                probability: 1.5,
                duration: SimDuration::from_millis(1),
            },
        });
        assert!(plan.validate().unwrap_err().contains("probability"));
    }

    #[test]
    fn validation_rejects_bad_policies() {
        let mut plan = FaultPlan::default();
        plan.retry.timeout = SimDuration::ZERO;
        assert!(plan.validate().unwrap_err().contains("timeout"));

        let mut plan = FaultPlan::default();
        plan.retry.backoff_factor = 0.5;
        assert!(plan.validate().unwrap_err().contains("backoff factor"));

        let plan = FaultPlan {
            recovery_window: SimDuration::ZERO,
            ..FaultPlan::default()
        };
        assert!(plan.validate().unwrap_err().contains("recovery window"));

        let plan = FaultPlan {
            recovery_tolerance: 0.9,
            ..FaultPlan::default()
        };
        assert!(plan.validate().unwrap_err().contains("tolerance"));
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let plan = FaultPlan::default(); // 50ms timeout, ×2, cap 400ms
        assert_eq!(plan.backoff(0), SimDuration::from_millis(50));
        assert_eq!(plan.backoff(1), SimDuration::from_millis(100));
        assert_eq!(plan.backoff(2), SimDuration::from_millis(200));
        assert_eq!(plan.backoff(3), SimDuration::from_millis(400));
        assert_eq!(plan.backoff(10), SimDuration::from_millis(400));
        assert_eq!(plan.backoff(u32::MAX), SimDuration::from_millis(400));
    }

    #[test]
    fn partial_plans_fill_defaults() {
        let plan = FaultPlan::from_json(
            r#"{ "events": [ { "at": 1000, "fault": { "ServerCrash": { "server": 2 } } } ],
                 "detection_delay": 5000000 }"#,
        )
        .expect("events-only plans parse");
        assert_eq!(plan.events.len(), 1);
        assert_eq!(plan.detection_delay, SimDuration::from_millis(5));
        assert_eq!(plan.retry, RetryPolicy::default());
        assert_eq!(plan.recovery_window, FaultPlan::default().recovery_window);
    }

    #[test]
    fn from_json_reports_invalid_plans() {
        assert!(FaultPlan::from_json("not json").is_err());
        let plan = FaultPlan {
            recovery_tolerance: 0.0,
            ..FaultPlan::default()
        };
        let json = serde_json::to_string(&plan).unwrap();
        assert!(FaultPlan::from_json(&json)
            .unwrap_err()
            .contains("tolerance"));
    }
}
