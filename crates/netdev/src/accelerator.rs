//! The network-accelerator queueing model.
//!
//! §V-A: "Each accelerator has 1 core and the processing time is 5us. The
//! RTT between a switch and its attached network accelerator is 2.5us."
//! We model the accelerator as a `c`-server FIFO queue: tasks arrive from
//! the switch after half an RTT, wait for a free core, occupy it for the
//! per-task service time, and travel half an RTT back. Replica selections
//! (requests) ride the critical path; clone processing (responses) uses
//! the same cores but delays nothing downstream — exactly why the paper
//! clones instead of diverting responses.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use netrs_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Accelerator parameters (paper defaults in [`Default`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Number of cores (`c_j^ac`, paper default 1 — "low-end").
    pub cores: u32,
    /// Per-task processing time (`t_j^ac`, paper default 5 µs).
    pub service_time: SimDuration,
    /// Round-trip time between switch and accelerator (2.5 µs).
    pub switch_rtt: SimDuration,
}

impl Default for AcceleratorConfig {
    fn default() -> Self {
        AcceleratorConfig {
            cores: 1,
            service_time: SimDuration::from_nanos(5_000),
            switch_rtt: SimDuration::from_nanos(2_500),
        }
    }
}

impl AcceleratorConfig {
    /// The task rate (per second) that drives this accelerator to
    /// utilization `u` — the capacity term `U_j · c_j / t_j` of
    /// Constraint 2 (§III-B).
    #[must_use]
    pub fn capacity_at_utilization(&self, u: f64) -> f64 {
        u * f64::from(self.cores) / self.service_time.as_secs_f64()
    }
}

/// Aggregate accelerator counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AcceleratorStats {
    /// Replica selections performed (critical-path tasks).
    pub selections: u64,
    /// Response clones processed (background tasks).
    pub clones: u64,
    /// Busy time integrated over all cores, in core-nanoseconds.
    pub busy_core_ns: u128,
    /// Total queueing delay experienced by critical-path tasks, in
    /// nanoseconds (excludes service and RTT).
    pub selection_wait_ns: u128,
}

/// One network accelerator attached to a switch.
#[derive(Debug, Clone)]
pub struct Accelerator {
    cfg: AcceleratorConfig,
    /// Earliest instant each core becomes free (min-heap).
    free_at: BinaryHeap<Reverse<SimTime>>,
    stats: AcceleratorStats,
}

impl Accelerator {
    /// Creates an idle accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.cores` is zero.
    #[must_use]
    pub fn new(cfg: AcceleratorConfig) -> Self {
        assert!(cfg.cores > 0, "accelerator needs at least one core");
        let mut free_at = BinaryHeap::with_capacity(cfg.cores as usize);
        for _ in 0..cfg.cores {
            free_at.push(Reverse(SimTime::ZERO));
        }
        Accelerator {
            cfg,
            free_at,
            stats: AcceleratorStats::default(),
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &AcceleratorConfig {
        &self.cfg
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> AcceleratorStats {
        self.stats
    }

    fn run_task(&mut self, handed_off_at: SimTime) -> (SimTime, SimDuration) {
        let arrive = handed_off_at + self.cfg.switch_rtt / 2;
        let Reverse(core_free) = self.free_at.pop().expect("at least one core");
        let start = arrive.max(core_free);
        let done = start + self.cfg.service_time;
        self.free_at.push(Reverse(done));
        self.stats.busy_core_ns += u128::from(self.cfg.service_time.as_nanos());
        (done, start - arrive)
    }

    /// Schedules a replica selection handed off by the switch at `now`.
    /// Returns the instant the rebuilt request re-enters the switch
    /// (half-RTT in, queueing, service, half-RTT out).
    pub fn schedule_selection(&mut self, now: SimTime) -> SimTime {
        self.schedule_selection_timed(now).0
    }

    /// Like [`Accelerator::schedule_selection`], but also returns the time
    /// the task spent waiting for a free core (excluding the switch RTT
    /// and the service time) — the "selection wait" phase of a latency
    /// breakdown.
    pub fn schedule_selection_timed(&mut self, now: SimTime) -> (SimTime, SimDuration) {
        let (done, waited) = self.run_task(now);
        self.stats.selections += 1;
        self.stats.selection_wait_ns += u128::from(waited.as_nanos());
        (done + self.cfg.switch_rtt / 2, waited)
    }

    /// Schedules processing of a cloned response handed off at `now`.
    /// Returns the instant the selector's local information is updated
    /// (no return trip: the clone is dropped afterwards, §IV-C).
    pub fn schedule_clone(&mut self, now: SimTime) -> SimTime {
        let (done, _) = self.run_task(now);
        self.stats.clones += 1;
        done
    }

    /// Mean core utilization over `[SimTime::ZERO, now]`.
    #[must_use]
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_nanos();
        if elapsed == 0 {
            return 0.0;
        }
        // busy_core_ns counts scheduled work, which may extend past `now`;
        // clamp to the physically possible maximum.
        let max = u128::from(self.cfg.cores) * u128::from(elapsed);
        (self.stats.busy_core_ns.min(max)) as f64 / max as f64
    }

    /// Mean queueing wait of critical-path selections.
    #[must_use]
    pub fn mean_selection_wait(&self) -> SimDuration {
        if self.stats.selections == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(
            (self.stats.selection_wait_ns / u128::from(self.stats.selections)) as u64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> SimDuration {
        SimDuration::from_micros(n)
    }

    fn at_us(n: u64) -> SimTime {
        SimTime::ZERO + us(n)
    }

    #[test]
    fn idle_accelerator_adds_rtt_plus_service() {
        let mut a = Accelerator::new(AcceleratorConfig::default());
        let back = a.schedule_selection(at_us(100));
        // 1.25us in + 5us service + 1.25us out = 7.5us.
        assert_eq!(back, at_us(100) + SimDuration::from_nanos(7_500));
        assert_eq!(a.stats().selections, 1);
        assert_eq!(a.mean_selection_wait(), SimDuration::ZERO);
    }

    #[test]
    fn back_to_back_tasks_queue_fifo() {
        let mut a = Accelerator::new(AcceleratorConfig::default());
        let t = at_us(0);
        let first = a.schedule_selection(t);
        let second = a.schedule_selection(t);
        let third = a.schedule_selection(t);
        assert_eq!(second - first, us(5), "spaced by one service time");
        assert_eq!(third - second, us(5));
        assert!(a.mean_selection_wait() > SimDuration::ZERO);
    }

    #[test]
    fn timed_selection_reports_queue_wait() {
        let mut a = Accelerator::new(AcceleratorConfig::default());
        let t = at_us(0);
        let (first, wait0) = a.schedule_selection_timed(t);
        assert_eq!(wait0, SimDuration::ZERO, "idle core: no wait");
        assert_eq!(first, t + SimDuration::from_nanos(7_500));
        let (second, wait1) = a.schedule_selection_timed(t);
        assert_eq!(wait1, us(5), "queued behind one full service time");
        // The timed variant and the plain one agree on the return time.
        assert_eq!(second - first, us(5));
    }

    #[test]
    fn multiple_cores_serve_in_parallel() {
        let mut a = Accelerator::new(AcceleratorConfig {
            cores: 2,
            ..AcceleratorConfig::default()
        });
        let t = at_us(0);
        let first = a.schedule_selection(t);
        let second = a.schedule_selection(t);
        let third = a.schedule_selection(t);
        assert_eq!(first, second, "two cores run two tasks concurrently");
        assert_eq!(third - first, us(5));
    }

    #[test]
    fn clones_share_capacity_but_have_no_return_trip() {
        let mut a = Accelerator::new(AcceleratorConfig::default());
        let t = at_us(10);
        let update_at = a.schedule_clone(t);
        // Half RTT in + service, no trip back.
        assert_eq!(update_at, t + SimDuration::from_nanos(1_250) + us(5));
        // The clone occupies the core: a selection right after waits.
        let back = a.schedule_selection(t);
        assert!(back > t + SimDuration::from_nanos(7_500));
        assert_eq!(a.stats().clones, 1);
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut a = Accelerator::new(AcceleratorConfig::default());
        for i in 0..100 {
            let _ = a.schedule_selection(at_us(i * 10)); // 5us work / 10us
        }
        let u = a.utilization(at_us(1_000));
        assert!((u - 0.5).abs() < 0.02, "utilization {u}");
        assert_eq!(
            Accelerator::new(AcceleratorConfig::default()).utilization(at_us(1)),
            0.0
        );
    }

    #[test]
    fn capacity_formula_matches_paper() {
        // U=50%, 1 core, 5us → 100k selections/s.
        let cfg = AcceleratorConfig::default();
        assert!((cfg.capacity_at_utilization(0.5) - 100_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = Accelerator::new(AcceleratorConfig {
            cores: 0,
            ..AcceleratorConfig::default()
        });
    }
}
