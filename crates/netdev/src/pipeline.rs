//! The switch ingress pipeline of Fig. 3, as executable match-action
//! rules.

use std::collections::{HashMap, HashSet};

use netrs_wire::{MagicField, PacketKind, RsnodeId, SourceMarker};
use serde::{Deserialize, Serialize};

/// A traffic-group identifier (the controller's unit of RSNode
/// assignment, §III-A).
pub type GroupId = u32;

/// The parsed view of a NetRS packet that the switch pipeline reads and
/// rewrites. Mirrors the byte-exact wire headers ([`netrs_wire`]) minus
/// payloads; hosts and simulators move `PacketMeta` around and only
/// serialize at the edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PacketMeta {
    /// A key-value read request (RID, MF, RGID + addressing).
    Request {
        /// RSNode ID (stamped by the client's ToR).
        rid: RsnodeId,
        /// Magic field.
        magic: MagicField,
        /// Replica group ID.
        rgid: GroupId,
        /// Sending host (the "source IP" ToRs match to find the group).
        src_host: u32,
        /// Destination host (the client's backup replica until a selector
        /// rewrites it, §III-C).
        dst_host: u32,
    },
    /// A key-value response (RID, MF, SM + addressing).
    Response {
        /// RSNode ID copied from the corresponding request by the server.
        rid: RsnodeId,
        /// Magic field (`f⁻¹` of the request's).
        magic: MagicField,
        /// Source marker (stamped by the server-side ToR).
        sm: SourceMarker,
        /// Sending host.
        src_host: u32,
        /// Destination host (the client).
        dst_host: u32,
    },
    /// Anything else sharing the network.
    Other,
}

impl PacketMeta {
    /// The packet's classification, as the first match stage computes it.
    #[must_use]
    pub fn kind(&self) -> PacketKind {
        match self {
            PacketMeta::Request { magic, .. } | PacketMeta::Response { magic, .. } => magic.kind(),
            PacketMeta::Other => PacketKind::Other,
        }
    }
}

/// The extra match-action rules only ToR switches carry (§IV-B): source-IP
/// → traffic-group lookup, per-group RSNode stamping, DRS demotion, and
/// source-marker stamping for responses.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TorRules {
    /// Traffic group of each locally attached host.
    pub group_of_host: HashMap<u32, GroupId>,
    /// RSNode assigned to each traffic group by the current RSP.
    pub rsnode_of_group: HashMap<GroupId, RsnodeId>,
    /// Groups currently under Degraded Replica Selection.
    pub drs_groups: HashSet<GroupId>,
    /// This rack's source marker, stamped on responses entering the
    /// network here.
    pub source_marker: SourceMarker,
}

/// The NetRS rules of one programmable switch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NetRsRules {
    /// The NetRS operator ID stored locally in the switch.
    pub local_id: RsnodeId,
    /// ToR-only extra rules ([`None`] on aggregation and core switches).
    pub tor: Option<TorRules>,
}

/// What the ingress pipeline decided to do with a packet. The pipeline may
/// also have rewritten the packet's headers (RID, magic field, source
/// marker) in place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressAction {
    /// Regular pipeline: forward toward the packet's destination.
    Forward,
    /// Forward toward the switch hosting this RSNode.
    ForwardTowardRsnode(RsnodeId),
    /// Hand the request to the local network accelerator for replica
    /// selection.
    ToAccelerator,
    /// Clone the response to the local accelerator (state update) and
    /// forward the original — whose magic field is now `M_mon` — along the
    /// regular pipeline.
    CloneToAcceleratorAndForward,
}

impl NetRsRules {
    /// Rules for a non-ToR switch.
    #[must_use]
    pub fn switch(local_id: RsnodeId) -> Self {
        NetRsRules {
            local_id,
            tor: None,
        }
    }

    /// Rules for a ToR switch.
    #[must_use]
    pub fn tor(local_id: RsnodeId, tor: TorRules) -> Self {
        NetRsRules {
            local_id,
            tor: Some(tor),
        }
    }

    /// Runs the ingress pipeline of Fig. 3 on one packet.
    ///
    /// `from_host` distinguishes packets entering the network from a
    /// locally attached host (which ToRs must stamp) from packets arriving
    /// on switch-facing ports.
    pub fn ingress(&self, pkt: &mut PacketMeta, from_host: bool) -> IngressAction {
        match pkt.kind() {
            PacketKind::Other | PacketKind::Monitored => IngressAction::Forward,
            PacketKind::NetRsRequest => self.ingress_request(pkt, from_host),
            PacketKind::NetRsResponse => self.ingress_response(pkt, from_host),
        }
    }

    fn ingress_request(&self, pkt: &mut PacketMeta, from_host: bool) -> IngressAction {
        let PacketMeta::Request {
            rid,
            magic,
            src_host,
            ..
        } = pkt
        else {
            unreachable!("classified as request");
        };
        // ToR extra stage: set the RSNode ID from the traffic group.
        if from_host {
            if let Some(tor) = &self.tor {
                if let Some(&group) = tor.group_of_host.get(src_host) {
                    if tor.drs_groups.contains(&group) {
                        *rid = RsnodeId::ILLEGAL;
                    } else if let Some(&assigned) = tor.rsnode_of_group.get(&group) {
                        *rid = assigned;
                    }
                }
            }
        }
        // Illegal ID → DRS: demote to a non-NetRS (but monitored) packet
        // and let it run straight to the client's backup replica.
        if !rid.is_legal() {
            *magic = MagicField::MONITORED.f();
            return IngressAction::Forward;
        }
        if *rid == self.local_id {
            IngressAction::ToAccelerator
        } else {
            IngressAction::ForwardTowardRsnode(*rid)
        }
    }

    fn ingress_response(&self, pkt: &mut PacketMeta, from_host: bool) -> IngressAction {
        let PacketMeta::Response { rid, magic, sm, .. } = pkt else {
            unreachable!("classified as response");
        };
        // ToR extra stage: stamp the source marker on responses entering
        // the network.
        if from_host {
            if let Some(tor) = &self.tor {
                *sm = tor.source_marker;
            }
        }
        if *rid == self.local_id {
            // The magic rewrite makes downstream switches treat the
            // original as non-NetRS while monitors still recognize it.
            *magic = MagicField::MONITORED;
            IngressAction::CloneToAcceleratorAndForward
        } else {
            IngressAction::ForwardTowardRsnode(*rid)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(rid: RsnodeId, src: u32) -> PacketMeta {
        PacketMeta::Request {
            rid,
            magic: MagicField::REQUEST,
            rgid: 5,
            src_host: src,
            dst_host: 99,
        }
    }

    fn response(rid: RsnodeId) -> PacketMeta {
        PacketMeta::Response {
            rid,
            magic: MagicField::RESPONSE,
            sm: SourceMarker::default(),
            src_host: 99,
            dst_host: 1,
        }
    }

    fn tor_rules() -> NetRsRules {
        let mut tor = TorRules {
            source_marker: SourceMarker { pod: 2, rack: 17 },
            ..TorRules::default()
        };
        tor.group_of_host.insert(1, 10);
        tor.group_of_host.insert(2, 11);
        tor.rsnode_of_group.insert(10, RsnodeId(7));
        tor.rsnode_of_group.insert(11, RsnodeId(3));
        tor.drs_groups.insert(11);
        NetRsRules::tor(RsnodeId(3), tor)
    }

    #[test]
    fn tor_stamps_rsnode_id_from_group() {
        let rules = tor_rules();
        let mut pkt = request(RsnodeId(0), 1);
        let action = rules.ingress(&mut pkt, true);
        assert_eq!(action, IngressAction::ForwardTowardRsnode(RsnodeId(7)));
        let PacketMeta::Request { rid, .. } = pkt else {
            panic!()
        };
        assert_eq!(rid, RsnodeId(7));
    }

    #[test]
    fn tor_does_not_restamp_transit_packets() {
        let rules = tor_rules();
        // Packet from another switch already stamped for RSNode 9.
        let mut pkt = request(RsnodeId(9), 1);
        let action = rules.ingress(&mut pkt, false);
        assert_eq!(action, IngressAction::ForwardTowardRsnode(RsnodeId(9)));
    }

    #[test]
    fn request_at_its_rsnode_goes_to_accelerator() {
        let rules = tor_rules(); // local id 3
        let mut pkt = request(RsnodeId(3), 5);
        assert_eq!(rules.ingress(&mut pkt, false), IngressAction::ToAccelerator);
    }

    #[test]
    fn drs_group_is_demoted_to_monitored_non_netrs() {
        let rules = tor_rules(); // group 11 (host 2) is under DRS
        let mut pkt = request(RsnodeId(0), 2);
        let action = rules.ingress(&mut pkt, true);
        assert_eq!(action, IngressAction::Forward);
        let PacketMeta::Request { rid, magic, .. } = pkt else {
            panic!()
        };
        assert_eq!(rid, RsnodeId::ILLEGAL);
        // f(M_mon): unrecognized by switches, recoverable by the server.
        assert_eq!(magic.kind(), PacketKind::Other);
        assert_eq!(magic.f_inv(), MagicField::MONITORED);
    }

    #[test]
    fn illegal_rid_from_upstream_is_also_demoted() {
        let rules = NetRsRules::switch(RsnodeId(4));
        let mut pkt = request(RsnodeId::ILLEGAL, 2);
        assert_eq!(rules.ingress(&mut pkt, false), IngressAction::Forward);
        let PacketMeta::Request { magic, .. } = pkt else {
            panic!()
        };
        assert_eq!(magic, MagicField::MONITORED.f());
    }

    #[test]
    fn response_clones_at_its_rsnode_and_relabels() {
        let rules = NetRsRules::switch(RsnodeId(7));
        let mut pkt = response(RsnodeId(7));
        let action = rules.ingress(&mut pkt, false);
        assert_eq!(action, IngressAction::CloneToAcceleratorAndForward);
        let PacketMeta::Response { magic, .. } = pkt else {
            panic!()
        };
        assert_eq!(magic, MagicField::MONITORED);
    }

    #[test]
    fn response_in_transit_heads_to_its_rsnode() {
        let rules = NetRsRules::switch(RsnodeId(4));
        let mut pkt = response(RsnodeId(7));
        assert_eq!(
            rules.ingress(&mut pkt, false),
            IngressAction::ForwardTowardRsnode(RsnodeId(7))
        );
    }

    #[test]
    fn tor_stamps_source_marker_on_responses_from_hosts() {
        let rules = tor_rules();
        let mut pkt = response(RsnodeId(9));
        let _ = rules.ingress(&mut pkt, true);
        let PacketMeta::Response { sm, .. } = pkt else {
            panic!()
        };
        assert_eq!(sm, SourceMarker { pod: 2, rack: 17 });
    }

    #[test]
    fn non_netrs_packets_pass_untouched() {
        let rules = tor_rules();
        let mut pkt = PacketMeta::Other;
        assert_eq!(rules.ingress(&mut pkt, true), IngressAction::Forward);
        assert_eq!(pkt, PacketMeta::Other);

        // A monitored (post-RSNode) response is plain traffic to switches.
        let mut pkt = PacketMeta::Response {
            rid: RsnodeId(7),
            magic: MagicField::MONITORED,
            sm: SourceMarker::default(),
            src_host: 0,
            dst_host: 0,
        };
        assert_eq!(rules.ingress(&mut pkt, false), IngressAction::Forward);
    }

    #[test]
    fn unmapped_host_keeps_prestamped_rid() {
        let rules = tor_rules();
        // Host 42 not in any group: the packet keeps whatever RID the
        // client wrote (here: a legal one routes on).
        let mut pkt = request(RsnodeId(7), 42);
        assert_eq!(
            rules.ingress(&mut pkt, true),
            IngressAction::ForwardTowardRsnode(RsnodeId(7))
        );
    }
}
