//! The NetRS monitor (§IV-D): egress-side traffic accounting on ToR
//! switches.
//!
//! The monitor watches responses *leaving* the network at a ToR (they
//! carry `M_mon` after passing their RSNode, or surface as `M_mon` under
//! DRS), classifies each by comparing its source marker against the local
//! one (same rack → Tier-2, same pod → Tier-1, else Tier-0), and counts
//! per traffic group. Snapshots of these counters are what the controller
//! turns into the `T` matrix of the placement ILP.

use std::collections::BTreeMap;

use netrs_simcore::SimTime;
use netrs_wire::SourceMarker;
use serde::{Deserialize, Serialize};

use crate::pipeline::GroupId;

/// Per-group, per-tier counters accumulated since the last snapshot.
#[derive(Debug, Clone)]
pub struct Monitor {
    local: SourceMarker,
    /// `counts[group][tier]` with tier indices 0 (core) / 1 (agg) /
    /// 2 (rack), matching the paper's Tier-k naming. Ordered so
    /// [`Monitor::snapshot`] emits groups in ascending id order without
    /// a per-window sort.
    counts: BTreeMap<GroupId, [u64; 3]>,
    window_start: SimTime,
}

/// One monitor snapshot: request rates per `(group, tier)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficSnapshot {
    /// Where the measuring ToR sits.
    pub local: SourceMarker,
    /// `(group, [tier0, tier1, tier2] packets)` observed in the window.
    pub counts: Vec<(GroupId, [u64; 3])>,
    /// Window start time.
    pub from: SimTime,
    /// Window end time.
    pub to: SimTime,
}

impl TrafficSnapshot {
    /// Converts a group's counters to rates in packets/second. Returns
    /// zeros for an empty window.
    #[must_use]
    pub fn rates(&self, counts: [u64; 3]) -> [f64; 3] {
        let secs = (self.to.saturating_since(self.from)).as_secs_f64();
        if secs <= 0.0 {
            return [0.0; 3];
        }
        counts.map(|c| c as f64 / secs)
    }
}

impl Monitor {
    /// Creates a monitor for the ToR at `local`.
    #[must_use]
    pub fn new(local: SourceMarker) -> Self {
        Monitor {
            local,
            counts: BTreeMap::new(),
            window_start: SimTime::ZERO,
        }
    }

    /// The paper's Tier-0/1/2 traffic classification as a pure function:
    /// same rack → 2, same pod → 1, otherwise 0. This is the single
    /// definition every consumer (monitor accounting, the device
    /// telemetry registry) classifies against.
    #[must_use]
    pub fn classify(local: SourceMarker, remote: SourceMarker) -> usize {
        if remote.same_rack(local) {
            2
        } else if remote.same_pod(local) {
            1
        } else {
            0
        }
    }

    /// The tier index (0/1/2) a response from `sm` falls into when seen
    /// from this ToR.
    #[must_use]
    pub fn tier_of(&self, sm: SourceMarker) -> usize {
        Self::classify(self.local, sm)
    }

    /// Counts one monitored response leaving the network toward a host of
    /// traffic group `group`.
    pub fn record(&mut self, group: GroupId, sm: SourceMarker) {
        let tier = self.tier_of(sm);
        self.counts.entry(group).or_default()[tier] += 1;
    }

    /// Returns the counters accumulated since the last snapshot and
    /// resets the window.
    pub fn snapshot(&mut self, now: SimTime) -> TrafficSnapshot {
        // BTreeMap iterates in ascending group order, so the snapshot is
        // sorted by construction.
        let counts: Vec<(GroupId, [u64; 3])> =
            std::mem::take(&mut self.counts).into_iter().collect();
        let snap = TrafficSnapshot {
            local: self.local,
            counts,
            from: self.window_start,
            to: now,
        };
        self.window_start = now;
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrs_simcore::SimDuration;

    fn marker(pod: u16, rack: u16) -> SourceMarker {
        SourceMarker { pod, rack }
    }

    #[test]
    fn tier_classification_matches_paper() {
        let m = Monitor::new(marker(1, 10));
        assert_eq!(m.tier_of(marker(1, 10)), 2, "same rack is Tier-2");
        assert_eq!(m.tier_of(marker(1, 11)), 1, "same pod is Tier-1");
        assert_eq!(m.tier_of(marker(2, 20)), 0, "cross-pod is Tier-0");
    }

    #[test]
    fn counters_accumulate_per_group_and_tier() {
        let mut m = Monitor::new(marker(0, 0));
        m.record(5, marker(0, 0));
        m.record(5, marker(0, 0));
        m.record(5, marker(0, 3));
        m.record(6, marker(9, 99));
        let snap = m.snapshot(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(
            snap.counts,
            vec![(5, [0, 1, 2]), (6, [1, 0, 0])],
            "sorted by group id"
        );
    }

    #[test]
    fn snapshot_resets_the_window() {
        let mut m = Monitor::new(marker(0, 0));
        m.record(1, marker(0, 0));
        let first = m.snapshot(SimTime::ZERO + SimDuration::from_millis(100));
        assert_eq!(first.counts.len(), 1);
        let second = m.snapshot(SimTime::ZERO + SimDuration::from_millis(200));
        assert!(second.counts.is_empty());
        assert_eq!(second.from, SimTime::ZERO + SimDuration::from_millis(100));
    }

    #[test]
    fn consecutive_snapshots_have_abutting_windows_and_reset_counters() {
        // The controller divides counters by `to - from` to build the
        // ILP's T matrix; a gap or overlap between windows, or counters
        // surviving a snapshot, would silently skew every planned rate.
        let mut m = Monitor::new(marker(0, 0));
        let t1 = SimTime::ZERO + SimDuration::from_millis(100);
        let t2 = t1 + SimDuration::from_millis(250);
        m.record(3, marker(0, 0));
        m.record(3, marker(7, 70));
        let first = m.snapshot(t1);
        assert_eq!(first.from, SimTime::ZERO);
        assert_eq!(first.to, t1);
        assert_eq!(first.counts, vec![(3, [1, 0, 1])]);

        m.record(4, marker(0, 5));
        let second = m.snapshot(t2);
        assert_eq!(
            second.from, first.to,
            "windows must abut: [from, to) with no gap or overlap"
        );
        assert_eq!(second.to, t2);
        assert_eq!(
            second.counts,
            vec![(4, [0, 1, 0])],
            "first window's counters must not leak into the second"
        );
    }

    #[test]
    fn classify_is_the_instance_classification() {
        let local = marker(1, 10);
        for remote in [marker(1, 10), marker(1, 11), marker(2, 20)] {
            assert_eq!(
                Monitor::classify(local, remote),
                Monitor::new(local).tier_of(remote)
            );
        }
    }

    #[test]
    fn rates_divide_by_window_length() {
        let mut m = Monitor::new(marker(0, 0));
        for _ in 0..500 {
            m.record(1, marker(2, 20));
        }
        let snap = m.snapshot(SimTime::ZERO + SimDuration::from_millis(500));
        let rates = snap.rates(snap.counts[0].1);
        assert!((rates[0] - 1_000.0).abs() < 1e-6);
        assert_eq!(rates[1], 0.0);
    }

    #[test]
    fn zero_length_window_yields_zero_rates() {
        let mut m = Monitor::new(marker(0, 0));
        m.record(1, marker(0, 0));
        let snap = m.snapshot(SimTime::ZERO);
        assert_eq!(snap.rates([100, 0, 0]), [0.0; 3]);
    }
}
