//! Models of the programmable network devices NetRS runs on.
//!
//! §IV of the paper builds the NetRS operator out of three pieces, all
//! reproduced here:
//!
//! * [`NetRsRules`] — the match-action ingress pipeline deployed on every
//!   programmable switch (Fig. 3): classify by magic field, stamp
//!   RSNode IDs and source markers at ToRs, steer packets toward their
//!   RSNode, hand requests to the accelerator, clone responses to it, and
//!   demote Degraded-Replica-Selection traffic to non-NetRS packets.
//! * [`Accelerator`] — the network accelerator attached to each switch: a
//!   small multi-core FIFO queue with the per-packet service time and
//!   switch↔accelerator RTT the paper takes from IncBricks (5 µs and
//!   2.5 µs by default).
//! * [`Monitor`] — the egress-side counters on ToR switches that measure
//!   each traffic group's Tier-0/1/2 composition for the controller
//!   (§IV-D).
//!
//! The pipeline operates on [`PacketMeta`], a parsed view mirroring the
//! byte-exact headers of [`netrs_wire`]; the codecs themselves are
//! exercised at the hosts that build and consume packets.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accelerator;
mod cache;
mod monitor;
mod operator;
mod pipeline;

pub use accelerator::{Accelerator, AcceleratorConfig, AcceleratorStats};
pub use cache::{
    CacheAdmission, CacheEntry, CacheStats, CacheWritePolicy, HotCacheConfig, HotKeyCache,
};
pub use monitor::{Monitor, TrafficSnapshot};
pub use operator::RsOperator;
pub use pipeline::{GroupId, IngressAction, NetRsRules, PacketMeta, TorRules};
