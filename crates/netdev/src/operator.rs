//! The NetRS operator: the state one RSNode keeps on its switch.
//!
//! §IV composes an operator out of the ingress pipeline (shared, in
//! [`crate::NetRsRules`]), plus two per-RSNode pieces that live and die
//! with the node's plan assignment: the replica-selection algorithm with
//! its locally learned server view, and the accelerator that executes it.
//! [`RsOperator`] bundles those two so the control plane can create,
//! retain, and retire RSNodes as one unit across re-plans.

use netrs_selection::ReplicaSelector;

use crate::{Accelerator, AcceleratorConfig, HotCacheConfig, HotKeyCache};

/// One RSNode's device-resident state: its replica selector (the local
/// information the paper's §II transient is about), the accelerator
/// executing selections and folding in cloned responses, and the
/// optional hot-key cache serving `GET`s straight from the switch.
pub struct RsOperator {
    /// The selection algorithm with this RSNode's learned server view.
    pub selector: Box<dyn ReplicaSelector + Send>,
    /// The accelerator attached to this RSNode's switch.
    pub accel: Accelerator,
    /// The in-switch hot-key cache, when the run enables one.
    pub cache: Option<HotKeyCache>,
}

impl RsOperator {
    /// A fresh operator: the given selector (typically built via
    /// [`netrs_selection::SelectorKind::build_with_concurrency`]) and a
    /// new, idle accelerator. No cache — see [`RsOperator::with_cache`].
    #[must_use]
    pub fn new(selector: Box<dyn ReplicaSelector + Send>, accel: AcceleratorConfig) -> Self {
        RsOperator {
            selector,
            accel: Accelerator::new(accel),
            cache: None,
        }
    }

    /// Attaches a fresh, empty hot-key cache.
    #[must_use]
    pub fn with_cache(mut self, cfg: HotCacheConfig) -> Self {
        self.cache = Some(HotKeyCache::new(cfg));
        self
    }
}

impl std::fmt::Debug for RsOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RsOperator")
            .field("selector", &self.selector.name())
            .field("accel", &self.accel.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrs_kvstore::ServerId;
    use netrs_selection::{C3Config, SelectorKind};
    use netrs_simcore::{SimRng, SimTime};

    #[test]
    fn operator_bundles_selector_and_idle_accelerator() {
        let selector =
            SelectorKind::C3.build_with_concurrency(C3Config::default(), 2.0, SimRng::from_seed(1));
        let mut op = RsOperator::new(selector, AcceleratorConfig::default());
        assert_eq!(op.selector.name(), "c3");
        assert_eq!(op.accel.stats().busy_core_ns, 0);
        let pick = op
            .selector
            .select(&[ServerId(0), ServerId(1)], SimTime::ZERO);
        assert!(pick == ServerId(0) || pick == ServerId(1));
        assert!(format!("{op:?}").contains("c3"));
    }
}
