//! The in-switch hot-key cache attached to an RSNode operator.
//!
//! TurboKV and NetChain (see PAPERS.md) both point at the same idea: a
//! programmable switch that already sits on the request path can answer
//! the hottest keys itself, at sub-server-RTT latency and zero server
//! load. NetRS RSNodes are exactly such a vantage point — every steered
//! `GET` and every cloned response already traverses the operator — so
//! the cache rides the existing data path: it is *populated* from
//! observed responses and *consulted* before replica selection.
//!
//! Coherence is write-driven. A `SET` to a cached key emits a coherence
//! message toward the owning RSNode; under `Invalidate` the entry is
//! dropped, under `Through` it is refreshed in place with the new
//! committed version. Either way the message travels the real (lossy)
//! network, so a lost message leaves a *stale* entry behind — served
//! hits are compared against the store's committed version and counted
//! as `stale_hits` when the cache lagged.
//!
//! Everything here is deterministic: recency is a logical tick (bumped
//! per operation, not wall clock), eviction breaks ties on the smaller
//! key, and the frequency-admission sketch is a fixed-width count-min
//! over the key hash.

use netrs_kvstore::{hash64, ServerId};
use serde::{Deserialize, Serialize};

/// How keys earn a slot in the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheAdmission {
    /// Every observed response is admitted; capacity pressure evicts the
    /// least-recently-used entry.
    Lru,
    /// A key is admitted only once the admission sketch has seen it at
    /// least `threshold` times — scan-resistant, keeps one-hit wonders
    /// out of a small cache.
    Frequency {
        /// Observations required before a key may enter the cache.
        threshold: u32,
    },
}

/// How writes keep the cache coherent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheWritePolicy {
    /// The coherence message removes the cached entry; the next `GET`
    /// misses and repopulates from a server response.
    Invalidate,
    /// The coherence message refreshes the cached entry in place with
    /// the newly committed version, so the key keeps serving from the
    /// switch across writes.
    Through,
}

/// Hot-key cache parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotCacheConfig {
    /// Maximum number of cached keys per operator.
    pub capacity: usize,
    /// Admission policy.
    pub admission: CacheAdmission,
    /// Coherence policy applied by write-driven messages.
    pub write_policy: CacheWritePolicy,
}

impl Default for HotCacheConfig {
    fn default() -> Self {
        HotCacheConfig {
            capacity: 256,
            admission: CacheAdmission::Lru,
            write_policy: CacheWritePolicy::Invalidate,
        }
    }
}

/// One cached key: the version it was captured at and the server whose
/// response populated it (the hit is attributed to that origin).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheEntry {
    /// Committed version of the value at capture time.
    pub version: u64,
    /// The server whose response populated the entry.
    pub origin: ServerId,
    /// Logical recency stamp (larger = more recent).
    last_used: u64,
}

/// Aggregate cache counters. `hits + misses` equals the `GET`s the
/// cache was consulted for, by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups answered from the switch.
    pub hits: u64,
    /// Lookups that fell through to replica selection.
    pub misses: u64,
    /// Hits served with a version older than the store's committed one
    /// (a coherence message was lost or still in flight).
    pub stale_hits: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Coherence messages that found (and removed or refreshed) a
    /// cached entry.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total `GET`s the cache was consulted for.
    #[must_use]
    pub fn gets_seen(&self) -> u64 {
        self.hits + self.misses
    }

    /// Folds another operator's counters into this one.
    pub fn absorb(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.stale_hits += other.stale_hits;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }
}

/// Width of the count-min admission sketch (two rows of this many
/// counters). Fixed so the switch-side memory model stays bounded.
const SKETCH_WIDTH: usize = 1024;

/// A bounded per-operator hot-key cache with deterministic LRU eviction
/// and optional frequency-sketch admission.
#[derive(Debug, Clone)]
pub struct HotKeyCache {
    cfg: HotCacheConfig,
    entries: std::collections::BTreeMap<u64, CacheEntry>,
    stats: CacheStats,
    tick: u64,
    /// Count-min sketch rows for `Frequency` admission; empty under LRU.
    sketch: Vec<u32>,
}

impl HotKeyCache {
    /// An empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the configured capacity is zero.
    #[must_use]
    pub fn new(cfg: HotCacheConfig) -> Self {
        assert!(cfg.capacity > 0, "hot-key cache needs capacity");
        let sketch = match cfg.admission {
            CacheAdmission::Lru => Vec::new(),
            CacheAdmission::Frequency { .. } => vec![0; 2 * SKETCH_WIDTH],
        };
        HotKeyCache {
            cfg,
            entries: std::collections::BTreeMap::new(),
            stats: CacheStats::default(),
            tick: 0,
            sketch,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &HotCacheConfig {
        &self.cfg
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Currently cached keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Consults the cache for a `GET`. A hit refreshes recency and
    /// returns the entry; a miss feeds the admission sketch. Exactly one
    /// of `hits`/`misses` is bumped per call.
    pub fn lookup(&mut self, key: u64) -> Option<CacheEntry> {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            e.last_used = self.tick;
            self.stats.hits += 1;
            Some(*e)
        } else {
            self.stats.misses += 1;
            self.sketch_bump(key);
            None
        }
    }

    /// Records that a hit returned by [`HotKeyCache::lookup`] was stale
    /// against the store's committed version.
    pub fn note_stale(&mut self) {
        self.stats.stale_hits += 1;
    }

    /// Offers an observed response for admission. Returns `true` when
    /// the key is cached afterwards.
    pub fn admit(&mut self, key: u64, version: u64, origin: ServerId) -> bool {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(&key) {
            // Refresh, never regress: a slower response for an older
            // version must not shadow a fresher entry.
            if version >= e.version {
                e.version = version;
                e.origin = origin;
            }
            e.last_used = self.tick;
            return true;
        }
        if let CacheAdmission::Frequency { threshold } = self.cfg.admission {
            if self.sketch_estimate(key) < threshold {
                return false;
            }
        }
        if self.entries.len() >= self.cfg.capacity {
            self.evict_lru();
        }
        self.entries.insert(
            key,
            CacheEntry {
                version,
                origin,
                last_used: self.tick,
            },
        );
        true
    }

    /// Applies a write-driven coherence message for `key` committed at
    /// `version`. Under `Invalidate` a present entry is removed; under
    /// `Through` it is refreshed in place. Returns `true` when an entry
    /// was present.
    pub fn apply_write(&mut self, key: u64, version: u64) -> bool {
        match self.cfg.write_policy {
            CacheWritePolicy::Invalidate => {
                if self.entries.remove(&key).is_some() {
                    self.stats.invalidations += 1;
                    true
                } else {
                    false
                }
            }
            CacheWritePolicy::Through => match self.entries.get_mut(&key) {
                Some(e) => {
                    if version >= e.version {
                        e.version = version;
                    }
                    self.stats.invalidations += 1;
                    true
                }
                None => false,
            },
        }
    }

    /// Drops every entry (operator fail-stop: switch memory is lost).
    /// Counters survive — they describe history, not contents.
    pub fn flush(&mut self) {
        self.entries.clear();
        for c in &mut self.sketch {
            *c = 0;
        }
    }

    fn evict_lru(&mut self) {
        // Deterministic victim: oldest stamp, ties to the smaller key
        // (BTreeMap iteration is ascending, strict `<` keeps the first).
        let victim = self
            .entries
            .iter()
            .fold(None::<(u64, u64)>, |best, (&k, e)| match best {
                Some((_, stamp)) if stamp <= e.last_used => best,
                _ => Some((k, e.last_used)),
            });
        if let Some((k, _)) = victim {
            self.entries.remove(&k);
            self.stats.evictions += 1;
        }
    }

    fn sketch_bump(&mut self, key: u64) {
        if self.sketch.is_empty() {
            return;
        }
        let (a, b) = Self::sketch_slots(key);
        self.sketch[a] = self.sketch[a].saturating_add(1);
        self.sketch[SKETCH_WIDTH + b] = self.sketch[SKETCH_WIDTH + b].saturating_add(1);
    }

    fn sketch_estimate(&self, key: u64) -> u32 {
        if self.sketch.is_empty() {
            return u32::MAX;
        }
        let (a, b) = Self::sketch_slots(key);
        self.sketch[a].min(self.sketch[SKETCH_WIDTH + b])
    }

    fn sketch_slots(key: u64) -> (usize, usize) {
        let h = hash64(key);
        (
            (h as usize) % SKETCH_WIDTH,
            ((h >> 32) as usize) % SKETCH_WIDTH,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru(cap: usize) -> HotKeyCache {
        HotKeyCache::new(HotCacheConfig {
            capacity: cap,
            ..HotCacheConfig::default()
        })
    }

    #[test]
    fn lookup_partitions_into_hits_and_misses() {
        let mut c = lru(4);
        assert!(c.lookup(1).is_none());
        assert!(c.admit(1, 1, ServerId(3)));
        let hit = c.lookup(1).expect("admitted key hits");
        assert_eq!(hit.version, 1);
        assert_eq!(hit.origin, ServerId(3));
        assert!(c.lookup(2).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 2));
        assert_eq!(s.gets_seen(), 3);
    }

    #[test]
    fn eviction_is_lru_with_deterministic_ties() {
        let mut c = lru(2);
        c.admit(10, 1, ServerId(0));
        c.admit(20, 1, ServerId(0));
        let _ = c.lookup(10); // 20 is now the LRU victim
        c.admit(30, 1, ServerId(0));
        assert!(c.lookup(20).is_none(), "LRU entry evicted");
        assert!(c.lookup(10).is_some());
        assert!(c.lookup(30).is_some());
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn invalidate_removes_and_through_refreshes() {
        let mut c = lru(4);
        c.admit(7, 1, ServerId(0));
        assert!(c.apply_write(7, 2));
        assert!(c.lookup(7).is_none(), "write-invalidate drops the entry");
        assert!(!c.apply_write(7, 3), "absent entry: nothing to do");

        let mut t = HotKeyCache::new(HotCacheConfig {
            write_policy: CacheWritePolicy::Through,
            ..HotCacheConfig::default()
        });
        t.admit(7, 1, ServerId(0));
        assert!(t.apply_write(7, 2));
        assert_eq!(t.lookup(7).unwrap().version, 2, "write-through refreshes");
        assert_eq!(t.stats().invalidations, 1);
    }

    #[test]
    fn frequency_admission_needs_repeated_misses() {
        let mut c = HotKeyCache::new(HotCacheConfig {
            admission: CacheAdmission::Frequency { threshold: 2 },
            ..HotCacheConfig::default()
        });
        let _ = c.lookup(5); // sketch count 1
        assert!(!c.admit(5, 1, ServerId(0)), "below threshold");
        let _ = c.lookup(5); // sketch count 2
        assert!(c.admit(5, 1, ServerId(0)), "reached threshold");
        assert!(c.lookup(5).is_some());
    }

    #[test]
    fn admit_never_regresses_a_version() {
        let mut c = lru(4);
        c.admit(9, 5, ServerId(1));
        c.admit(9, 3, ServerId(2)); // straggler response, older version
        let e = c.lookup(9).unwrap();
        assert_eq!((e.version, e.origin), (5, ServerId(1)));
    }

    #[test]
    fn flush_empties_contents_but_keeps_history() {
        let mut c = lru(4);
        c.admit(1, 1, ServerId(0));
        let _ = c.lookup(1);
        c.flush();
        assert!(c.is_empty());
        assert_eq!(c.stats().hits, 1, "counters survive a flush");
        assert!(c.lookup(1).is_none());
    }

    #[test]
    fn stale_accounting_is_explicit() {
        let mut c = lru(4);
        c.admit(1, 1, ServerId(0));
        let _ = c.lookup(1);
        c.note_stale();
        assert_eq!(c.stats().stale_hits, 1);
    }
}
