//! Property-based tests of the network-device models.

use netrs_netdev::{
    Accelerator, AcceleratorConfig, IngressAction, Monitor, NetRsRules, PacketMeta, TorRules,
};
use netrs_simcore::{SimDuration, SimTime};
use netrs_wire::{MagicField, PacketKind, RsnodeId, SourceMarker};
use proptest::prelude::*;

proptest! {
    /// Accelerator FIFO: completions are monotone in arrival order, each
    /// task takes at least RTT + service, and with one core consecutive
    /// completions are spaced by at least the service time.
    #[test]
    fn accelerator_fifo_invariants(
        gaps in proptest::collection::vec(0u64..20_000, 1..100),
        cores in 1u32..4,
    ) {
        let cfg = AcceleratorConfig { cores, ..AcceleratorConfig::default() };
        let mut accel = Accelerator::new(cfg);
        let floor = cfg.switch_rtt + cfg.service_time;
        let mut now = SimTime::ZERO;
        let mut last_done = SimTime::ZERO;
        for gap in gaps {
            now += SimDuration::from_nanos(gap);
            let done = accel.schedule_selection(now);
            prop_assert!(done >= now + floor, "faster than physics: {done} vs {now}");
            prop_assert!(done >= last_done || cores > 1, "single-core FIFO must be ordered");
            if cores == 1 {
                prop_assert!(
                    done.as_nanos() >= last_done.as_nanos() + cfg.service_time.as_nanos()
                        || last_done == SimTime::ZERO
                );
            }
            last_done = last_done.max(done);
        }
        prop_assert!(accel.utilization(now + floor) <= 1.0 + 1e-9);
    }

    /// The ingress pipeline never panics and always rewrites consistently:
    /// a request leaving with `Forward` is non-NetRS or DRS-demoted; a
    /// response leaving with clone action carries `M_mon`.
    #[test]
    fn pipeline_is_total_and_consistent(
        local in 1u16..100,
        rid in any::<u16>(),
        src in 0u32..64,
        from_host in any::<bool>(),
        group in 0u32..8,
        drs in any::<bool>(),
    ) {
        let mut tor = TorRules {
            source_marker: SourceMarker { pod: 1, rack: 2 },
            ..TorRules::default()
        };
        tor.group_of_host.insert(src, group);
        if drs {
            tor.drs_groups.insert(group);
        } else {
            tor.rsnode_of_group.insert(group, RsnodeId(local + 1));
        }
        let rules = NetRsRules::tor(RsnodeId(local), tor);

        let mut pkt = PacketMeta::Request {
            rid: RsnodeId(rid),
            magic: MagicField::REQUEST,
            rgid: group,
            src_host: src,
            dst_host: 99,
        };
        let action = rules.ingress(&mut pkt, from_host);
        let PacketMeta::Request { rid: out_rid, magic, .. } = pkt else { panic!() };
        match action {
            IngressAction::Forward => {
                // Only DRS-demoted requests are plain-forwarded.
                prop_assert!(!out_rid.is_legal());
                prop_assert_eq!(magic, MagicField::MONITORED.f());
            }
            IngressAction::ToAccelerator => prop_assert_eq!(out_rid, RsnodeId(local)),
            IngressAction::ForwardTowardRsnode(r) => {
                prop_assert_eq!(r, out_rid);
                prop_assert!(r.is_legal());
            }
            IngressAction::CloneToAcceleratorAndForward => prop_assert!(false, "requests are never cloned"),
        }

        let mut resp = PacketMeta::Response {
            rid: RsnodeId(rid),
            magic: MagicField::RESPONSE,
            sm: SourceMarker::default(),
            src_host: src,
            dst_host: 3,
        };
        let action = rules.ingress(&mut resp, from_host);
        let PacketMeta::Response { magic, sm, .. } = resp else { panic!() };
        if from_host {
            prop_assert_eq!(sm, SourceMarker { pod: 1, rack: 2 });
        }
        match action {
            IngressAction::CloneToAcceleratorAndForward => {
                prop_assert_eq!(RsnodeId(rid), RsnodeId(local));
                prop_assert_eq!(magic, MagicField::MONITORED);
            }
            IngressAction::ForwardTowardRsnode(r) => prop_assert_eq!(r, RsnodeId(rid)),
            other => prop_assert!(false, "unexpected response action {other:?}"),
        }
    }

    /// Monitor totals are conserved: the snapshot's counters sum to the
    /// number of recorded responses, bucketed by the correct tier.
    #[test]
    fn monitor_conserves_counts(
        events in proptest::collection::vec((0u32..5, 0u16..4, 0u16..8), 0..200),
    ) {
        let local = SourceMarker { pod: 0, rack: 0 };
        let mut monitor = Monitor::new(local);
        let mut expected = std::collections::HashMap::<u32, [u64; 3]>::new();
        for (group, pod, rack) in &events {
            let sm = SourceMarker { pod: *pod, rack: *rack };
            monitor.record(*group, sm);
            let tier = if sm.same_rack(local) { 2 } else if sm.same_pod(local) { 1 } else { 0 };
            expected.entry(*group).or_default()[tier] += 1;
        }
        let snap = monitor.snapshot(SimTime::from_nanos(1));
        let total: u64 = snap.counts.iter().flat_map(|(_, c)| c.iter()).sum();
        prop_assert_eq!(total as usize, events.len());
        for (group, counts) in snap.counts {
            prop_assert_eq!(expected.remove(&group), Some(counts));
        }
        prop_assert!(expected.values().all(|c| c.iter().all(|&x| x == 0)));
    }

    /// A non-NetRS packet is never modified by any rules.
    #[test]
    fn foreign_traffic_untouched(local in any::<u16>(), from_host in any::<bool>()) {
        let rules = NetRsRules::switch(RsnodeId(local));
        let mut pkt = PacketMeta::Other;
        prop_assert_eq!(rules.ingress(&mut pkt, from_host), IngressAction::Forward);
        prop_assert_eq!(pkt, PacketMeta::Other);
        prop_assert_eq!(pkt.kind(), PacketKind::Other);
    }
}
