//! Property-based tests of the fat-tree and its routing.

use netrs_topology::{extra_hops, FatTree, HostId, Tier};
use proptest::prelude::*;

fn arb_tree() -> impl Strategy<Value = FatTree> {
    (1u32..=8).prop_map(|half| FatTree::new(half * 2).expect("even arity"))
}

proptest! {
    /// Structural counts always satisfy the fat-tree formulas.
    #[test]
    fn counts_are_consistent(topo in arb_tree()) {
        let k = topo.arity();
        prop_assert_eq!(topo.num_hosts(), k * k * k / 4);
        prop_assert_eq!(topo.num_tors(), k * k / 2);
        prop_assert_eq!(topo.num_aggs(), k * k / 2);
        prop_assert_eq!(topo.num_cores(), k * k / 4);
        prop_assert_eq!(topo.num_switches(), topo.num_tors() + topo.num_aggs() + topo.num_cores());
        prop_assert_eq!(topo.hosts_per_rack() * topo.num_tors(), topo.num_hosts());
    }

    /// Every default path is link-connected, endpoint-correct, and has
    /// the canonical 1/3/5 switch count for its traffic tier.
    #[test]
    fn default_paths_are_valid(topo in arb_tree(), a in any::<u32>(), b in any::<u32>(), hash in any::<u64>()) {
        let n = topo.num_hosts();
        let (src, dst) = (HostId(a % n), HostId(b % n));
        prop_assume!(src != dst);
        let path = topo.path(src, dst, hash);
        prop_assert_eq!(path[0], topo.tor_of_host(src));
        prop_assert_eq!(*path.last().unwrap(), topo.tor_of_host(dst));
        prop_assert!(path.windows(2).all(|w| topo.switches_adjacent(w[0], w[1])));
        let expected = match topo.traffic_tier(src, dst) {
            Tier::Tor => 1,
            Tier::Agg => 3,
            Tier::Core => 5,
        };
        prop_assert_eq!(path.len(), expected);
        prop_assert_eq!(topo.default_forwardings(src, dst) as usize, expected);
    }

    /// Via-waypoint paths contain the waypoint, stay link-connected, and
    /// their length excess over the default path matches the Eq. 7 cost
    /// model whenever the waypoint is a legal candidate (own ToR, own-pod
    /// agg, or any core).
    #[test]
    fn via_paths_match_cost_model(topo in arb_tree(), a in any::<u32>(), b in any::<u32>(), w in any::<u32>(), hash in any::<u64>()) {
        let n = topo.num_hosts();
        let (src, dst) = (HostId(a % n), HostId(b % n));
        prop_assume!(src != dst);
        let via = netrs_topology::SwitchId(w % topo.num_switches());
        let path = topo.path_via(src, via, dst, hash);
        prop_assert!(path.contains(&via));
        prop_assert!(path.windows(2).all(|p| p[0] == p[1] || topo.switches_adjacent(p[0], p[1])));
        prop_assert_eq!(path[0], topo.tor_of_host(src));
        prop_assert_eq!(*path.last().unwrap(), topo.tor_of_host(dst));

        // Candidate-legality: the R matrix of §III-B.
        let legal = match topo.tier(via) {
            Tier::Tor => via == topo.tor_of_host(src),
            Tier::Agg => topo.pod_of_switch(via) == Some(topo.pod_of_host(src)),
            Tier::Core => true,
        };
        if legal {
            let default_len = topo.path(src, dst, hash).len() as u32;
            let expected_extra = extra_hops(topo.traffic_tier(src, dst), topo.tier(via));
            prop_assert!(
                path.len() as u32 <= default_len + expected_extra,
                "path {} vs default {} + extra {}",
                path.len(), default_len, expected_extra
            );
        }
    }

    /// Traffic-tier classification is symmetric and consistent with
    /// rack/pod co-location.
    #[test]
    fn traffic_tiers_symmetric(topo in arb_tree(), a in any::<u32>(), b in any::<u32>()) {
        let n = topo.num_hosts();
        let (x, y) = (HostId(a % n), HostId(b % n));
        prop_assert_eq!(topo.traffic_tier(x, y), topo.traffic_tier(y, x));
        match topo.traffic_tier(x, y) {
            Tier::Tor => prop_assert_eq!(topo.rack_of_host(x), topo.rack_of_host(y)),
            Tier::Agg => {
                prop_assert_eq!(topo.pod_of_host(x), topo.pod_of_host(y));
                prop_assert_ne!(topo.rack_of_host(x), topo.rack_of_host(y));
            }
            Tier::Core => prop_assert_ne!(topo.pod_of_host(x), topo.pod_of_host(y)),
        }
    }

    /// ECMP: for fixed endpoints, varying only the flow hash never
    /// changes the path length, and all chosen paths are valid.
    #[test]
    fn ecmp_paths_are_equal_cost(topo in arb_tree(), a in any::<u32>(), b in any::<u32>()) {
        let n = topo.num_hosts();
        let (src, dst) = (HostId(a % n), HostId(b % n));
        prop_assume!(src != dst);
        let base_len = topo.path(src, dst, 0).len();
        for hash in [1u64, 99, 12345, u64::MAX] {
            prop_assert_eq!(topo.path(src, dst, hash).len(), base_len);
        }
    }
}
