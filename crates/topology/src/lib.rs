//! The data-center network substrate of the NetRS reproduction.
//!
//! NetRS (§II) assumes the multi-rooted tree topology of modern data
//! centers; the evaluation (§V-A) uses a 16-ary, 3-tier fat-tree with 1024
//! end-hosts. This crate implements the k-ary fat-tree of Al-Fares et al.
//! (SIGCOMM'08): `k` pods, each with `k/2` ToR and `k/2` aggregation
//! switches, `(k/2)²` core switches, and `k³/4` hosts, with ECMP multipath
//! routing between them.
//!
//! Besides plain shortest-path routing, the crate provides the two pieces
//! NetRS needs from the network:
//!
//! * **via-waypoint routing** ([`FatTree::path_via`]) — the path a NetRS
//!   packet takes when its RSNode is *not* on the default path, and
//! * **tier/traffic classification** (§III-B): switch tier IDs counted from
//!   the core tier downward ([`Tier`]), the Tier-0/1/2 classification of a
//!   host pair's traffic ([`FatTree::traffic_tier`]), and the extra-hop cost
//!   of detouring traffic of one tier through an RSNode of another
//!   ([`extra_hops`], Eq. 7 of the paper).
//!
//! # Examples
//!
//! ```
//! use netrs_topology::{FatTree, HostId, Tier};
//!
//! let net = FatTree::new(4)?;
//! assert_eq!(net.num_hosts(), 16);
//! assert_eq!(net.num_switches(), 20);
//!
//! let (a, b) = (HostId(0), HostId(15));
//! assert_eq!(net.traffic_tier(a, b), Tier::Core); // different pods
//! let path = net.path(a, b, 7);
//! assert_eq!(path.len(), 5); // ToR, Agg, Core, Agg, ToR
//! # Ok::<(), netrs_topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifies an end-host (`0..k³/4`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct HostId(pub u32);

/// Identifies a switch by its global index: ToRs first, then aggregation
/// switches, then cores.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SwitchId(pub u32);

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Switch tiers, numbered as in §III-B of the paper: the tier ID is the
/// minimum number of hops to the top (core) tier, so core = 0,
/// aggregation = 1, ToR = 2.
///
/// The same numbers classify traffic: `Tier::Tor` ("Tier-2 traffic") is
/// rack-local, `Tier::Agg` ("Tier-1") pod-local, and `Tier::Core`
/// ("Tier-0") crosses pods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Core switches (tier ID 0, the top tier).
    Core = 0,
    /// Aggregation switches (tier ID 1).
    Agg = 1,
    /// Top-of-Rack switches (tier ID 2).
    Tor = 2,
}

impl Tier {
    /// The numeric tier ID used in the placement ILP (§III-B).
    #[must_use]
    pub fn id(self) -> u32 {
        self as u32
    }

    /// All tiers, top (core) first.
    pub const ALL: [Tier; 3] = [Tier::Core, Tier::Agg, Tier::Tor];
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tier::Core => write!(f, "core"),
            Tier::Agg => write!(f, "agg"),
            Tier::Tor => write!(f, "tor"),
        }
    }
}

/// Errors building a topology or routing through one with failed links.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The fat-tree arity must be an even integer of at least 2.
    BadArity(u32),
    /// The host's access link is down: nothing can reach it and it can
    /// reach nothing.
    HostPartitioned(HostId),
    /// Every equal-cost path between the endpoints crosses a dead link.
    NoAlivePath,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::BadArity(k) => {
                write!(f, "fat-tree arity must be even and >= 2, got {k}")
            }
            TopologyError::HostPartitioned(h) => {
                write!(f, "host {h} is partitioned (its access link is down)")
            }
            TopologyError::NoAlivePath => {
                write!(f, "every equal-cost path crosses a dead link")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected physical link of the fat-tree: a host's access link or
/// a switch-to-switch link. Switch endpoints are stored in ascending id
/// order so either naming order compares equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Link {
    /// The access link between a host and its ToR.
    HostUplink(HostId),
    /// A link between two switches (normalized: lower id first).
    SwitchLink(SwitchId, SwitchId),
}

impl Link {
    /// The access link of a host.
    #[must_use]
    pub fn uplink(h: HostId) -> Link {
        Link::HostUplink(h)
    }

    /// The link between two switches, in either naming order.
    #[must_use]
    pub fn between(a: SwitchId, b: SwitchId) -> Link {
        if a.0 <= b.0 {
            Link::SwitchLink(a, b)
        } else {
            Link::SwitchLink(b, a)
        }
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Link::HostUplink(h) => write!(f, "{h}<->s{}", h.0),
            Link::SwitchLink(a, b) => write!(f, "{a}<->{b}"),
        }
    }
}

/// A set of links — typically the currently failed ones that routing
/// must steer around.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkSet {
    links: std::collections::BTreeSet<Link>,
}

impl LinkSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        LinkSet::default()
    }

    /// Adds a link; returns whether it was newly inserted.
    pub fn insert(&mut self, link: Link) -> bool {
        self.links.insert(link)
    }

    /// Removes a link; returns whether it was present.
    pub fn remove(&mut self, link: &Link) -> bool {
        self.links.remove(link)
    }

    /// Whether the set contains a link.
    #[must_use]
    pub fn contains(&self, link: &Link) -> bool {
        self.links.contains(link)
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Number of links in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Whether every switch-to-switch hop of `path` avoids this set.
    #[must_use]
    pub fn switch_path_avoids(&self, path: &[SwitchId]) -> bool {
        path.windows(2)
            .all(|w| !self.contains(&Link::between(w[0], w[1])))
    }
}

/// Extra forwarding hops paid by traffic whose natural highest tier is
/// `traffic` when it is detoured through an RSNode at tier `rsnode`
/// (Eq. 7 of the paper).
///
/// Climbing above the traffic's natural highest tier costs two extra
/// forwardings per tier level (up and back down); an RSNode at or above the
/// natural tier is on-path and free. E.g. rack-local (Tier-2) traffic pays
/// 4 extra hops to reach a core RSNode — the paper's own worked example.
///
/// Note: the paper's Eq. 7 prints the coefficient as `2(h(i,j) + k)`; the
/// worked example ("the extra hops of the request is 4 = 5 − 1") and a
/// direct hop count both give `2(h(i,j) − k)`, i.e. `2 · (traffic tier −
/// RSNode tier)`. We implement the version consistent with the example.
///
/// # Examples
///
/// ```
/// use netrs_topology::{extra_hops, Tier};
///
/// assert_eq!(extra_hops(Tier::Tor, Tier::Core), 4); // paper's example
/// assert_eq!(extra_hops(Tier::Tor, Tier::Agg), 2);
/// assert_eq!(extra_hops(Tier::Agg, Tier::Agg), 0);
/// assert_eq!(extra_hops(Tier::Core, Tier::Agg), 0); // on-path
/// ```
#[must_use]
pub fn extra_hops(traffic: Tier, rsnode: Tier) -> u32 {
    2 * traffic.id().saturating_sub(rsnode.id())
}

/// A k-ary, 3-tier fat-tree (Al-Fares et al., SIGCOMM'08).
///
/// All structure is computed arithmetically from `k`; the topology itself
/// needs O(1) memory regardless of scale.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FatTree {
    k: u32,
}

impl FatTree {
    /// Builds a `k`-ary fat-tree.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::BadArity`] if `k` is odd or below 2.
    pub fn new(k: u32) -> Result<Self, TopologyError> {
        if k < 2 || !k.is_multiple_of(2) {
            return Err(TopologyError::BadArity(k));
        }
        Ok(FatTree { k })
    }

    /// The arity `k`.
    #[must_use]
    pub fn arity(&self) -> u32 {
        self.k
    }

    /// Half the arity (`k/2`) — ports per direction, hosts per rack, racks
    /// per pod.
    #[must_use]
    fn half(&self) -> u32 {
        self.k / 2
    }

    /// Number of pods (`k`).
    #[must_use]
    pub fn num_pods(&self) -> u32 {
        self.k
    }

    /// Number of end-hosts (`k³/4`).
    #[must_use]
    pub fn num_hosts(&self) -> u32 {
        self.k * self.k * self.k / 4
    }

    /// Hosts attached to each ToR (`k/2`).
    #[must_use]
    pub fn hosts_per_rack(&self) -> u32 {
        self.half()
    }

    /// Hosts in each pod (`(k/2)²`).
    #[must_use]
    pub fn hosts_per_pod(&self) -> u32 {
        self.half() * self.half()
    }

    /// Number of ToR switches (`k²/2`).
    #[must_use]
    pub fn num_tors(&self) -> u32 {
        self.k * self.half()
    }

    /// Number of aggregation switches (`k²/2`).
    #[must_use]
    pub fn num_aggs(&self) -> u32 {
        self.k * self.half()
    }

    /// Number of core switches (`(k/2)²`).
    #[must_use]
    pub fn num_cores(&self) -> u32 {
        self.half() * self.half()
    }

    /// Total number of switches.
    #[must_use]
    pub fn num_switches(&self) -> u32 {
        self.num_tors() + self.num_aggs() + self.num_cores()
    }

    /// Iterates over all switch IDs (ToRs, then aggs, then cores).
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> {
        (0..self.num_switches()).map(SwitchId)
    }

    /// Iterates over all host IDs.
    pub fn hosts(&self) -> impl Iterator<Item = HostId> {
        (0..self.num_hosts()).map(HostId)
    }

    /// The tier of a switch.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[must_use]
    pub fn tier(&self, s: SwitchId) -> Tier {
        if s.0 < self.num_tors() {
            Tier::Tor
        } else if s.0 < self.num_tors() + self.num_aggs() {
            Tier::Agg
        } else {
            assert!(s.0 < self.num_switches(), "switch {s} out of range");
            Tier::Core
        }
    }

    /// The pod of a host.
    #[must_use]
    pub fn pod_of_host(&self, h: HostId) -> u32 {
        h.0 / self.hosts_per_pod()
    }

    /// The rack (global ToR index, `0..num_tors`) of a host.
    #[must_use]
    pub fn rack_of_host(&self, h: HostId) -> u32 {
        h.0 / self.hosts_per_rack()
    }

    /// The ToR switch a host is attached to.
    #[must_use]
    pub fn tor_of_host(&self, h: HostId) -> SwitchId {
        SwitchId(self.rack_of_host(h))
    }

    /// The hosts attached to a rack (global ToR index).
    pub fn hosts_in_rack(&self, rack: u32) -> impl Iterator<Item = HostId> {
        let per = self.hosts_per_rack();
        (rack * per..(rack + 1) * per).map(HostId)
    }

    /// The pod a switch belongs to; `None` for core switches, which belong
    /// to no pod.
    #[must_use]
    pub fn pod_of_switch(&self, s: SwitchId) -> Option<u32> {
        match self.tier(s) {
            Tier::Tor => Some(s.0 / self.half()),
            Tier::Agg => Some((s.0 - self.num_tors()) / self.half()),
            Tier::Core => None,
        }
    }

    /// The ToR switch with in-pod index `i` in pod `p`.
    #[must_use]
    pub fn tor(&self, pod: u32, i: u32) -> SwitchId {
        debug_assert!(pod < self.k && i < self.half());
        SwitchId(pod * self.half() + i)
    }

    /// The aggregation switch with in-pod index `i` in pod `p`.
    #[must_use]
    pub fn agg(&self, pod: u32, i: u32) -> SwitchId {
        debug_assert!(pod < self.k && i < self.half());
        SwitchId(self.num_tors() + pod * self.half() + i)
    }

    /// The core switch with global core index `c`.
    #[must_use]
    pub fn core(&self, c: u32) -> SwitchId {
        debug_assert!(c < self.num_cores());
        SwitchId(self.num_tors() + self.num_aggs() + c)
    }

    /// The core index of a core switch, or `None` for other tiers.
    #[must_use]
    pub fn core_index(&self, s: SwitchId) -> Option<u32> {
        (self.tier(s) == Tier::Core).then(|| s.0 - self.num_tors() - self.num_aggs())
    }

    /// The in-pod index of a ToR or aggregation switch, or `None` for core
    /// switches.
    #[must_use]
    pub fn index_in_pod(&self, s: SwitchId) -> Option<u32> {
        match self.tier(s) {
            Tier::Tor => Some(s.0 % self.half()),
            Tier::Agg => Some((s.0 - self.num_tors()) % self.half()),
            Tier::Core => None,
        }
    }

    /// The in-pod index of the aggregation switches a core connects to
    /// (every pod's aggregation switch with this index links to the core).
    #[must_use]
    fn core_group(&self, core_index: u32) -> u32 {
        core_index / self.half()
    }

    /// Whether two switches are directly connected by a link.
    #[must_use]
    pub fn switches_adjacent(&self, a: SwitchId, b: SwitchId) -> bool {
        let (lo, hi) = if self.tier(a) >= self.tier(b) {
            (b, a) // lo is the higher tier (numerically smaller)
        } else {
            (a, b)
        };
        match (self.tier(lo), self.tier(hi)) {
            (Tier::Agg, Tier::Tor) => self.pod_of_switch(lo) == self.pod_of_switch(hi),
            (Tier::Core, Tier::Agg) => {
                let c = self.core_index(lo).expect("lo is core");
                self.index_in_pod(hi) == Some(self.core_group(c))
            }
            _ => false,
        }
    }

    /// Classifies the traffic between two hosts by the highest tier its
    /// default path touches: [`Tier::Tor`] (Tier-2) within a rack,
    /// [`Tier::Agg`] (Tier-1) within a pod, [`Tier::Core`] (Tier-0) across
    /// pods. Two equal hosts classify as rack-local.
    #[must_use]
    pub fn traffic_tier(&self, a: HostId, b: HostId) -> Tier {
        if self.rack_of_host(a) == self.rack_of_host(b) {
            Tier::Tor
        } else if self.pod_of_host(a) == self.pod_of_host(b) {
            Tier::Agg
        } else {
            Tier::Core
        }
    }

    /// The ECMP default path between two hosts as the ordered list of
    /// switches traversed. `flow_hash` selects among equal-cost paths
    /// deterministically. Returns an empty path when `src == dst`.
    #[must_use]
    pub fn path(&self, src: HostId, dst: HostId, flow_hash: u64) -> Vec<SwitchId> {
        if src == dst {
            return Vec::new();
        }
        match self.traffic_tier(src, dst) {
            Tier::Tor => vec![self.tor_of_host(src)],
            Tier::Agg => {
                let pod = self.pod_of_host(src);
                let i = (flow_hash % u64::from(self.half())) as u32;
                vec![
                    self.tor_of_host(src),
                    self.agg(pod, i),
                    self.tor_of_host(dst),
                ]
            }
            Tier::Core => {
                let c = (flow_hash % u64::from(self.num_cores())) as u32;
                self.path_via_core(src, dst, c)
            }
        }
    }

    fn path_via_core(&self, src: HostId, dst: HostId, core_index: u32) -> Vec<SwitchId> {
        let g = self.core_group(core_index);
        vec![
            self.tor_of_host(src),
            self.agg(self.pod_of_host(src), g),
            self.core(core_index),
            self.agg(self.pod_of_host(dst), g),
            self.tor_of_host(dst),
        ]
    }

    /// Path from a host up to a given switch (inclusive). Used to route a
    /// request toward its RSNode.
    #[must_use]
    pub fn path_host_to_switch(&self, src: HostId, w: SwitchId, flow_hash: u64) -> Vec<SwitchId> {
        let tor_s = self.tor_of_host(src);
        let pod_s = self.pod_of_host(src);
        match self.tier(w) {
            Tier::Tor => {
                if w == tor_s {
                    vec![w]
                } else if self.pod_of_switch(w) == Some(pod_s) {
                    let i = (flow_hash % u64::from(self.half())) as u32;
                    vec![tor_s, self.agg(pod_s, i), w]
                } else {
                    let c = (flow_hash % u64::from(self.num_cores())) as u32;
                    let g = self.core_group(c);
                    vec![
                        tor_s,
                        self.agg(pod_s, g),
                        self.core(c),
                        self.agg(self.pod_of_switch(w).expect("tor has a pod"), g),
                        w,
                    ]
                }
            }
            Tier::Agg => {
                let pod_w = self.pod_of_switch(w).expect("agg has a pod");
                if pod_w == pod_s {
                    vec![tor_s, w]
                } else {
                    // Reach the foreign agg through one of the cores it
                    // connects to; its own pod index determines the group.
                    let i_w = self.index_in_pod(w).expect("agg has an index");
                    let c = i_w * self.half() + (flow_hash % u64::from(self.half())) as u32;
                    vec![tor_s, self.agg(pod_s, i_w), self.core(c), w]
                }
            }
            Tier::Core => {
                let c = self.core_index(w).expect("w is core");
                vec![tor_s, self.agg(pod_s, self.core_group(c)), w]
            }
        }
    }

    /// Path from a switch down (or over) to a host, *excluding* the
    /// starting switch. Reversing the host-to-switch construction keeps
    /// every consecutive pair directly connected.
    #[must_use]
    pub fn path_switch_to_host(&self, w: SwitchId, dst: HostId, flow_hash: u64) -> Vec<SwitchId> {
        let mut up = self.path_host_to_switch(dst, w, flow_hash);
        up.pop(); // drop `w` itself
        up.reverse();
        up
    }

    /// The full path between two hosts constrained to pass through the
    /// waypoint switch `via` (the RSNode). If `via` already lies on a
    /// default path, the result is simply a default path through it.
    #[must_use]
    pub fn path_via(
        &self,
        src: HostId,
        via: SwitchId,
        dst: HostId,
        flow_hash: u64,
    ) -> Vec<SwitchId> {
        let mut p = self.path_host_to_switch(src, via, flow_hash);
        p.extend(self.path_switch_to_host(via, dst, flow_hash));
        p
    }

    // ---- closed-form hop counts -----------------------------------------
    //
    // Every equal-cost ECMP candidate between two endpoints has the same
    // length, so hop counts depend only on the tier classification — not
    // on the flow hash. These closed forms let timing-only callers skip
    // materializing a path `Vec` entirely; each is pinned to its path
    // builder by the `hops_agree_with_path_lengths` test.

    /// `self.path(src, dst, _).len()` in O(1): the number of switches on
    /// a default host-to-host path (0 same-host, 1 rack, 3 pod, 5 core).
    #[must_use]
    pub fn hops(&self, src: HostId, dst: HostId) -> u32 {
        if src == dst {
            return 0;
        }
        match self.traffic_tier(src, dst) {
            Tier::Tor => 1,
            Tier::Agg => 3,
            Tier::Core => 5,
        }
    }

    /// `self.path_host_to_switch(src, w, _).len()` in O(1).
    #[must_use]
    pub fn hops_host_to_switch(&self, src: HostId, w: SwitchId) -> u32 {
        let pod_s = self.pod_of_host(src);
        match self.tier(w) {
            Tier::Tor => {
                if w == self.tor_of_host(src) {
                    1
                } else if self.pod_of_switch(w) == Some(pod_s) {
                    3
                } else {
                    5
                }
            }
            Tier::Agg => {
                if self.pod_of_switch(w) == Some(pod_s) {
                    2
                } else {
                    4
                }
            }
            Tier::Core => 3,
        }
    }

    /// `self.path_switch_to_host(w, dst, _).len()` in O(1): the upward
    /// construction minus the starting switch itself.
    #[must_use]
    pub fn hops_switch_to_host(&self, w: SwitchId, dst: HostId) -> u32 {
        self.hops_host_to_switch(dst, w) - 1
    }

    /// `self.path_via(src, via, dst, _).len()` in O(1).
    #[must_use]
    pub fn hops_via(&self, src: HostId, via: SwitchId, dst: HostId) -> u32 {
        self.hops_host_to_switch(src, via) + self.hops_switch_to_host(via, dst)
    }

    /// Like [`FatTree::path`], but masks the ECMP choice over `dead`
    /// links: candidates are probed starting from the hash-selected one,
    /// and the first fully alive path wins. With an empty `dead` set the
    /// result is exactly [`FatTree::path`].
    ///
    /// # Errors
    ///
    /// [`TopologyError::HostPartitioned`] when either host's access link
    /// is dead; [`TopologyError::NoAlivePath`] when every equal-cost
    /// path crosses a dead link.
    pub fn path_avoiding(
        &self,
        src: HostId,
        dst: HostId,
        flow_hash: u64,
        dead: &LinkSet,
    ) -> Result<Vec<SwitchId>, TopologyError> {
        if dead.is_empty() {
            return Ok(self.path(src, dst, flow_hash));
        }
        if src == dst {
            return Ok(Vec::new());
        }
        self.check_uplink(src, dead)?;
        self.check_uplink(dst, dead)?;
        match self.traffic_tier(src, dst) {
            // Both hosts hang off one ToR: the uplinks are the whole path.
            Tier::Tor => Ok(vec![self.tor_of_host(src)]),
            Tier::Agg => {
                let pod = self.pod_of_host(src);
                let n = u64::from(self.half());
                Self::first_alive(n, flow_hash, dead, |i| {
                    vec![
                        self.tor_of_host(src),
                        self.agg(pod, i),
                        self.tor_of_host(dst),
                    ]
                })
            }
            Tier::Core => {
                let n = u64::from(self.num_cores());
                Self::first_alive(n, flow_hash, dead, |c| self.path_via_core(src, dst, c))
            }
        }
    }

    /// Like [`FatTree::path_host_to_switch`], but masks the ECMP choice
    /// over `dead` links (see [`FatTree::path_avoiding`]).
    ///
    /// # Errors
    ///
    /// See [`FatTree::path_avoiding`].
    pub fn path_host_to_switch_avoiding(
        &self,
        src: HostId,
        w: SwitchId,
        flow_hash: u64,
        dead: &LinkSet,
    ) -> Result<Vec<SwitchId>, TopologyError> {
        if dead.is_empty() {
            return Ok(self.path_host_to_switch(src, w, flow_hash));
        }
        self.check_uplink(src, dead)?;
        let tor_s = self.tor_of_host(src);
        let pod_s = self.pod_of_host(src);
        match self.tier(w) {
            Tier::Tor => {
                if w == tor_s {
                    Ok(vec![w])
                } else if self.pod_of_switch(w) == Some(pod_s) {
                    let n = u64::from(self.half());
                    Self::first_alive(n, flow_hash, dead, |i| vec![tor_s, self.agg(pod_s, i), w])
                } else {
                    let n = u64::from(self.num_cores());
                    let pod_w = self.pod_of_switch(w).expect("tor has a pod");
                    Self::first_alive(n, flow_hash, dead, |c| {
                        let g = self.core_group(c);
                        vec![
                            tor_s,
                            self.agg(pod_s, g),
                            self.core(c),
                            self.agg(pod_w, g),
                            w,
                        ]
                    })
                }
            }
            Tier::Agg => {
                let pod_w = self.pod_of_switch(w).expect("agg has a pod");
                if pod_w == pod_s {
                    // A pod's ToR reaches each of its aggs by one link.
                    Self::first_alive(1, flow_hash, dead, |_| vec![tor_s, w])
                } else {
                    // A foreign agg is reachable through the k/2 cores of
                    // its group; the group is fixed by its in-pod index.
                    let i_w = self.index_in_pod(w).expect("agg has an index");
                    let n = u64::from(self.half());
                    Self::first_alive(n, flow_hash, dead, |j| {
                        let c = i_w * self.half() + j;
                        vec![tor_s, self.agg(pod_s, i_w), self.core(c), w]
                    })
                }
            }
            Tier::Core => {
                // Exactly one agg per pod reaches a given core.
                let c = self.core_index(w).expect("w is core");
                Self::first_alive(1, flow_hash, dead, |_| {
                    vec![tor_s, self.agg(pod_s, self.core_group(c)), w]
                })
            }
        }
    }

    /// Like [`FatTree::path_switch_to_host`], but masks the ECMP choice
    /// over `dead` links (see [`FatTree::path_avoiding`]).
    ///
    /// # Errors
    ///
    /// See [`FatTree::path_avoiding`].
    pub fn path_switch_to_host_avoiding(
        &self,
        w: SwitchId,
        dst: HostId,
        flow_hash: u64,
        dead: &LinkSet,
    ) -> Result<Vec<SwitchId>, TopologyError> {
        let mut up = self.path_host_to_switch_avoiding(dst, w, flow_hash, dead)?;
        up.pop(); // drop `w` itself
        up.reverse();
        Ok(up)
    }

    /// Like [`FatTree::path_via`], but masks the ECMP choice over `dead`
    /// links (see [`FatTree::path_avoiding`]).
    ///
    /// # Errors
    ///
    /// See [`FatTree::path_avoiding`].
    pub fn path_via_avoiding(
        &self,
        src: HostId,
        via: SwitchId,
        dst: HostId,
        flow_hash: u64,
        dead: &LinkSet,
    ) -> Result<Vec<SwitchId>, TopologyError> {
        let mut p = self.path_host_to_switch_avoiding(src, via, flow_hash, dead)?;
        p.extend(self.path_switch_to_host_avoiding(via, dst, flow_hash, dead)?);
        Ok(p)
    }

    /// [`TopologyError::HostPartitioned`] when the host's uplink is dead.
    fn check_uplink(&self, h: HostId, dead: &LinkSet) -> Result<(), TopologyError> {
        if dead.contains(&Link::uplink(h)) {
            Err(TopologyError::HostPartitioned(h))
        } else {
            Ok(())
        }
    }

    /// Probes the `n` equal-cost candidates starting at the hash-selected
    /// one and returns the first whose switch hops all avoid `dead`.
    fn first_alive(
        n: u64,
        flow_hash: u64,
        dead: &LinkSet,
        build: impl Fn(u32) -> Vec<SwitchId>,
    ) -> Result<Vec<SwitchId>, TopologyError> {
        for probe in 0..n {
            let candidate = build(((flow_hash + probe) % n) as u32);
            if dead.switch_path_avoids(&candidate) {
                return Ok(candidate);
            }
        }
        Err(TopologyError::NoAlivePath)
    }

    /// Number of links traversed host-to-host along a switch path produced
    /// by [`FatTree::path`] or [`FatTree::path_via`] (switch count + 1).
    #[must_use]
    pub fn link_count(path: &[SwitchId]) -> u32 {
        if path.is_empty() {
            0
        } else {
            path.len() as u32 + 1
        }
    }

    /// Classifies a path segment by the topologically highest tier it
    /// touches (the tier of smallest numeric ID: core = 0). For a full
    /// host-to-host default path this agrees with
    /// [`FatTree::traffic_tier`]; it also classifies partial segments
    /// (host→RSNode, RSNode→host) where no host pair exists. An empty
    /// path (same-host traffic) classifies as rack-local.
    #[must_use]
    pub fn path_tier(&self, path: &[SwitchId]) -> Tier {
        path.iter()
            .map(|&s| self.tier(s))
            .min()
            .unwrap_or(Tier::Tor)
    }

    /// Number of switch forwardings on the default path between two hosts
    /// (1, 3 or 5 for rack-, pod- and core-tier traffic respectively).
    #[must_use]
    pub fn default_forwardings(&self, src: HostId, dst: HostId) -> u32 {
        self.hops(src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net() -> FatTree {
        FatTree::new(4).unwrap()
    }

    #[test]
    fn path_tier_matches_traffic_tier_on_default_paths() {
        let net = net();
        for a in net.hosts() {
            for b in net.hosts() {
                if a == b {
                    continue;
                }
                for hash in [0u64, 7, 13] {
                    let p = net.path(a, b, hash);
                    assert_eq!(
                        net.path_tier(&p),
                        net.traffic_tier(a, b),
                        "{a}->{b} hash {hash}"
                    );
                }
            }
        }
        assert_eq!(net.path_tier(&[]), Tier::Tor, "same-host is rack-local");
    }

    #[test]
    fn hops_agree_with_path_lengths() {
        // The closed-form hop counts must equal the materialized path
        // lengths for every endpoint pair and several ECMP hashes — the
        // allocation-free Fabric timing fast path leans on this.
        for net in [FatTree::new(4).unwrap(), FatTree::new(8).unwrap()] {
            for a in net.hosts() {
                for b in net.hosts() {
                    for hash in [0u64, 7, 13] {
                        assert_eq!(
                            net.hops(a, b),
                            net.path(a, b, hash).len() as u32,
                            "hops {a}->{b} hash {hash}"
                        );
                    }
                    for w in net.switches() {
                        assert_eq!(
                            net.hops_host_to_switch(a, w),
                            net.path_host_to_switch(a, w, 5).len() as u32,
                            "host_to_switch {a}->{w}"
                        );
                        assert_eq!(
                            net.hops_switch_to_host(w, a),
                            net.path_switch_to_host(w, a, 5).len() as u32,
                            "switch_to_host {w}->{a}"
                        );
                        assert_eq!(
                            net.hops_via(a, w, b),
                            net.path_via(a, w, b, 5).len() as u32,
                            "via {a}->{w}->{b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn path_tier_classifies_partial_segments() {
        let net = net();
        // Host 0 up to its own ToR: rack-local.
        let tor = net.tor_of_host(HostId(0));
        assert_eq!(
            net.path_tier(&net.path_host_to_switch(HostId(0), tor, 0)),
            Tier::Tor
        );
        // Host 0 up to an agg in its pod: pod-local.
        let agg = net.agg(0, 0);
        assert_eq!(
            net.path_tier(&net.path_host_to_switch(HostId(0), agg, 0)),
            Tier::Agg
        );
        // Host 0 up to a core: cross-pod class.
        let core = net.core(0);
        assert_eq!(
            net.path_tier(&net.path_host_to_switch(HostId(0), core, 0)),
            Tier::Core
        );
    }

    #[test]
    fn arity_validation() {
        assert_eq!(FatTree::new(3), Err(TopologyError::BadArity(3)));
        assert_eq!(FatTree::new(0), Err(TopologyError::BadArity(0)));
        assert!(FatTree::new(2).is_ok());
        let err = FatTree::new(5).unwrap_err();
        assert!(err.to_string().contains("5"));
    }

    #[test]
    fn counts_match_fat_tree_formulas() {
        let n = net();
        assert_eq!(n.num_hosts(), 16);
        assert_eq!(n.num_tors(), 8);
        assert_eq!(n.num_aggs(), 8);
        assert_eq!(n.num_cores(), 4);
        assert_eq!(n.num_pods(), 4);

        let paper = FatTree::new(16).unwrap();
        assert_eq!(
            paper.num_hosts(),
            1024,
            "paper's 16-ary tree has 1024 hosts"
        );
        assert_eq!(paper.num_cores(), 64);
        assert_eq!(paper.num_tors(), 128);
    }

    #[test]
    fn tiers_partition_switches() {
        let n = net();
        let mut counts = [0u32; 3];
        for s in n.switches() {
            counts[n.tier(s).id() as usize] += 1;
        }
        assert_eq!(counts, [4, 8, 8]); // core, agg, tor
    }

    #[test]
    fn host_coordinates() {
        let n = net();
        assert_eq!(n.pod_of_host(HostId(0)), 0);
        assert_eq!(n.pod_of_host(HostId(15)), 3);
        assert_eq!(n.rack_of_host(HostId(5)), 2);
        assert_eq!(n.tor_of_host(HostId(5)), SwitchId(2));
        let rack: Vec<_> = n.hosts_in_rack(2).collect();
        assert_eq!(rack, vec![HostId(4), HostId(5)]);
    }

    #[test]
    fn traffic_tier_classification() {
        let n = net();
        assert_eq!(n.traffic_tier(HostId(0), HostId(1)), Tier::Tor);
        assert_eq!(n.traffic_tier(HostId(0), HostId(2)), Tier::Agg);
        assert_eq!(n.traffic_tier(HostId(0), HostId(4)), Tier::Core);
        assert_eq!(n.traffic_tier(HostId(9), HostId(9)), Tier::Tor);
    }

    #[test]
    fn default_paths_have_expected_shape() {
        let n = net();
        assert_eq!(n.path(HostId(0), HostId(1), 0), vec![SwitchId(0)]);

        let pod_path = n.path(HostId(0), HostId(2), 1);
        assert_eq!(pod_path.len(), 3);
        assert_eq!(n.tier(pod_path[1]), Tier::Agg);

        let core_path = n.path(HostId(0), HostId(12), 2);
        assert_eq!(core_path.len(), 5);
        assert_eq!(n.tier(core_path[2]), Tier::Core);
        assert!(core_path
            .windows(2)
            .all(|w| n.switches_adjacent(w[0], w[1])));
    }

    #[test]
    fn ecmp_spreads_over_all_cores() {
        let n = net();
        let mut seen = std::collections::HashSet::new();
        for h in 0..100 {
            let p = n.path(HostId(0), HostId(12), h);
            seen.insert(p[2]);
        }
        assert_eq!(seen.len() as u32, n.num_cores());
    }

    #[test]
    fn all_paths_are_link_connected() {
        let n = net();
        for src in n.hosts() {
            for dst in n.hosts() {
                if src == dst {
                    continue;
                }
                for hash in [0u64, 1, 7, 13] {
                    let p = n.path(src, dst, hash);
                    assert_eq!(p[0], n.tor_of_host(src));
                    assert_eq!(*p.last().unwrap(), n.tor_of_host(dst));
                    assert!(
                        p.windows(2).all(|w| n.switches_adjacent(w[0], w[1])),
                        "disconnected path {p:?} for {src}->{dst}"
                    );
                }
            }
        }
    }

    #[test]
    fn via_paths_contain_waypoint_and_are_connected() {
        let n = net();
        for src in n.hosts() {
            for via in n.switches() {
                let dst = HostId((src.0 + 5) % n.num_hosts());
                if src == dst {
                    continue;
                }
                let p = n.path_via(src, via, dst, 3);
                assert!(p.contains(&via), "{src} via {via} to {dst}: {p:?}");
                assert_eq!(p[0], n.tor_of_host(src));
                assert_eq!(*p.last().unwrap(), n.tor_of_host(dst));
                assert!(
                    p.windows(2)
                        .all(|w| w[0] == w[1] || n.switches_adjacent(w[0], w[1])),
                    "disconnected via-path {p:?} for {src} via {via} to {dst}"
                );
            }
        }
    }

    #[test]
    fn via_own_tor_equals_default_for_rack_traffic() {
        let n = net();
        let p = n.path_via(HostId(0), SwitchId(0), HostId(1), 0);
        assert_eq!(p, vec![SwitchId(0)]);
    }

    #[test]
    fn extra_hops_matches_paper_example() {
        // §III-B: rack-local traffic to a core RSNode pays 4 extra hops.
        assert_eq!(extra_hops(Tier::Tor, Tier::Core), 4);
        assert_eq!(extra_hops(Tier::Tor, Tier::Agg), 2);
        assert_eq!(extra_hops(Tier::Tor, Tier::Tor), 0);
        assert_eq!(extra_hops(Tier::Agg, Tier::Core), 2);
        assert_eq!(extra_hops(Tier::Agg, Tier::Agg), 0);
        assert_eq!(extra_hops(Tier::Core, Tier::Core), 0);
        // RSNodes at or above the traffic tier are on-path.
        assert_eq!(extra_hops(Tier::Core, Tier::Tor), 0);
    }

    #[test]
    fn extra_hops_agrees_with_actual_path_lengths() {
        // The Eq. 7 cost model must agree with the router: detouring
        // rack-local traffic through a core adds exactly 4 forwardings.
        let n = net();
        let (src, dst) = (HostId(0), HostId(1));
        let via = n.core(0);
        let detoured = n.path_via(src, via, dst, 0).len() as u32;
        let default = n.path(src, dst, 0).len() as u32;
        assert_eq!(detoured - default, extra_hops(Tier::Tor, Tier::Core));

        // Pod-local traffic through a core adds 2.
        let (src, dst) = (HostId(0), HostId(2));
        let detoured = n.path_via(src, via, dst, 0).len() as u32;
        let default = n.path(src, dst, 0).len() as u32;
        assert_eq!(detoured - default, extra_hops(Tier::Agg, Tier::Core));

        // Cross-pod traffic through a core is free.
        let (src, dst) = (HostId(0), HostId(12));
        let detoured = n.path_via(src, via, dst, 0).len() as u32;
        let default = n.path(src, dst, 0).len() as u32;
        assert_eq!(detoured - default, 0);
    }

    #[test]
    fn adjacency_rules() {
        let n = net();
        // ToR 0 (pod 0) connects to aggs of pod 0 only.
        assert!(n.switches_adjacent(n.tor(0, 0), n.agg(0, 0)));
        assert!(n.switches_adjacent(n.tor(0, 0), n.agg(0, 1)));
        assert!(!n.switches_adjacent(n.tor(0, 0), n.agg(1, 0)));
        // Agg with index i connects to cores in group i.
        assert!(n.switches_adjacent(n.agg(0, 0), n.core(0)));
        assert!(n.switches_adjacent(n.agg(0, 0), n.core(1)));
        assert!(!n.switches_adjacent(n.agg(0, 0), n.core(2)));
        assert!(n.switches_adjacent(n.agg(3, 1), n.core(3)));
        // Same-tier switches never connect.
        assert!(!n.switches_adjacent(n.tor(0, 0), n.tor(0, 1)));
        assert!(!n.switches_adjacent(n.core(0), n.core(1)));
    }

    #[test]
    fn core_degree_is_one_agg_per_pod() {
        let n = net();
        for c in 0..n.num_cores() {
            let core = n.core(c);
            for pod in 0..n.num_pods() {
                let connected: Vec<_> = (0..n.half())
                    .filter(|&i| n.switches_adjacent(core, n.agg(pod, i)))
                    .collect();
                assert_eq!(connected.len(), 1, "core {c} pod {pod}");
            }
        }
    }

    #[test]
    fn default_forwardings_match_paper() {
        let n = net();
        assert_eq!(n.default_forwardings(HostId(0), HostId(1)), 1);
        assert_eq!(n.default_forwardings(HostId(0), HostId(2)), 3);
        assert_eq!(n.default_forwardings(HostId(0), HostId(12)), 5);
        assert_eq!(n.default_forwardings(HostId(3), HostId(3)), 0);
    }

    #[test]
    fn link_count_is_switches_plus_one() {
        let n = net();
        let p = n.path(HostId(0), HostId(12), 0);
        assert_eq!(FatTree::link_count(&p), 6);
        assert_eq!(FatTree::link_count(&[]), 0);
    }

    #[test]
    fn avoiding_with_empty_set_is_exactly_the_default_path() {
        let n = net();
        let dead = LinkSet::new();
        for src in n.hosts() {
            for dst in n.hosts() {
                for hash in [0u64, 7, 13] {
                    assert_eq!(
                        n.path_avoiding(src, dst, hash, &dead).unwrap(),
                        n.path(src, dst, hash)
                    );
                }
            }
        }
        for src in n.hosts() {
            for w in n.switches() {
                assert_eq!(
                    n.path_host_to_switch_avoiding(src, w, 5, &dead).unwrap(),
                    n.path_host_to_switch(src, w, 5)
                );
                assert_eq!(
                    n.path_switch_to_host_avoiding(w, src, 5, &dead).unwrap(),
                    n.path_switch_to_host(w, src, 5)
                );
            }
        }
    }

    #[test]
    fn dead_core_link_reroutes_cross_pod_traffic() {
        let n = net();
        let (src, dst) = (HostId(0), HostId(12));
        // Find the hash-preferred path and kill its agg->core link.
        let preferred = n.path(src, dst, 3);
        let mut dead = LinkSet::new();
        dead.insert(Link::between(preferred[1], preferred[2]));
        let rerouted = n.path_avoiding(src, dst, 3, &dead).unwrap();
        assert_ne!(rerouted, preferred, "route must change");
        assert_eq!(rerouted.len(), 5, "still a core-tier path");
        assert!(dead.switch_path_avoids(&rerouted));
        assert!(
            rerouted.windows(2).all(|w| n.switches_adjacent(w[0], w[1])),
            "rerouted path stays link-connected: {rerouted:?}"
        );
        // Unaffected flows keep their original route.
        let other = n.path(src, dst, 0);
        if dead.switch_path_avoids(&other) {
            assert_eq!(n.path_avoiding(src, dst, 0, &dead).unwrap(), other);
        }
    }

    #[test]
    fn dead_uplink_partitions_the_host() {
        let n = net();
        let mut dead = LinkSet::new();
        dead.insert(Link::uplink(HostId(5)));
        assert_eq!(
            n.path_avoiding(HostId(5), HostId(12), 0, &dead),
            Err(TopologyError::HostPartitioned(HostId(5))),
            "partitioned as source"
        );
        assert_eq!(
            n.path_avoiding(HostId(0), HostId(5), 0, &dead),
            Err(TopologyError::HostPartitioned(HostId(5))),
            "partitioned as destination"
        );
        assert_eq!(
            n.path_host_to_switch_avoiding(HostId(5), n.core(0), 0, &dead),
            Err(TopologyError::HostPartitioned(HostId(5)))
        );
        assert_eq!(
            n.path_switch_to_host_avoiding(n.core(0), HostId(5), 0, &dead),
            Err(TopologyError::HostPartitioned(HostId(5)))
        );
        // Other hosts in the same rack are unaffected.
        assert!(n.path_avoiding(HostId(4), HostId(12), 0, &dead).is_ok());
        // Recovery restores the original route.
        dead.remove(&Link::uplink(HostId(5)));
        assert_eq!(
            n.path_avoiding(HostId(5), HostId(12), 0, &dead).unwrap(),
            n.path(HostId(5), HostId(12), 0)
        );
    }

    #[test]
    fn severed_tor_reports_no_alive_path() {
        let n = net();
        // Kill both uplinks of ToR 0 toward its pod's aggs: hosts 0 and 1
        // can still talk to each other but not beyond the rack.
        let mut dead = LinkSet::new();
        dead.insert(Link::between(n.tor(0, 0), n.agg(0, 0)));
        dead.insert(Link::between(n.tor(0, 0), n.agg(0, 1)));
        assert_eq!(
            n.path_avoiding(HostId(0), HostId(1), 0, &dead).unwrap(),
            vec![SwitchId(0)],
            "rack-local traffic survives"
        );
        assert_eq!(
            n.path_avoiding(HostId(0), HostId(2), 0, &dead),
            Err(TopologyError::NoAlivePath),
            "pod-tier traffic has no route"
        );
        assert_eq!(
            n.path_avoiding(HostId(0), HostId(12), 0, &dead),
            Err(TopologyError::NoAlivePath),
            "core-tier traffic has no route"
        );
    }

    #[test]
    fn single_path_segments_fail_without_detours() {
        let n = net();
        // A ToR reaches a same-pod agg over exactly one link.
        let mut dead = LinkSet::new();
        dead.insert(Link::between(n.tor(0, 0), n.agg(0, 0)));
        assert_eq!(
            n.path_host_to_switch_avoiding(HostId(0), n.agg(0, 0), 0, &dead),
            Err(TopologyError::NoAlivePath)
        );
        // The sibling agg is still reachable.
        assert!(n
            .path_host_to_switch_avoiding(HostId(0), n.agg(0, 1), 0, &dead)
            .is_ok());
    }

    #[test]
    fn link_normalization_ignores_naming_order() {
        assert_eq!(
            Link::between(SwitchId(9), SwitchId(2)),
            Link::between(SwitchId(2), SwitchId(9))
        );
        let mut set = LinkSet::new();
        assert!(set.insert(Link::between(SwitchId(9), SwitchId(2))));
        assert!(set.contains(&Link::between(SwitchId(2), SwitchId(9))));
        assert!(!set.insert(Link::between(SwitchId(2), SwitchId(9))));
        assert_eq!(set.len(), 1);
        assert!(set.remove(&Link::between(SwitchId(9), SwitchId(2))));
        assert!(set.is_empty());
    }

    #[test]
    fn rerouted_paths_avoid_every_dead_candidate() {
        let n = net();
        // Kill three of the four cores' uplinks from pod 0's agg group 0;
        // flows that hashed onto them must all fall back to the survivor.
        let mut dead = LinkSet::new();
        for c in 0..3 {
            let core = n.core(c);
            let g = c / n.half();
            dead.insert(Link::between(n.agg(0, g), core));
            dead.insert(Link::between(n.agg(3, g), core));
        }
        for hash in 0..16u64 {
            let p = n.path_avoiding(HostId(0), HostId(12), hash, &dead).unwrap();
            assert!(dead.switch_path_avoids(&p), "hash {hash}: {p:?}");
            assert!(p.windows(2).all(|w| n.switches_adjacent(w[0], w[1])));
        }
    }

    #[test]
    fn degenerate_two_ary_tree_works() {
        let n = FatTree::new(2).unwrap();
        assert_eq!(n.num_hosts(), 2);
        assert_eq!(n.num_cores(), 1);
        let p = n.path(HostId(0), HostId(1), 0);
        assert!(p.windows(2).all(|w| n.switches_adjacent(w[0], w[1])));
        assert_eq!(p.len(), 5); // the two hosts are in different pods
    }
}
