//! A counting global allocator for host-performance profiling.
//!
//! The rest of the workspace forbids `unsafe`, but implementing
//! [`GlobalAlloc`] requires it — so the single `unsafe impl` lives here,
//! in a crate whose whole job is to wrap [`System`] with four relaxed
//! atomic counters (allocations, deallocations, live bytes, peak bytes).
//!
//! Registration stays with the binary that opts in:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: netrs_allocprobe::CountingAllocator = netrs_allocprobe::CountingAllocator;
//! ```
//!
//! [`snapshot`] reads the counters at any point; diffing two snapshots
//! with [`AllocSnapshot::delta`] attributes allocation activity to a
//! region of the run. When the allocator is *not* registered every
//! counter stays zero, which callers use to report "allocation tracking
//! unavailable" instead of fabricated zeros.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Heap allocations performed (`alloc` + `realloc` calls).
    pub allocs: u64,
    /// Heap deallocations performed.
    pub deallocs: u64,
    /// Bytes currently live on the heap.
    pub live_bytes: u64,
    /// Highest `live_bytes` ever observed.
    pub peak_bytes: u64,
}

impl AllocSnapshot {
    /// Counter movement since `earlier`: allocation and deallocation
    /// counts are differenced; `live_bytes` and `peak_bytes` keep the
    /// later (current) reading, since a peak is not meaningfully
    /// differenced.
    #[must_use]
    pub fn delta(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs - earlier.allocs,
            deallocs: self.deallocs - earlier.deallocs,
            live_bytes: self.live_bytes,
            peak_bytes: self.peak_bytes,
        }
    }

    /// Whether every counter is zero — i.e. the counting allocator was
    /// never registered (any real Rust program allocates at startup).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        *self == AllocSnapshot::default()
    }
}

/// Reads the current counter values.
#[must_use]
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Relaxed),
        deallocs: DEALLOCS.load(Relaxed),
        live_bytes: LIVE_BYTES.load(Relaxed),
        peak_bytes: PEAK_BYTES.load(Relaxed),
    }
}

fn on_alloc(size: usize) {
    ALLOCS.fetch_add(1, Relaxed);
    let live = LIVE_BYTES.fetch_add(size as u64, Relaxed) + size as u64;
    // Lock-free max: races only ever lose to a larger concurrent peak.
    let mut peak = PEAK_BYTES.load(Relaxed);
    while live > peak {
        match PEAK_BYTES.compare_exchange_weak(peak, live, Relaxed, Relaxed) {
            Ok(_) => break,
            Err(observed) => peak = observed,
        }
    }
}

fn on_dealloc(size: usize) {
    DEALLOCS.fetch_add(1, Relaxed);
    LIVE_BYTES.fetch_sub(size as u64, Relaxed);
}

/// [`System`] plus counters. Zero-sized; register with
/// `#[global_allocator]` to activate counting for the whole process.
pub struct CountingAllocator;

// SAFETY: defers every allocation verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter updates never touch the memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            // Count a realloc as one dealloc + one alloc so byte
            // accounting stays exact whether or not the block moved.
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}
