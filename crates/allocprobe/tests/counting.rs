//! Integration test that actually registers the counting allocator.
//!
//! This lives in an integration test (its own process) so registering
//! the global allocator cannot leak into other tests.

use netrs_allocprobe::{snapshot, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

#[test]
fn counters_track_alloc_dealloc_and_peak() {
    let before = snapshot();
    assert!(
        !before.is_empty(),
        "the test harness itself allocates before the test body runs"
    );

    let v: Vec<u8> = Vec::with_capacity(1 << 20);
    let mid = snapshot();
    drop(v);
    let after = snapshot();

    let during = mid.delta(&before);
    assert!(during.allocs >= 1, "Vec::with_capacity must allocate");
    assert!(
        mid.live_bytes >= before.live_bytes + (1 << 20),
        "a live 1 MiB buffer must show in live_bytes"
    );
    assert!(
        mid.peak_bytes >= mid.live_bytes.min(before.live_bytes + (1 << 20)),
        "peak must be at least the observed live high"
    );

    let total = after.delta(&before);
    assert!(total.deallocs >= 1, "dropping the Vec must deallocate");
    assert!(
        after.live_bytes < mid.live_bytes,
        "live bytes must fall after the drop"
    );
    // Peak never decreases.
    assert!(after.peak_bytes >= mid.peak_bytes);
}

#[test]
fn grow_via_realloc_keeps_byte_accounting_exact() {
    let before = snapshot();
    let mut v: Vec<u8> = vec![0; 16];
    v.reserve_exact(1 << 16); // forces realloc on the existing block
    let mid = snapshot();
    assert!(mid.live_bytes >= before.live_bytes + (1 << 16));
    drop(v);
    let after = snapshot();
    assert!(after.live_bytes <= mid.live_bytes - (1 << 16) + 64);
}
