//! Property-based tests of the replica selectors.

use netrs_kvstore::ServerId;
use netrs_selection::{
    C3Config, C3Selector, CubicConfig, CubicRateController, Feedback, ReplicaSelector, SelectorKind,
};
use netrs_simcore::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

fn arb_feedback() -> impl Strategy<Value = Feedback> {
    (0u32..16, 0u32..50, 1u64..20_000, 1u64..200_000).prop_map(|(s, q, svc_us, lat_us)| Feedback {
        server: ServerId(s),
        queue_len: q,
        service_time: SimDuration::from_micros(svc_us),
        latency: SimDuration::from_micros(lat_us),
    })
}

proptest! {
    /// Every selector kind: rank is always a permutation of the
    /// candidates, select is its head, and outstanding counters never
    /// underflow, across arbitrary interleavings of events.
    #[test]
    fn selectors_are_well_behaved(
        kind in prop_oneof![
            Just(SelectorKind::C3),
            Just(SelectorKind::Random),
            Just(SelectorKind::RoundRobin),
            Just(SelectorKind::LeastOutstanding),
            Just(SelectorKind::PowerOfTwo),
            Just(SelectorKind::DynamicSnitch),
        ],
        seed in any::<u64>(),
        events in proptest::collection::vec(prop_oneof![
            arb_feedback().prop_map(Some),
            Just(None), // None = a select+send round
        ], 1..100),
    ) {
        let mut sel = kind.build(C3Config::default(), SimRng::from_seed(seed));
        let candidates: Vec<ServerId> = (0..8).map(ServerId).collect();
        let now = SimTime::ZERO;
        for ev in events {
            match ev {
                Some(fb) => sel.on_response(&fb, now),
                None => {
                    let ranked = sel.rank(&candidates, now);
                    let mut sorted = ranked.clone();
                    sorted.sort_unstable();
                    prop_assert_eq!(&sorted, &candidates, "rank must permute");
                    let pick = ranked[0];
                    sel.on_send(pick, now);
                }
            }
            for &s in &candidates {
                // Accessing outstanding never panics; its value is
                // bounded by the number of sends (<= events).
                prop_assert!(sel.outstanding(s) <= 100);
            }
        }
    }

    /// C3 score is monotone in the queue estimate: more queue, higher
    /// (worse) score, all else equal.
    #[test]
    fn c3_score_monotone_in_queue(q1 in 0u32..100, q2 in 0u32..100, svc_us in 100u64..10_000) {
        prop_assume!(q1 < q2);
        let mk = |q: u32| {
            let mut sel = C3Selector::new(C3Config::default(), SimRng::from_seed(1));
            sel.on_response(&Feedback {
                server: ServerId(0),
                queue_len: q,
                service_time: SimDuration::from_micros(svc_us),
                latency: SimDuration::from_millis(5),
            }, SimTime::ZERO);
            sel.score(ServerId(0))
        };
        prop_assert!(mk(q1) < mk(q2));
    }

    /// C3 score is monotone in observed latency.
    #[test]
    fn c3_score_monotone_in_latency(l1 in 1u64..100_000, l2 in 1u64..100_000) {
        prop_assume!(l1 < l2);
        let mk = |lat: u64| {
            let mut sel = C3Selector::new(C3Config::default(), SimRng::from_seed(1));
            sel.on_response(&Feedback {
                server: ServerId(0),
                queue_len: 3,
                service_time: SimDuration::from_millis(2),
                latency: SimDuration::from_micros(lat),
            }, SimTime::ZERO);
            sel.score(ServerId(0))
        };
        prop_assert!(mk(l1) < mk(l2));
    }

    /// The token bucket never grants more sends than `burst + rate·t`.
    #[test]
    fn cubic_bucket_never_overspends(
        rate in 1.0f64..1_000.0,
        burst in 1.0f64..8.0,
        attempts in 1usize..200,
        gap_us in 0u64..5_000,
    ) {
        let cfg = CubicConfig { init_rate: rate, burst, ..CubicConfig::default() };
        let mut ctl = CubicRateController::new(cfg);
        let mut now = SimTime::ZERO;
        let mut granted = 0u32;
        for _ in 0..attempts {
            now += SimDuration::from_micros(gap_us);
            if ctl.try_send(ServerId(0), now) {
                granted += 1;
            }
        }
        let elapsed = now.as_secs_f64();
        // No responses arrived, so the rate never grew past init_rate.
        let ceiling = burst + rate * elapsed + 1.0;
        prop_assert!(
            f64::from(granted) <= ceiling,
            "granted {granted} > ceiling {ceiling}"
        );
    }

    /// Rate stays within [min_rate, +smax·responses] regardless of the
    /// response pattern.
    #[test]
    fn cubic_rate_bounded(
        seed in any::<u64>(),
        events in proptest::collection::vec((any::<bool>(), 1u64..100_000), 1..100),
    ) {
        let cfg = CubicConfig::default();
        let mut ctl = CubicRateController::new(cfg);
        let mut rng = SimRng::from_seed(seed);
        let mut now = SimTime::ZERO;
        let mut responses = 0u32;
        for (is_resp, gap) in events {
            now += SimDuration::from_micros(gap);
            if is_resp {
                ctl.on_response(ServerId(0), now);
                responses += 1;
            } else {
                let _ = ctl.try_send(ServerId(0), now);
            }
            let _ = rng.next_u64();
            let r = ctl.rate(ServerId(0));
            prop_assert!(r >= cfg.min_rate);
            prop_assert!(
                r <= cfg.init_rate + cfg.smax * f64::from(responses) + 1e-9,
                "rate {r} grew past the per-response cap"
            );
        }
    }
}
