//! Replica-selection algorithms.
//!
//! Every scheme in the NetRS evaluation ranks replicas with **C3**
//! (Suresh et al., NSDI'15) — the state-of-the-art selector the paper
//! builds on; what varies is *where* the selector runs (client vs.
//! in-network RSNode). This crate implements C3 faithfully
//! ([`C3Selector`]: EWMA tracking of response times and piggybacked server
//! status, concurrency compensation, cubic queue penalty, and optional
//! cubic rate control via [`CubicRateController`]) along with the classic
//! baselines the C3 paper compares against: random, round-robin,
//! least-outstanding-requests, power-of-two-choices, and Cassandra-style
//! dynamic snitching.
//!
//! All selectors implement [`ReplicaSelector`], the interface NetRS
//! operators and clients drive: rank candidates at request time, account
//! an outstanding request on send, and fold in [`Feedback`] when a
//! response passes by.
//!
//! # Examples
//!
//! ```
//! use netrs_kvstore::ServerId;
//! use netrs_selection::{C3Config, C3Selector, Feedback, ReplicaSelector};
//! use netrs_simcore::{SimDuration, SimRng, SimTime};
//!
//! let mut c3 = C3Selector::new(C3Config::default(), SimRng::from_seed(7));
//! let replicas = [ServerId(0), ServerId(1), ServerId(2)];
//!
//! // Tell the selector server 1 is fast and idle...
//! c3.on_response(
//!     &Feedback {
//!         server: ServerId(1),
//!         queue_len: 0,
//!         service_time: SimDuration::from_millis(1),
//!         latency: SimDuration::from_millis(1),
//!     },
//!     SimTime::ZERO,
//! );
//! // ...and server 0 is slow and deeply queued.
//! c3.on_response(
//!     &Feedback {
//!         server: ServerId(0),
//!         queue_len: 40,
//!         service_time: SimDuration::from_millis(4),
//!         latency: SimDuration::from_millis(90),
//!     },
//!     SimTime::ZERO,
//! );
//! let pick = c3.select(&replicas, SimTime::ZERO);
//! assert_ne!(pick, ServerId(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod baselines;
mod c3;
mod cubic;

pub use baselines::{
    DynamicSnitch, LeastOutstanding, PowerOfTwoChoices, RandomSelector, RoundRobin,
};
pub use c3::{C3Config, C3Selector};
pub use cubic::{CubicConfig, CubicRateController};

use netrs_kvstore::ServerId;
use netrs_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Everything an RSNode learns from one response: the piggybacked server
/// status plus the response time it measured itself (via the retaining
/// value, §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Feedback {
    /// The server that produced the response.
    pub server: ServerId,
    /// Piggybacked pending-request count.
    pub queue_len: u32,
    /// Piggybacked service-time estimate.
    pub service_time: SimDuration,
    /// Response time observed by this RSNode.
    pub latency: SimDuration,
}

/// A replica-selection algorithm running at one RSNode (a client under
/// CliRS, a network accelerator under NetRS).
pub trait ReplicaSelector {
    /// Orders `candidates` from most to least preferred.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `candidates` is empty.
    fn rank(&mut self, candidates: &[ServerId], now: SimTime) -> Vec<ServerId>;

    /// Picks the preferred replica (the head of [`ReplicaSelector::rank`]).
    fn select(&mut self, candidates: &[ServerId], now: SimTime) -> ServerId {
        self.rank(candidates, now)[0]
    }

    /// Accounts a request dispatched to `server`.
    fn on_send(&mut self, server: ServerId, now: SimTime);

    /// Folds in feedback from a response this RSNode observed.
    fn on_response(&mut self, feedback: &Feedback, now: SimTime);

    /// Notes that a request sent to `server` timed out at the client.
    ///
    /// Selectors may use this to steer subsequent picks away from a
    /// server that has stopped answering (crashed, partitioned, or
    /// overwhelmed). The default implementation ignores the signal;
    /// [`C3Selector`] applies an additive score penalty that doubles on
    /// each repeated timeout and clears on the next successful response.
    fn on_timeout(&mut self, server: ServerId, now: SimTime) {
        let _ = (server, now);
    }

    /// Outstanding requests this RSNode has routed to `server` and not yet
    /// seen answered.
    fn outstanding(&self, server: ServerId) -> u32;

    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;
}

/// Which selection algorithm to instantiate (config/CLI friendly).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum SelectorKind {
    /// C3 scoring with default parameters (the paper's setting).
    #[default]
    C3,
    /// Uniform random choice.
    Random,
    /// Round-robin over the candidate list.
    RoundRobin,
    /// Fewest outstanding requests.
    LeastOutstanding,
    /// Power of two choices by outstanding requests (Mitzenmacher).
    PowerOfTwo,
    /// Cassandra-style dynamic snitching on EWMA latency.
    DynamicSnitch,
}

impl SelectorKind {
    /// Builds a boxed selector of this kind. `c3` parameterizes the C3
    /// variant and is ignored by the baselines.
    #[must_use]
    pub fn build(self, c3: C3Config, rng: SimRng) -> Box<dyn ReplicaSelector + Send> {
        match self {
            SelectorKind::C3 => Box::new(C3Selector::new(c3, rng)),
            SelectorKind::Random => Box::new(RandomSelector::new(rng)),
            SelectorKind::RoundRobin => Box::new(RoundRobin::new()),
            SelectorKind::LeastOutstanding => Box::new(LeastOutstanding::new(rng)),
            SelectorKind::PowerOfTwo => Box::new(PowerOfTwoChoices::new(rng)),
            SelectorKind::DynamicSnitch => Box::new(DynamicSnitch::new(0.1, 0.9, rng)),
        }
    }

    /// Builds a boxed selector with C3's concurrency compensation set to
    /// the number of peer selectors sharing the server pool — the one
    /// piece of `c3` that depends on where the selector runs (every
    /// client under CliRS, every RSNode under NetRS) rather than on the
    /// configuration. This is the single entry point schemes should use.
    #[must_use]
    pub fn build_with_concurrency(
        self,
        mut c3: C3Config,
        concurrency: f64,
        rng: SimRng,
    ) -> Box<dyn ReplicaSelector + Send> {
        c3.concurrency = concurrency;
        self.build(c3, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_with_concurrency_overrides_config() {
        // The helper must override whatever concurrency the config
        // carries; both calls below must behave like the explicit form.
        let c3 = C3Config {
            concurrency: 1.0,
            ..C3Config::default()
        };
        let candidates = [ServerId(0), ServerId(1)];
        let mut explicit = {
            let mut c = c3;
            c.concurrency = 8.0;
            SelectorKind::C3.build(c, SimRng::from_seed(3))
        };
        let mut via_helper = SelectorKind::C3.build_with_concurrency(c3, 8.0, SimRng::from_seed(3));
        for step in 0..16u64 {
            let now = SimTime::ZERO + SimDuration::from_micros(step);
            assert_eq!(
                explicit.select(&candidates, now),
                via_helper.select(&candidates, now)
            );
        }
    }

    #[test]
    fn kind_builds_every_selector() {
        let kinds = [
            (SelectorKind::C3, "c3"),
            (SelectorKind::Random, "random"),
            (SelectorKind::RoundRobin, "round-robin"),
            (SelectorKind::LeastOutstanding, "least-outstanding"),
            (SelectorKind::PowerOfTwo, "power-of-two"),
            (SelectorKind::DynamicSnitch, "dynamic-snitch"),
        ];
        let candidates = [ServerId(0), ServerId(1), ServerId(2)];
        for (kind, name) in kinds {
            let mut s = kind.build(C3Config::default(), SimRng::from_seed(1));
            assert_eq!(s.name(), name);
            let pick = s.select(&candidates, SimTime::ZERO);
            assert!(candidates.contains(&pick));
            let ranked = s.rank(&candidates, SimTime::ZERO);
            assert_eq!(ranked.len(), 3);
            let mut sorted = ranked.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, candidates.to_vec(), "rank must permute candidates");
        }
    }
}
