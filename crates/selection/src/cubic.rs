//! Cubic rate control (C3's "distributed rate control", CRC).
//!
//! Besides ranking replicas, C3 shapes how fast each RSNode *sends* to
//! each server: a token bucket per (RSNode, server) pair whose refill rate
//! grows along a cubic curve while the server keeps up and backs off
//! multiplicatively when the observed receive rate falls behind the send
//! rate. This reproduces the congestion-control analogy of the C3 paper
//! (rate ← `C·(Δt − K)³ + R_max` with `K = ∛(R_max·β/C)`).
//!
//! The controller is deliberately separate from [`crate::C3Selector`]: the
//! NetRS paper's schemes rank with C3 everywhere, but rate control only
//! makes sense where requests can wait in a send queue (clients). The
//! ABL-B ablation toggles it.

use std::collections::HashMap;

use netrs_kvstore::ServerId;
use netrs_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Cubic rate-control parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CubicConfig {
    /// Initial per-server send rate (requests/second).
    pub init_rate: f64,
    /// Floor on the send rate (requests/second).
    pub min_rate: f64,
    /// Multiplicative decrease factor β (rate keeps `1 − β` on backoff).
    pub beta: f64,
    /// Cubic growth coefficient `C` (rate units per cubed second).
    pub c: f64,
    /// Maximum additive rate step per growth update (requests/second).
    pub smax: f64,
    /// Minimum spacing between two multiplicative decreases.
    pub hysteresis: SimDuration,
    /// Token-bucket burst capacity.
    pub burst: f64,
    /// EWMA old-value weight for the send/receive rate estimators.
    pub alpha: f64,
}

impl Default for CubicConfig {
    fn default() -> Self {
        CubicConfig {
            init_rate: 100.0,
            min_rate: 0.1,
            beta: 0.2,
            c: 400.0,
            smax: 200.0,
            hysteresis: SimDuration::from_millis(100),
            burst: 4.0,
            alpha: 0.9,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Lane {
    rate: f64,
    tokens: f64,
    last_refill: SimTime,
    r_max: f64,
    last_decrease: SimTime,
    tx_rate: f64,
    last_tx: Option<SimTime>,
    rx_rate: f64,
    last_rx: Option<SimTime>,
}

/// Per-server token buckets with cubic rate adaptation.
#[derive(Debug)]
pub struct CubicRateController {
    cfg: CubicConfig,
    lanes: HashMap<ServerId, Lane>,
}

impl CubicRateController {
    /// Creates a controller.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive, `beta` is outside
    /// `(0, 1)`, or `alpha` is outside `[0, 1)`.
    #[must_use]
    pub fn new(cfg: CubicConfig) -> Self {
        assert!(
            cfg.init_rate > 0.0 && cfg.min_rate > 0.0,
            "rates must be positive"
        );
        assert!(
            (0.0..1.0).contains(&cfg.beta) && cfg.beta > 0.0,
            "beta must be in (0, 1)"
        );
        assert!(
            cfg.c > 0.0 && cfg.smax > 0.0 && cfg.burst >= 1.0,
            "growth parameters must be positive"
        );
        assert!((0.0..1.0).contains(&cfg.alpha), "alpha must be in [0, 1)");
        CubicRateController {
            cfg,
            lanes: HashMap::new(),
        }
    }

    fn lane(&mut self, server: ServerId) -> &mut Lane {
        let cfg = self.cfg;
        self.lanes.entry(server).or_insert(Lane {
            rate: cfg.init_rate,
            tokens: cfg.burst,
            last_refill: SimTime::ZERO,
            r_max: cfg.init_rate,
            last_decrease: SimTime::ZERO,
            tx_rate: 0.0,
            last_tx: None,
            rx_rate: 0.0,
            last_rx: None,
        })
    }

    fn refill(lane: &mut Lane, burst: f64, now: SimTime) {
        let dt = now.saturating_since(lane.last_refill).as_secs_f64();
        lane.tokens = (lane.tokens + lane.rate * dt).min(burst);
        lane.last_refill = now;
    }

    /// The current send-rate limit toward `server` (requests/second).
    #[must_use]
    pub fn rate(&self, server: ServerId) -> f64 {
        self.lanes
            .get(&server)
            .map_or(self.cfg.init_rate, |l| l.rate)
    }

    /// Tries to consume one send token for `server`. Returns `false` when
    /// the bucket is empty (the caller should hold the request until
    /// [`CubicRateController::next_permit_at`]).
    pub fn try_send(&mut self, server: ServerId, now: SimTime) -> bool {
        let burst = self.cfg.burst;
        let alpha = self.cfg.alpha;
        let lane = self.lane(server);
        Self::refill(lane, burst, now);
        if lane.tokens < 1.0 {
            return false;
        }
        lane.tokens -= 1.0;
        if let Some(last) = lane.last_tx {
            let dt = now.saturating_since(last).as_secs_f64();
            if dt > 0.0 {
                lane.tx_rate = alpha * lane.tx_rate + (1.0 - alpha) / dt;
            }
        }
        lane.last_tx = Some(now);
        true
    }

    /// Earliest time a token will be available for `server` (now, if one
    /// already is).
    #[must_use]
    pub fn next_permit_at(&mut self, server: ServerId, now: SimTime) -> SimTime {
        let burst = self.cfg.burst;
        let lane = self.lane(server);
        Self::refill(lane, burst, now);
        if lane.tokens >= 1.0 {
            now
        } else {
            let wait = (1.0 - lane.tokens) / lane.rate;
            now + SimDuration::from_secs_f64(wait)
        }
    }

    /// Folds in one response from `server` and adapts the rate: cubic
    /// growth while the receive rate keeps up with the send rate,
    /// multiplicative decrease (with hysteresis) when it falls behind.
    pub fn on_response(&mut self, server: ServerId, now: SimTime) {
        let cfg = self.cfg;
        let lane = self.lane(server);
        if let Some(last) = lane.last_rx {
            let dt = now.saturating_since(last).as_secs_f64();
            if dt > 0.0 {
                lane.rx_rate = cfg.alpha * lane.rx_rate + (1.0 - cfg.alpha) / dt;
            }
        }
        lane.last_rx = Some(now);

        // Not enough signal yet: keep growing gently.
        let keeping_up = lane.rx_rate + 1e-9 >= lane.tx_rate * 0.9 || lane.last_tx.is_none();
        if keeping_up {
            let t = now.saturating_since(lane.last_decrease).as_secs_f64();
            let k = (lane.r_max * cfg.beta / cfg.c).cbrt();
            let target = cfg.c * (t - k).powi(3) + lane.r_max;
            let grown = (lane.rate + cfg.smax).min(target.max(lane.rate));
            lane.rate = grown.max(cfg.min_rate);
        } else if now.saturating_since(lane.last_decrease) >= cfg.hysteresis {
            lane.r_max = lane.rate;
            lane.rate = (lane.rate * (1.0 - cfg.beta)).max(cfg.min_rate);
            lane.last_decrease = now;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: ServerId = ServerId(0);

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn bucket_limits_burst_then_paces() {
        let mut ctl = CubicRateController::new(CubicConfig {
            init_rate: 10.0, // 10/s => one token per 100ms
            burst: 2.0,
            ..CubicConfig::default()
        });
        assert!(ctl.try_send(S, at(0)));
        assert!(ctl.try_send(S, at(0)));
        assert!(!ctl.try_send(S, at(0)), "burst exhausted");
        // A token accrues after 100ms.
        assert!(!ctl.try_send(S, at(50)));
        assert!(ctl.try_send(S, at(105)));
    }

    #[test]
    fn next_permit_predicts_token_availability() {
        let mut ctl = CubicRateController::new(CubicConfig {
            init_rate: 10.0,
            burst: 1.0,
            ..CubicConfig::default()
        });
        assert_eq!(ctl.next_permit_at(S, at(0)), at(0));
        assert!(ctl.try_send(S, at(0)));
        let permit = ctl.next_permit_at(S, at(0));
        assert!(permit > at(99) && permit <= at(101), "permit at {permit}");
        // And sending at the predicted time succeeds.
        assert!(ctl.try_send(S, permit));
    }

    #[test]
    fn rate_grows_when_server_keeps_up() {
        let mut ctl = CubicRateController::new(CubicConfig::default());
        let before = ctl.rate(S);
        // Paced responses, no sends outstanding: receive rate keeps up.
        for i in 1..100u64 {
            ctl.on_response(S, at(i * 10));
        }
        assert!(ctl.rate(S) > before, "rate should grow: {}", ctl.rate(S));
    }

    #[test]
    fn rate_backs_off_when_receive_rate_lags() {
        let cfg = CubicConfig::default();
        let mut ctl = CubicRateController::new(cfg);
        // Send fast (every 1ms)...
        let mut t = 0u64;
        for _ in 0..50 {
            t += 1;
            let _ = ctl.try_send(S, at(t));
        }
        // ...but responses trickle in every 200ms.
        let r0 = ctl.rate(S);
        for i in 1..=5u64 {
            ctl.on_response(S, at(t + i * 200));
        }
        let r1 = ctl.rate(S);
        assert!(
            r1 < r0,
            "rate should decrease under lag: before {r0}, after {r1}"
        );
        // Backoff is multiplicative by (1 - beta) with hysteresis, so a
        // burst of lagging responses cannot collapse the rate at once.
        assert!(r1 >= r0 * (1.0 - cfg.beta).powi(5) - 1e-6);
        assert!(r1 >= cfg.min_rate);
    }

    #[test]
    fn growth_is_capped_by_smax() {
        let cfg = CubicConfig {
            smax: 5.0,
            ..CubicConfig::default()
        };
        let mut ctl = CubicRateController::new(cfg);
        let r0 = ctl.rate(S);
        ctl.on_response(S, at(10));
        ctl.on_response(S, at(10_000)); // huge cubic target after 10s
        assert!(ctl.rate(S) <= r0 + 2.0 * cfg.smax + 1e-9);
    }

    #[test]
    fn rate_never_drops_below_floor() {
        let cfg = CubicConfig {
            min_rate: 2.0,
            hysteresis: SimDuration::ZERO,
            ..CubicConfig::default()
        };
        let mut ctl = CubicRateController::new(cfg);
        let mut t = 0u64;
        for _ in 0..200 {
            t += 1;
            let _ = ctl.try_send(S, at(t));
        }
        for i in 1..100u64 {
            ctl.on_response(S, at(t + i * 500));
        }
        assert!(ctl.rate(S) >= 2.0);
    }

    #[test]
    fn lanes_are_independent() {
        let mut ctl = CubicRateController::new(CubicConfig {
            init_rate: 10.0,
            burst: 1.0,
            ..CubicConfig::default()
        });
        assert!(ctl.try_send(ServerId(0), at(0)));
        assert!(
            ctl.try_send(ServerId(1), at(0)),
            "separate bucket per server"
        );
        assert!(!ctl.try_send(ServerId(0), at(0)));
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn bad_beta_rejected() {
        let _ = CubicRateController::new(CubicConfig {
            beta: 1.0,
            ..CubicConfig::default()
        });
    }
}
