//! Baseline replica-selection algorithms.
//!
//! These are the classic selectors the C3 paper (and hence NetRS)
//! compares against; they share the [`ReplicaSelector`] interface so any
//! of them can be dropped into a client or a NetRS operator for ablation
//! runs.

use std::collections::HashMap;

use netrs_kvstore::ServerId;
use netrs_simcore::{SimRng, SimTime};

use crate::{Feedback, ReplicaSelector};

fn assert_nonempty(candidates: &[ServerId]) {
    assert!(!candidates.is_empty(), "rank needs at least one candidate");
}

/// Uniform random selection.
#[derive(Debug)]
pub struct RandomSelector {
    outstanding: HashMap<ServerId, u32>,
    rng: SimRng,
}

impl RandomSelector {
    /// Creates a random selector.
    #[must_use]
    pub fn new(rng: SimRng) -> Self {
        RandomSelector {
            outstanding: HashMap::new(),
            rng,
        }
    }
}

impl ReplicaSelector for RandomSelector {
    fn rank(&mut self, candidates: &[ServerId], _now: SimTime) -> Vec<ServerId> {
        assert_nonempty(candidates);
        let mut out = candidates.to_vec();
        self.rng.shuffle(&mut out);
        out
    }

    fn on_send(&mut self, server: ServerId, _now: SimTime) {
        *self.outstanding.entry(server).or_default() += 1;
    }

    fn on_response(&mut self, fb: &Feedback, _now: SimTime) {
        if let Some(os) = self.outstanding.get_mut(&fb.server) {
            *os = os.saturating_sub(1);
        }
    }

    fn outstanding(&self, server: ServerId) -> u32 {
        self.outstanding.get(&server).copied().unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Round-robin over whatever candidate set is presented.
#[derive(Debug, Default)]
pub struct RoundRobin {
    counter: u64,
    outstanding: HashMap<ServerId, u32>,
}

impl RoundRobin {
    /// Creates a round-robin selector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReplicaSelector for RoundRobin {
    fn rank(&mut self, candidates: &[ServerId], _now: SimTime) -> Vec<ServerId> {
        assert_nonempty(candidates);
        let n = candidates.len();
        let start = (self.counter as usize) % n;
        self.counter += 1;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(candidates[(start + i) % n]);
        }
        out
    }

    fn on_send(&mut self, server: ServerId, _now: SimTime) {
        *self.outstanding.entry(server).or_default() += 1;
    }

    fn on_response(&mut self, fb: &Feedback, _now: SimTime) {
        if let Some(os) = self.outstanding.get_mut(&fb.server) {
            *os = os.saturating_sub(1);
        }
    }

    fn outstanding(&self, server: ServerId) -> u32 {
        self.outstanding.get(&server).copied().unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Fewest-outstanding-requests selection (ties broken randomly).
#[derive(Debug)]
pub struct LeastOutstanding {
    outstanding: HashMap<ServerId, u32>,
    rng: SimRng,
}

impl LeastOutstanding {
    /// Creates a least-outstanding selector.
    #[must_use]
    pub fn new(rng: SimRng) -> Self {
        LeastOutstanding {
            outstanding: HashMap::new(),
            rng,
        }
    }
}

impl ReplicaSelector for LeastOutstanding {
    fn rank(&mut self, candidates: &[ServerId], _now: SimTime) -> Vec<ServerId> {
        assert_nonempty(candidates);
        let mut scored: Vec<(u32, u64, ServerId)> = candidates
            .iter()
            .map(|&s| (self.outstanding(s), self.rng.next_u64(), s))
            .collect();
        scored.sort_unstable();
        scored.into_iter().map(|(_, _, s)| s).collect()
    }

    fn on_send(&mut self, server: ServerId, _now: SimTime) {
        *self.outstanding.entry(server).or_default() += 1;
    }

    fn on_response(&mut self, fb: &Feedback, _now: SimTime) {
        if let Some(os) = self.outstanding.get_mut(&fb.server) {
            *os = os.saturating_sub(1);
        }
    }

    fn outstanding(&self, server: ServerId) -> u32 {
        self.outstanding.get(&server).copied().unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "least-outstanding"
    }
}

/// Mitzenmacher's power of two choices: sample two random candidates and
/// keep the one with fewer outstanding requests.
#[derive(Debug)]
pub struct PowerOfTwoChoices {
    outstanding: HashMap<ServerId, u32>,
    rng: SimRng,
}

impl PowerOfTwoChoices {
    /// Creates a power-of-two-choices selector.
    #[must_use]
    pub fn new(rng: SimRng) -> Self {
        PowerOfTwoChoices {
            outstanding: HashMap::new(),
            rng,
        }
    }
}

impl ReplicaSelector for PowerOfTwoChoices {
    fn rank(&mut self, candidates: &[ServerId], _now: SimTime) -> Vec<ServerId> {
        assert_nonempty(candidates);
        if candidates.len() == 1 {
            return candidates.to_vec();
        }
        let picks = self.rng.sample_indices(candidates.len(), 2);
        let (a, b) = (candidates[picks[0]], candidates[picks[1]]);
        let winner = if self.outstanding(a) <= self.outstanding(b) {
            a
        } else {
            b
        };
        // Winner first, then the loser, then everything else in order.
        let mut out = vec![winner];
        out.extend(candidates.iter().copied().filter(|&s| s != winner));
        out
    }

    fn on_send(&mut self, server: ServerId, _now: SimTime) {
        *self.outstanding.entry(server).or_default() += 1;
    }

    fn on_response(&mut self, fb: &Feedback, _now: SimTime) {
        if let Some(os) = self.outstanding.get_mut(&fb.server) {
            *os = os.saturating_sub(1);
        }
    }

    fn outstanding(&self, server: ServerId) -> u32 {
        self.outstanding.get(&server).copied().unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "power-of-two"
    }
}

/// A simplified Cassandra dynamic snitch: rank by EWMA response latency,
/// with an exploration probability so newly recovered servers are
/// re-probed (Cassandra achieves the same with periodic score resets).
#[derive(Debug)]
pub struct DynamicSnitch {
    explore: f64,
    alpha: f64,
    ewma_ns: HashMap<ServerId, f64>,
    outstanding: HashMap<ServerId, u32>,
    rng: SimRng,
}

impl DynamicSnitch {
    /// Creates a dynamic snitch with exploration probability `explore`
    /// and EWMA old-value weight `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `explore` is not in `[0, 1]` or `alpha` not in `[0, 1)`.
    #[must_use]
    pub fn new(explore: f64, alpha: f64, rng: SimRng) -> Self {
        assert!((0.0..=1.0).contains(&explore), "explore must be in [0, 1]");
        assert!((0.0..1.0).contains(&alpha), "alpha must be in [0, 1)");
        DynamicSnitch {
            explore,
            alpha,
            ewma_ns: HashMap::new(),
            outstanding: HashMap::new(),
            rng,
        }
    }
}

impl ReplicaSelector for DynamicSnitch {
    fn rank(&mut self, candidates: &[ServerId], _now: SimTime) -> Vec<ServerId> {
        assert_nonempty(candidates);
        if self.rng.chance(self.explore) {
            let mut out = candidates.to_vec();
            self.rng.shuffle(&mut out);
            return out;
        }
        let mut scored: Vec<(f64, u64, ServerId)> = candidates
            .iter()
            .map(|&s| {
                (
                    self.ewma_ns.get(&s).copied().unwrap_or(0.0),
                    self.rng.next_u64(),
                    s,
                )
            })
            .collect();
        scored.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored.into_iter().map(|(_, _, s)| s).collect()
    }

    fn on_send(&mut self, server: ServerId, _now: SimTime) {
        *self.outstanding.entry(server).or_default() += 1;
    }

    fn on_response(&mut self, fb: &Feedback, _now: SimTime) {
        let sample = fb.latency.as_nanos() as f64;
        self.ewma_ns
            .entry(fb.server)
            .and_modify(|e| *e = self.alpha * *e + (1.0 - self.alpha) * sample)
            .or_insert(sample);
        if let Some(os) = self.outstanding.get_mut(&fb.server) {
            *os = os.saturating_sub(1);
        }
    }

    fn outstanding(&self, server: ServerId) -> u32 {
        self.outstanding.get(&server).copied().unwrap_or(0)
    }

    fn name(&self) -> &'static str {
        "dynamic-snitch"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrs_simcore::SimDuration;

    const T: SimTime = SimTime::ZERO;

    fn fb(server: u32, latency_ms: u64) -> Feedback {
        Feedback {
            server: ServerId(server),
            queue_len: 0,
            service_time: SimDuration::from_millis(1),
            latency: SimDuration::from_millis(latency_ms),
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::new();
        let c = [ServerId(0), ServerId(1), ServerId(2)];
        let picks: Vec<_> = (0..6).map(|_| rr.select(&c, T)).collect();
        assert_eq!(
            picks,
            vec![
                ServerId(0),
                ServerId(1),
                ServerId(2),
                ServerId(0),
                ServerId(1),
                ServerId(2)
            ]
        );
    }

    #[test]
    fn random_covers_all_candidates() {
        let mut r = RandomSelector::new(SimRng::from_seed(4));
        let c = [ServerId(0), ServerId(1), ServerId(2)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(r.select(&c, T));
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn least_outstanding_avoids_loaded_server() {
        let mut lo = LeastOutstanding::new(SimRng::from_seed(5));
        let c = [ServerId(0), ServerId(1)];
        for _ in 0..5 {
            lo.on_send(ServerId(0), T);
        }
        for _ in 0..20 {
            assert_eq!(lo.select(&c, T), ServerId(1));
        }
        // Responses rebalance.
        for _ in 0..5 {
            lo.on_response(&fb(0, 1), T);
        }
        assert_eq!(lo.outstanding(ServerId(0)), 0);
    }

    #[test]
    fn p2c_prefers_less_loaded_of_its_sample() {
        let mut p = PowerOfTwoChoices::new(SimRng::from_seed(6));
        let c = [ServerId(0), ServerId(1)];
        for _ in 0..10 {
            p.on_send(ServerId(1), T);
        }
        // With only two candidates the sample is always {0, 1}.
        for _ in 0..20 {
            assert_eq!(p.select(&c, T), ServerId(0));
        }
    }

    #[test]
    fn p2c_single_candidate() {
        let mut p = PowerOfTwoChoices::new(SimRng::from_seed(7));
        assert_eq!(p.select(&[ServerId(3)], T), ServerId(3));
    }

    #[test]
    fn snitch_tracks_latency_but_explores() {
        let mut s = DynamicSnitch::new(0.1, 0.9, SimRng::from_seed(8));
        let c = [ServerId(0), ServerId(1)];
        for _ in 0..10 {
            s.on_response(&fb(0, 50), T);
            s.on_response(&fb(1, 2), T);
        }
        let picks: Vec<_> = (0..200).map(|_| s.select(&c, T)).collect();
        let fast = picks.iter().filter(|&&p| p == ServerId(1)).count();
        assert!(
            fast > 150,
            "snitch should mostly pick the fast server: {fast}"
        );
        assert!(fast < 200, "snitch should still explore sometimes: {fast}");
    }

    #[test]
    fn snitch_validates_parameters() {
        let r = SimRng::from_seed(0);
        let result = std::panic::catch_unwind(move || DynamicSnitch::new(1.5, 0.9, r));
        assert!(result.is_err());
    }

    #[test]
    fn outstanding_counters_never_underflow() {
        let mut lo = LeastOutstanding::new(SimRng::from_seed(9));
        lo.on_response(&fb(0, 1), T); // response without a send
        assert_eq!(lo.outstanding(ServerId(0)), 0);
    }
}
