//! The C3 replica-ranking algorithm (Suresh et al., NSDI'15).
//!
//! C3 scores each replica `s` with
//!
//! ```text
//! Ψ(s) = R̄_s − T̄_s + q̂_s^b · T̄_s
//! q̂_s = 1 + os_s · n + q̄_s
//! ```
//!
//! where `R̄_s` is the EWMA of response times this RSNode observed from
//! `s`, `T̄_s` the EWMA of the service-time estimates `s` piggybacks,
//! `q̄_s` the EWMA of the queue sizes `s` piggybacks, `os_s` the requests
//! this RSNode currently has outstanding at `s`, `n` the number of
//! cooperating RSNodes (concurrency compensation: each RSNode assumes its
//! peers behave like it does), and `b` the queue-penalty exponent (3 in
//! the paper — the "cubic" in cubic replica selection). Lower is better.
//!
//! The cubic exponent is what suppresses herd behaviour: a replica whose
//! queue estimate is stale-low attracts traffic only until its penalty
//! term explodes, which happens *before* the queue physically builds up
//! because `os_s · n` rises instantly at the RSNode itself.

use netrs_kvstore::ServerId;
use netrs_simcore::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::{Feedback, ReplicaSelector};

/// C3 parameters (paper defaults in [`Default`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct C3Config {
    /// EWMA weight of the *old* value (C3 uses 0.9).
    pub alpha: f64,
    /// Queue-penalty exponent `b` (3 in C3; swept by the ABL-B ablation).
    pub exponent: f64,
    /// Concurrency compensation `n`: how many RSNodes share each server.
    /// Under CliRS this is the client count; under NetRS the (much
    /// smaller) RSNode count.
    pub concurrency: f64,
}

impl Default for C3Config {
    fn default() -> Self {
        C3Config {
            alpha: 0.9,
            exponent: 3.0,
            concurrency: 1.0,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct ServerEstimate {
    ewma_latency_ns: f64,
    ewma_service_ns: f64,
    ewma_queue: f64,
    outstanding: u32,
    responses: u64,
    timeout_penalty_ns: f64,
}

/// Additive score penalty applied after the first timeout (100 ms in
/// nanoseconds); doubles on each further timeout until a response clears
/// it. Large enough to outrank any healthy replica under normal load.
const TIMEOUT_PENALTY_BASE_NS: f64 = 100.0e6;

/// The C3 selector state held by one RSNode.
#[derive(Debug)]
pub struct C3Selector {
    cfg: C3Config,
    /// Per-server estimates indexed by `ServerId.0` (server ids are
    /// dense). A missing slot means "never heard from", which is exactly
    /// the all-zero [`ServerEstimate`] — so reads fall back to the
    /// default and writes grow the table on demand.
    servers: Vec<ServerEstimate>,
    rng: SimRng,
}

impl C3Selector {
    /// Creates a selector.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1)`, `exponent < 1` or
    /// `concurrency < 1`.
    #[must_use]
    pub fn new(cfg: C3Config, rng: SimRng) -> Self {
        assert!((0.0..1.0).contains(&cfg.alpha), "alpha must be in [0, 1)");
        assert!(cfg.exponent >= 1.0, "exponent must be >= 1");
        assert!(cfg.concurrency >= 1.0, "concurrency must be >= 1");
        C3Selector {
            cfg,
            servers: Vec::new(),
            rng,
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &C3Config {
        &self.cfg
    }

    /// Updates the concurrency-compensation factor (the controller resets
    /// it when the number of RSNodes changes after a re-plan).
    ///
    /// # Panics
    ///
    /// Panics if `n < 1`.
    pub fn set_concurrency(&mut self, n: f64) {
        assert!(n >= 1.0, "concurrency must be >= 1");
        self.cfg.concurrency = n;
    }

    fn est(&self, server: ServerId) -> ServerEstimate {
        self.servers
            .get(server.0 as usize)
            .copied()
            .unwrap_or_default()
    }

    fn est_mut(&mut self, server: ServerId) -> &mut ServerEstimate {
        let i = server.0 as usize;
        if i >= self.servers.len() {
            self.servers.resize_with(i + 1, ServerEstimate::default);
        }
        &mut self.servers[i]
    }

    /// The Ψ score of one server (lower is better). Servers never heard
    /// from score by their compensated-outstanding penalty only, so fresh
    /// replicas are explored early.
    #[must_use]
    pub fn score(&self, server: ServerId) -> f64 {
        let est = self.est(server);
        let q_hat = 1.0 + f64::from(est.outstanding) * self.cfg.concurrency + est.ewma_queue;
        est.ewma_latency_ns - est.ewma_service_ns
            + q_hat.powf(self.cfg.exponent) * est.ewma_service_ns
            + est.timeout_penalty_ns
    }

    /// Number of responses folded in from `server` (freshness indicator).
    #[must_use]
    pub fn responses_seen(&self, server: ServerId) -> u64 {
        self.est(server).responses
    }
}

fn ewma(old: f64, sample: f64, alpha: f64, first: bool) -> f64 {
    if first {
        sample
    } else {
        alpha * old + (1.0 - alpha) * sample
    }
}

impl ReplicaSelector for C3Selector {
    fn rank(&mut self, candidates: &[ServerId], _now: SimTime) -> Vec<ServerId> {
        assert!(!candidates.is_empty(), "rank needs at least one candidate");
        // Random jitter breaks ties among equally scored (e.g. unseen)
        // servers so cold-start traffic spreads instead of herding.
        let mut scored: Vec<(f64, u64, ServerId)> = candidates
            .iter()
            .map(|&s| (self.score(s), self.rng.next_u64(), s))
            .collect();
        scored.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        scored.into_iter().map(|(_, _, s)| s).collect()
    }

    /// Allocation-free pick of the best-ranked replica: a single scan
    /// that keeps the first minimum under `rank`'s exact comparator
    /// (score, then jitter), drawing the per-candidate jitter in the
    /// same order — so the choice *and* the RNG stream match
    /// `rank(...)[0]` bit for bit without building the two vectors.
    fn select(&mut self, candidates: &[ServerId], _now: SimTime) -> ServerId {
        assert!(!candidates.is_empty(), "rank needs at least one candidate");
        let mut best = (
            self.score(candidates[0]),
            self.rng.next_u64(),
            candidates[0],
        );
        for &s in &candidates[1..] {
            let key = (self.score(s), self.rng.next_u64(), s);
            let better = match key.0.partial_cmp(&best.0) {
                Some(std::cmp::Ordering::Less) => true,
                Some(std::cmp::Ordering::Greater) => false,
                Some(std::cmp::Ordering::Equal) | None => key.1 < best.1,
            };
            if better {
                best = key;
            }
        }
        best.2
    }

    fn on_send(&mut self, server: ServerId, _now: SimTime) {
        self.est_mut(server).outstanding += 1;
    }

    fn on_response(&mut self, fb: &Feedback, _now: SimTime) {
        let alpha = self.cfg.alpha;
        let est = self.est_mut(fb.server);
        let first = est.responses == 0;
        est.ewma_latency_ns = ewma(
            est.ewma_latency_ns,
            fb.latency.as_nanos() as f64,
            alpha,
            first,
        );
        est.ewma_service_ns = ewma(
            est.ewma_service_ns,
            fb.service_time.as_nanos() as f64,
            alpha,
            first,
        );
        est.ewma_queue = ewma(est.ewma_queue, f64::from(fb.queue_len), alpha, first);
        est.outstanding = est.outstanding.saturating_sub(1);
        est.responses += 1;
        // A response proves the server answers again; drop the penalty.
        est.timeout_penalty_ns = 0.0;
    }

    fn on_timeout(&mut self, server: ServerId, _now: SimTime) {
        let est = self.est_mut(server);
        est.timeout_penalty_ns = (est.timeout_penalty_ns * 2.0).max(TIMEOUT_PENALTY_BASE_NS);
    }

    fn outstanding(&self, server: ServerId) -> u32 {
        self.est(server).outstanding
    }

    fn name(&self) -> &'static str {
        "c3"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrs_simcore::SimDuration;

    fn fb(server: u32, queue: u32, service_ms: u64, latency_ms: u64) -> Feedback {
        Feedback {
            server: ServerId(server),
            queue_len: queue,
            service_time: SimDuration::from_millis(service_ms),
            latency: SimDuration::from_millis(latency_ms),
        }
    }

    fn c3() -> C3Selector {
        C3Selector::new(C3Config::default(), SimRng::from_seed(11))
    }

    #[test]
    fn prefers_lower_latency_server() {
        let mut s = c3();
        let t = SimTime::ZERO;
        for _ in 0..5 {
            s.on_response(&fb(0, 2, 4, 20), t);
            s.on_response(&fb(1, 2, 4, 5), t);
        }
        assert_eq!(s.select(&[ServerId(0), ServerId(1)], t), ServerId(1));
    }

    #[test]
    fn queue_penalty_is_cubic() {
        let mut s = c3();
        let t = SimTime::ZERO;
        // Same latency/service, different queues.
        s.on_response(&fb(0, 10, 4, 8), t);
        s.on_response(&fb(1, 1, 4, 8), t);
        let ratio = s.score(ServerId(0)) / s.score(ServerId(1));
        // (1+10)^3 vs (1+1)^3 dominates: ratio should be large.
        assert!(ratio > 50.0, "cubic penalty too weak: ratio {ratio}");
        assert_eq!(s.select(&[ServerId(0), ServerId(1)], t), ServerId(1));
    }

    #[test]
    fn outstanding_requests_push_score_up() {
        let mut s = c3();
        let t = SimTime::ZERO;
        s.on_response(&fb(0, 1, 4, 8), t);
        s.on_response(&fb(1, 1, 4, 8), t);
        let before = s.score(ServerId(0));
        for _ in 0..3 {
            s.on_send(ServerId(0), t);
        }
        assert_eq!(s.outstanding(ServerId(0)), 3);
        assert!(s.score(ServerId(0)) > before);
        assert_eq!(s.select(&[ServerId(0), ServerId(1)], t), ServerId(1));
        // Responses drain the outstanding count.
        s.on_response(&fb(0, 1, 4, 8), t);
        assert_eq!(s.outstanding(ServerId(0)), 2);
    }

    #[test]
    fn concurrency_compensation_amplifies_outstanding() {
        let mut low = C3Selector::new(
            C3Config {
                concurrency: 1.0,
                ..C3Config::default()
            },
            SimRng::from_seed(1),
        );
        let mut high = C3Selector::new(
            C3Config {
                concurrency: 500.0,
                ..C3Config::default()
            },
            SimRng::from_seed(1),
        );
        let t = SimTime::ZERO;
        for s in [&mut low, &mut high] {
            s.on_response(&fb(0, 1, 4, 8), t);
            s.on_send(ServerId(0), t);
        }
        assert!(high.score(ServerId(0)) > low.score(ServerId(0)) * 100.0);
    }

    #[test]
    fn unseen_servers_are_explored_first() {
        let mut s = c3();
        let t = SimTime::ZERO;
        s.on_response(&fb(0, 3, 4, 10), t);
        // Server 9 was never heard from: score 0 beats any positive score.
        assert_eq!(s.select(&[ServerId(0), ServerId(9)], t), ServerId(9));
        assert_eq!(s.responses_seen(ServerId(9)), 0);
        assert_eq!(s.responses_seen(ServerId(0)), 1);
    }

    #[test]
    fn ties_break_randomly_not_by_id() {
        let mut s = c3();
        let t = SimTime::ZERO;
        let candidates = [ServerId(0), ServerId(1), ServerId(2)];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.select(&candidates, t));
        }
        assert_eq!(seen.len(), 3, "cold-start picks must spread");
    }

    #[test]
    fn first_sample_initializes_ewma_exactly() {
        let mut s = c3();
        let t = SimTime::ZERO;
        s.on_response(&fb(0, 4, 2, 6), t);
        // With a single sample: R̄ = 6ms, T̄ = 2ms, q̄ = 4, q̂ = 5.
        let expected = 6.0e6 - 2.0e6 + 125.0 * 2.0e6;
        assert!((s.score(ServerId(0)) - expected).abs() < 1.0);
    }

    #[test]
    fn exponent_is_configurable() {
        let mut linear = C3Selector::new(
            C3Config {
                exponent: 1.0,
                ..C3Config::default()
            },
            SimRng::from_seed(2),
        );
        let t = SimTime::ZERO;
        linear.on_response(&fb(0, 4, 2, 6), t);
        let expected = 6.0e6 - 2.0e6 + 5.0 * 2.0e6;
        assert!((linear.score(ServerId(0)) - expected).abs() < 1.0);
    }

    #[test]
    fn rank_orders_by_score() {
        let mut s = c3();
        let t = SimTime::ZERO;
        s.on_response(&fb(0, 8, 4, 30), t);
        s.on_response(&fb(1, 2, 4, 10), t);
        s.on_response(&fb(2, 0, 1, 2), t);
        let ranked = s.rank(&[ServerId(0), ServerId(1), ServerId(2)], t);
        assert_eq!(ranked, vec![ServerId(2), ServerId(1), ServerId(0)]);
    }

    #[test]
    fn set_concurrency_takes_effect() {
        let mut s = c3();
        let t = SimTime::ZERO;
        s.on_response(&fb(0, 0, 4, 4), t);
        s.on_send(ServerId(0), t);
        let before = s.score(ServerId(0));
        s.set_concurrency(100.0);
        assert!(s.score(ServerId(0)) > before);
    }

    #[test]
    fn timeouts_demote_and_responses_forgive() {
        let mut s = c3();
        let t = SimTime::ZERO;
        s.on_response(&fb(0, 1, 4, 8), t);
        s.on_response(&fb(1, 1, 4, 8), t);
        // One timeout pushes server 0 behind server 1 — even behind a
        // never-seen server (whose score is 0).
        s.on_timeout(ServerId(0), t);
        assert_eq!(s.select(&[ServerId(0), ServerId(1)], t), ServerId(1));
        assert_eq!(s.select(&[ServerId(0), ServerId(9)], t), ServerId(9));
        // Repeated timeouts double the penalty.
        let one = s.score(ServerId(0));
        s.on_timeout(ServerId(0), t);
        assert!(s.score(ServerId(0)) > one + TIMEOUT_PENALTY_BASE_NS * 0.9);
        // A successful response clears it entirely.
        s.on_response(&fb(0, 1, 4, 8), t);
        assert!(s.score(ServerId(0)) < TIMEOUT_PENALTY_BASE_NS);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_candidates_panic() {
        let mut s = c3();
        let _ = s.rank(&[], SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_rejected() {
        let _ = C3Selector::new(
            C3Config {
                alpha: 1.0,
                ..C3Config::default()
            },
            SimRng::from_seed(0),
        );
    }
}
