//! Deterministic discrete-event simulation core for the NetRS reproduction.
//!
//! This crate is the substrate on which the rest of the workspace is built.
//! It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — an integer-nanosecond virtual clock that
//!   cannot drift the way floating-point clocks do,
//! * [`EventQueue`] and [`Engine`] — a classic calendar-queue discrete-event
//!   engine generic over the event type,
//! * [`SimRng`] and the distributions of §V-A of the NetRS paper
//!   (exponential service times, Poisson arrival processes, Zipfian key
//!   popularity, and the bimodal performance-fluctuation model), and
//! * [`Histogram`] — a log-bucketed latency histogram with percentile
//!   queries, used for every latency figure in the evaluation, and
//! * [`Probe`] / [`EngineProfile`] / [`RingSeries`] — zero-cost-when-
//!   disabled engine instrumentation, self-profiling, and bounded
//!   time-series buffers, and
//! * [`DeviceProbe`] / [`DeviceStatsRegistry`] — the same monomorphized
//!   zero-cost pattern one layer down: per-device (switch, link,
//!   accelerator, server, client) telemetry keyed by stable
//!   [`DeviceId`]s, and
//! * [`PerfProbe`] — host-performance observability: per-event-kind
//!   dispatch counts, strided wall-clock attribution, and queue-depth
//!   histograms for profiling the simulator itself.
//!
//! Everything in this crate is deterministic given a seed: the engine breaks
//! ties in event time by insertion sequence number and all randomness flows
//! from explicitly forked [`SimRng`] streams.
//!
//! # Examples
//!
//! ```
//! use netrs_simcore::{Engine, EventQueue, SimDuration, SimTime, World};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! enum Ev {
//!     Tick,
//! }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, _ev: Ev, queue: &mut EventQueue<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             queue.schedule_after(SimDuration::from_micros(10), Ev::Tick);
//!         }
//!         let _ = now;
//!     }
//! }
//!
//! let mut engine = Engine::new(Counter { fired: 0 });
//! engine.queue_mut().schedule_at(SimTime::ZERO, Ev::Tick);
//! engine.run();
//! assert_eq!(engine.world().fired, 3);
//! assert_eq!(engine.now(), SimTime::ZERO + SimDuration::from_micros(20));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod engine;
mod hostperf;
mod metrics;
mod parallel;
mod rng;
mod shard;
mod time;
mod trace;

pub use device::{
    DeviceCounter, DeviceId, DeviceProbe, DeviceStats, DeviceStatsRegistry, NoDeviceProbe, NodeId,
};
pub use engine::{Engine, EventQueue, World};
pub use hostperf::{peak_rss_kb, KindStats, PerfProbe, PerfReport, DEPTH_BUCKETS};
pub use metrics::{Histogram, Summary};
pub use parallel::{ParallelShardedEngine, ParallelWorld, WindowStats};
pub use rng::{Bimodal, SimRng, Zipf};
pub use shard::{Mailbox, ShardId, ShardedEngine, ShardedWorld};
pub use time::{SimDuration, SimTime};
pub use trace::{CollectingProbe, EngineProfile, NoProbe, Probe, RingSeries, Span};
