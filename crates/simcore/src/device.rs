//! Device-level telemetry: stable device identities, per-device
//! statistics and the zero-cost-when-disabled [`DeviceProbe`] hook.
//!
//! Mirrors the engine-level [`Probe`](crate::Probe) pattern one layer
//! down: a world that models network devices (switches, links,
//! accelerators, servers, clients) is monomorphized over a
//! [`DeviceProbe`] type. With the default [`NoDeviceProbe`] every hook
//! is an empty inlined body and the simulation binary is byte-for-byte
//! what it was before the registry existed; with
//! [`DeviceStatsRegistry`] each hook lands in a [`DeviceStats`] entry
//! keyed by [`DeviceId`].
//!
//! The statistics deliberately cover the quantities the NetRS
//! evaluation argues about: packets/bytes forwarded per traffic tier
//! (the paper's Tier-0/1/2 classification), per-directed-link packet
//! counts (ECMP hash-skew visibility), RSNode selection counts and
//! waits, sim-time-weighted queue depth, busy time, and drop/clamp
//! counters.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// An endpoint of a link: an end-host or a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeId {
    /// An end-host, by host index.
    Host(u32),
    /// A switch, by global switch index.
    Switch(u32),
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeId::Host(h) => write!(f, "h{h}"),
            NodeId::Switch(s) => write!(f, "s{s}"),
        }
    }
}

/// A stable identity for one simulated device.
///
/// The `Display` form (`switch:5`, `accel:5`, `server:3`, `client:7`,
/// `link:h3>s0`) is the device key in exported JSONL and is parsed back
/// by offline analysis; treat it as a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeviceId {
    /// A switch's forwarding pipeline.
    Switch(u32),
    /// The network accelerator attached to a switch (an RSNode's
    /// compute).
    Accelerator(u32),
    /// A storage server, by server index.
    Server(u32),
    /// A client, by client index.
    Client(u32),
    /// A directed link `from > to` (direction matters: the two
    /// directions of a cable are separate queues and separate ECMP
    /// victims).
    Link(NodeId, NodeId),
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceId::Switch(s) => write!(f, "switch:{s}"),
            DeviceId::Accelerator(s) => write!(f, "accel:{s}"),
            DeviceId::Server(s) => write!(f, "server:{s}"),
            DeviceId::Client(c) => write!(f, "client:{c}"),
            DeviceId::Link(a, b) => write!(f, "link:{a}>{b}"),
        }
    }
}

/// Named event counters a device can accumulate beyond the structured
/// fields of [`DeviceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceCounter {
    /// Requests handled (arrivals at a server, issues at a client).
    Op,
    /// Work abandoned at the device (e.g. a request reaching a retired
    /// RSNode and falling back to its backup replica).
    Drop,
    /// Load-induced degradations (rate-controller holds, DRS
    /// forwarding).
    Clamp,
    /// Response clones processed for selector state (no latency cost).
    CloneUpdate,
    /// Hot-key cache: a `GET` answered from the switch.
    CacheHit,
    /// Hot-key cache: a `GET` that fell through to replica selection.
    CacheMiss,
    /// Hot-key cache: a hit served with a version older than the
    /// store's committed one.
    CacheStale,
    /// Hot-key cache: an entry displaced by capacity pressure.
    CacheEvict,
    /// Hot-key cache: a write-driven coherence message applied to a
    /// cached entry.
    CacheInvalidate,
}

/// Everything one device accumulated over a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceStats {
    /// Packets forwarded, indexed by traffic tier (0 = cross-pod,
    /// 1 = pod-local, 2 = rack-local — the paper's Tier-k naming).
    pub packets: [u64; 3],
    /// Bytes forwarded, same tier indexing.
    pub bytes: [u64; 3],
    /// [`DeviceCounter::Op`] total.
    pub ops: u64,
    /// Replica selections performed (RSNode accelerators only).
    pub selections: u64,
    /// Total accelerator queue wait across selections.
    pub selection_wait_ns: u128,
    /// [`DeviceCounter::CloneUpdate`] total.
    pub clone_updates: u64,
    /// Sim time the device spent doing work (accelerator core time,
    /// server slot time).
    pub busy_ns: u128,
    /// [`DeviceCounter::Drop`] total.
    pub drops: u64,
    /// [`DeviceCounter::Clamp`] total.
    pub clamps: u64,
    /// [`DeviceCounter::CacheHit`] total (switches hosting a hot-key
    /// cache only; zero everywhere else).
    pub cache_hits: u64,
    /// [`DeviceCounter::CacheMiss`] total.
    pub cache_misses: u64,
    /// [`DeviceCounter::CacheStale`] total.
    pub cache_stale_hits: u64,
    /// [`DeviceCounter::CacheEvict`] total.
    pub cache_evictions: u64,
    /// [`DeviceCounter::CacheInvalidate`] total.
    pub cache_invalidations: u64,
    /// Current queue depth (requests pending at the device).
    pub depth: u32,
    /// Deepest the queue ever got.
    pub max_depth: u32,
    depth_area_ns: u128,
    last_depth_change: SimTime,
}

impl DeviceStats {
    /// Packets forwarded across all tiers.
    #[must_use]
    pub fn total_packets(&self) -> u64 {
        self.packets.iter().sum()
    }

    /// Bytes forwarded across all tiers.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Applies a queue depth change at `now`, accumulating the
    /// sim-time-weighted depth integral.
    pub fn queue_delta(&mut self, now: SimTime, delta: i64) {
        let dt = now.saturating_since(self.last_depth_change).as_nanos();
        self.depth_area_ns += u128::from(self.depth) * u128::from(dt);
        self.last_depth_change = now;
        let next = i64::from(self.depth) + delta;
        debug_assert!(next >= 0, "queue depth went negative");
        self.depth = next.max(0) as u32;
        self.max_depth = self.max_depth.max(self.depth);
    }

    /// Mean queue depth over `[SimTime::ZERO, end]`, weighting each
    /// depth by how long it was held.
    #[must_use]
    pub fn mean_queue_depth(&self, end: SimTime) -> f64 {
        let total = end.as_nanos();
        if total == 0 {
            return 0.0;
        }
        let tail = u128::from(self.depth)
            * u128::from(end.saturating_since(self.last_depth_change).as_nanos());
        (self.depth_area_ns + tail) as f64 / total as f64
    }

    /// Mean accelerator queue wait per selection.
    #[must_use]
    pub fn mean_selection_wait(&self) -> SimDuration {
        if self.selections == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.selection_wait_ns / u128::from(self.selections)) as u64)
    }

    /// Busy fraction over `[SimTime::ZERO, end]` given the device's
    /// parallel capacity (accelerator cores, server slots), clamped to
    /// `[0, 1]`.
    #[must_use]
    pub fn utilization(&self, end: SimTime, capacity: u32) -> f64 {
        let denom = u128::from(end.as_nanos()) * u128::from(capacity.max(1));
        if denom == 0 {
            return 0.0;
        }
        (self.busy_ns as f64 / denom as f64).min(1.0)
    }
}

/// World-level device instrumentation hook.
///
/// Every method has a no-op default body; worlds are monomorphized over
/// the probe type, so the default [`NoDeviceProbe`] compiles to nothing.
/// Guard any *preparatory* work (path materialization, id construction)
/// behind [`DeviceProbe::ENABLED`] so the disabled configuration stays
/// zero-cost.
pub trait DeviceProbe: Default {
    /// Whether the probe records anything (lets worlds skip preparing
    /// arguments entirely).
    const ENABLED: bool;

    /// One packet of `bytes` bytes of tier-`tier` traffic crossed `dev`.
    fn packet(&mut self, dev: DeviceId, tier: usize, bytes: u64) {
        let _ = (dev, tier, bytes);
    }

    /// The queue at `dev` grew (`+`) or shrank (`-`) at `now`.
    fn queue_delta(&mut self, now: SimTime, dev: DeviceId, delta: i64) {
        let _ = (now, dev, delta);
    }

    /// `dev` spent `time` of device capacity doing work.
    fn busy(&mut self, dev: DeviceId, time: SimDuration) {
        let _ = (dev, time);
    }

    /// The accelerator at `dev` completed a replica selection that
    /// waited `waited` for a free core.
    fn selection(&mut self, dev: DeviceId, waited: SimDuration) {
        let _ = (dev, waited);
    }

    /// Adds `delta` to a named counter at `dev`.
    fn bump(&mut self, dev: DeviceId, counter: DeviceCounter, delta: u64) {
        let _ = (dev, counter, delta);
    }

    /// Extracts the accumulated registry, if this probe kept one.
    fn into_registry(self) -> Option<DeviceStatsRegistry> {
        None
    }
}

/// The default device probe: records nothing, costs nothing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NoDeviceProbe;

impl DeviceProbe for NoDeviceProbe {
    const ENABLED: bool = false;
}

/// A [`DeviceProbe`] that accumulates [`DeviceStats`] per [`DeviceId`].
///
/// Backed by a `BTreeMap` so iteration (and therefore every exported
/// report) is deterministic.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct DeviceStatsRegistry {
    devices: BTreeMap<DeviceId, DeviceStats>,
}

impl DeviceStatsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The stats slot for `dev`, created on first touch.
    pub fn entry(&mut self, dev: DeviceId) -> &mut DeviceStats {
        self.devices.entry(dev).or_default()
    }

    /// The stats for `dev`, if the device was ever touched.
    #[must_use]
    pub fn get(&self, dev: &DeviceId) -> Option<&DeviceStats> {
        self.devices.get(dev)
    }

    /// Devices tracked so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether no device was ever touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// All `(device, stats)` pairs in [`DeviceId`] order.
    pub fn iter(&self) -> impl Iterator<Item = (&DeviceId, &DeviceStats)> {
        self.devices.iter()
    }
}

impl DeviceProbe for DeviceStatsRegistry {
    const ENABLED: bool = true;

    fn packet(&mut self, dev: DeviceId, tier: usize, bytes: u64) {
        let s = self.entry(dev);
        s.packets[tier] += 1;
        s.bytes[tier] += bytes;
    }

    fn queue_delta(&mut self, now: SimTime, dev: DeviceId, delta: i64) {
        self.entry(dev).queue_delta(now, delta);
    }

    fn busy(&mut self, dev: DeviceId, time: SimDuration) {
        self.entry(dev).busy_ns += u128::from(time.as_nanos());
    }

    fn selection(&mut self, dev: DeviceId, waited: SimDuration) {
        let s = self.entry(dev);
        s.selections += 1;
        s.selection_wait_ns += u128::from(waited.as_nanos());
    }

    fn bump(&mut self, dev: DeviceId, counter: DeviceCounter, delta: u64) {
        let s = self.entry(dev);
        match counter {
            DeviceCounter::Op => s.ops += delta,
            DeviceCounter::Drop => s.drops += delta,
            DeviceCounter::Clamp => s.clamps += delta,
            DeviceCounter::CloneUpdate => s.clone_updates += delta,
            DeviceCounter::CacheHit => s.cache_hits += delta,
            DeviceCounter::CacheMiss => s.cache_misses += delta,
            DeviceCounter::CacheStale => s.cache_stale_hits += delta,
            DeviceCounter::CacheEvict => s.cache_evictions += delta,
            DeviceCounter::CacheInvalidate => s.cache_invalidations += delta,
        }
    }

    fn into_registry(self) -> Option<DeviceStatsRegistry> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn device_ids_display_as_stable_keys() {
        assert_eq!(DeviceId::Switch(5).to_string(), "switch:5");
        assert_eq!(DeviceId::Accelerator(5).to_string(), "accel:5");
        assert_eq!(DeviceId::Server(3).to_string(), "server:3");
        assert_eq!(DeviceId::Client(7).to_string(), "client:7");
        assert_eq!(
            DeviceId::Link(NodeId::Host(3), NodeId::Switch(0)).to_string(),
            "link:h3>s0"
        );
    }

    #[test]
    fn registry_accumulates_per_device_and_tier() {
        let mut r = DeviceStatsRegistry::new();
        let sw = DeviceId::Switch(1);
        r.packet(sw, 0, 13);
        r.packet(sw, 0, 13);
        r.packet(sw, 2, 16);
        r.packet(DeviceId::Switch(2), 1, 13);
        let s = r.get(&sw).unwrap();
        assert_eq!(s.packets, [2, 0, 1]);
        assert_eq!(s.bytes, [26, 0, 16]);
        assert_eq!(s.total_packets(), 3);
        assert_eq!(s.total_bytes(), 42);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn queue_depth_is_time_weighted() {
        let mut s = DeviceStats::default();
        s.queue_delta(t(0), 1); // depth 1 over [0, 100)
        s.queue_delta(t(100), 1); // depth 2 over [100, 200)
        s.queue_delta(t(200), -2); // depth 0 over [200, 400)
        assert_eq!(s.depth, 0);
        assert_eq!(s.max_depth, 2);
        // (1*100 + 2*100 + 0*200) / 400 = 0.75
        assert!((s.mean_queue_depth(t(400)) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn selection_wait_and_utilization_average_correctly() {
        let mut r = DeviceStatsRegistry::new();
        let dev = DeviceId::Accelerator(9);
        r.selection(dev, SimDuration::from_nanos(100));
        r.selection(dev, SimDuration::from_nanos(300));
        r.busy(dev, SimDuration::from_nanos(500));
        let s = r.get(&dev).unwrap();
        assert_eq!(s.selections, 2);
        assert_eq!(s.mean_selection_wait(), SimDuration::from_nanos(200));
        // 500 busy ns over 1000 ns × 2 cores = 0.25
        assert!((s.utilization(t(1_000), 2) - 0.25).abs() < 1e-12);
        assert_eq!(s.utilization(SimTime::ZERO, 2), 0.0);
    }

    #[test]
    fn counters_route_to_their_fields() {
        let mut r = DeviceStatsRegistry::new();
        let dev = DeviceId::Server(0);
        r.bump(dev, DeviceCounter::Op, 3);
        r.bump(dev, DeviceCounter::Drop, 1);
        r.bump(dev, DeviceCounter::Clamp, 2);
        r.bump(dev, DeviceCounter::CloneUpdate, 4);
        let s = r.get(&dev).unwrap();
        assert_eq!((s.ops, s.drops, s.clamps, s.clone_updates), (3, 1, 2, 4));
    }

    #[test]
    fn cache_counters_route_to_their_fields() {
        let mut r = DeviceStatsRegistry::new();
        let dev = DeviceId::Switch(4);
        r.bump(dev, DeviceCounter::CacheHit, 5);
        r.bump(dev, DeviceCounter::CacheMiss, 3);
        r.bump(dev, DeviceCounter::CacheStale, 1);
        r.bump(dev, DeviceCounter::CacheEvict, 2);
        r.bump(dev, DeviceCounter::CacheInvalidate, 4);
        let s = r.get(&dev).unwrap();
        assert_eq!(
            (
                s.cache_hits,
                s.cache_misses,
                s.cache_stale_hits,
                s.cache_evictions,
                s.cache_invalidations
            ),
            (5, 3, 1, 2, 4)
        );
        // Untouched devices report all-zero cache counters.
        r.bump(DeviceId::Server(0), DeviceCounter::Op, 1);
        let plain = r.get(&DeviceId::Server(0)).unwrap();
        assert_eq!(plain.cache_hits + plain.cache_misses, 0);
    }

    #[test]
    fn no_device_probe_is_trivially_usable_and_keeps_nothing() {
        let mut p = NoDeviceProbe;
        p.packet(DeviceId::Switch(0), 0, 10);
        p.queue_delta(t(1), DeviceId::Server(0), 1);
        p.busy(DeviceId::Accelerator(0), SimDuration::from_nanos(1));
        p.selection(DeviceId::Accelerator(0), SimDuration::ZERO);
        p.bump(DeviceId::Client(0), DeviceCounter::Op, 1);
        const { assert!(!NoDeviceProbe::ENABLED) };
        assert!(p.into_registry().is_none());
    }

    #[test]
    fn registry_iterates_in_device_id_order() {
        let mut r = DeviceStatsRegistry::new();
        r.packet(DeviceId::Server(1), 0, 1);
        r.packet(DeviceId::Switch(9), 0, 1);
        r.packet(DeviceId::Switch(2), 0, 1);
        let keys: Vec<String> = r.iter().map(|(d, _)| d.to_string()).collect();
        assert_eq!(keys, vec!["switch:2", "switch:9", "server:1"]);
    }
}
