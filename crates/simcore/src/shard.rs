//! Conservative-lookahead sharded event engine.
//!
//! [`ShardedEngine`] is the shard-aware sibling of [`Engine`](crate::Engine):
//! instead of one global future-event list it keeps **one
//! [`EventQueue`] per shard** plus a boundary [`Mailbox`] for events whose
//! destination shard differs from the shard that scheduled them. The
//! driver advances time in *conservative windows* (classic
//! null-message/lookahead PDES): each round it delivers pending mailbox
//! posts, finds the globally earliest pending timestamp `t_min`, and
//! processes every event with `t < t_min + lookahead`, where `lookahead`
//! is the minimum cross-shard scheduling delay the world guarantees
//! (for the NetRS fat-tree: the inter-pod link latency — any pod-crossing
//! packet traverses at least one link).
//!
//! # Ordering guarantees
//!
//! * Within a shard, the `(time, seq)` total order of [`EventQueue`] is
//!   preserved exactly.
//! * Across shards, events are processed in global `(time, shard, seq)`
//!   order: within a window the driver repeatedly picks the shard whose
//!   head event is earliest, breaking timestamp ties by the lower shard
//!   id. A sharded run is therefore byte-identical run-to-run.
//! * With one shard the engine degenerates to the sequential engine:
//!   every event is same-shard, the mailbox never sees traffic, and the
//!   processing order is byte-identical to [`Engine`](crate::Engine)
//!   (proven against the golden fixtures in `tests/shard_equiv.rs`).
//!
//! # Why a window is safe
//!
//! An event processed at time `t` inside the window `[t_min, t_min + L)`
//! may post a cross-shard event no earlier than `t + L >= t_min + L` —
//! at or beyond the window's end. No post made *during* a window can
//! therefore affect any event *inside* it, so the per-shard queues can
//! be drained up to the horizon without consulting other shards. Worlds
//! that violate the lookahead contract (a cross-shard event closer than
//! `L`) do not corrupt the per-shard timeline: the delivery is clamped
//! to the destination shard's clock and counted in
//! [`ShardedEngine::mailbox_late`].

use std::time::Instant;

use crate::engine::{EventQueue, World};
use crate::time::{SimDuration, SimTime};
use crate::trace::{EngineProfile, NoProbe, Probe};

/// Identifies one shard of a [`ShardedWorld`] (dense, `0..num_shards`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ShardId(pub u32);

/// A [`World`] whose events can be partitioned across shards.
///
/// The partition must be *stable*: [`ShardedWorld::shard_of`] is called
/// once per scheduled event (at routing time) and must depend only on
/// the event itself and immutable topology, never on mutable state that
/// the processing order could perturb.
pub trait ShardedWorld: World {
    /// Number of shards this world partitions into (`>= 1`).
    fn num_shards(&self) -> u32;

    /// The shard that owns `event` (must be `< num_shards()`).
    fn shard_of(&self, event: &Self::Event) -> ShardId;

    /// The minimum cross-shard scheduling delay this world guarantees:
    /// an event scheduled from shard A for shard B is at least this far
    /// in the future. Larger lookahead means fewer, larger windows.
    fn lookahead(&self) -> SimDuration;
}

/// One cross-shard event waiting at the boundary.
struct Post<E> {
    at: SimTime,
    src: u32,
    /// Per-source post counter; with `(at, src)` it makes delivery order
    /// a total order independent of sort stability.
    src_seq: u64,
    dest: u32,
    event: E,
}

/// The boundary buffer for cross-shard events.
///
/// Events posted during a window are delivered at the start of the next
/// one, sorted by `(time, source shard, source post sequence)` so the
/// destination queue's insertion order — and hence its tie-break — is
/// deterministic.
pub struct Mailbox<E> {
    posts: Vec<Post<E>>,
    per_src_seq: Vec<u64>,
    posted: u64,
    delivered: u64,
    late: u64,
}

impl<E> Mailbox<E> {
    fn new(shards: usize) -> Self {
        Mailbox {
            posts: Vec::new(),
            per_src_seq: vec![0; shards],
            posted: 0,
            delivered: 0,
            late: 0,
        }
    }

    fn post(&mut self, at: SimTime, src: u32, dest: u32, event: E) {
        let src_seq = self.per_src_seq[src as usize];
        self.per_src_seq[src as usize] += 1;
        self.posted += 1;
        self.posts.push(Post {
            at,
            src,
            src_seq,
            dest,
            event,
        });
    }

    /// Drains every pending post into the destination queues. Posts that
    /// arrive behind the destination's clock (a lookahead-contract
    /// violation by the world) are clamped to it and counted.
    fn deliver(&mut self, queues: &mut [EventQueue<E>]) {
        if self.posts.is_empty() {
            return;
        }
        self.posts.sort_by_key(|p| (p.at, p.src, p.src_seq));
        for p in self.posts.drain(..) {
            let q = &mut queues[p.dest as usize];
            let mut at = p.at;
            if at < q.now() {
                self.late += 1;
                at = q.now();
            }
            q.schedule_at(at, p.event);
            self.delivered += 1;
        }
    }
}

/// Drives a [`ShardedWorld`] over per-shard queues with a boundary
/// mailbox and a conservative-lookahead window driver. See the
/// [module docs](self) for the synchronization scheme and ordering
/// guarantees.
pub struct ShardedEngine<W: ShardedWorld, P: Probe = NoProbe> {
    world: W,
    queues: Vec<EventQueue<W::Event>>,
    /// Scratch queue handed to the world's handler; drained and routed
    /// (same shard → shard queue, cross shard → mailbox) after each
    /// event. Re-insertion assigns fresh per-queue sequence numbers in
    /// sorted drain order, which preserves the relative `(time, seq)`
    /// pop order the sequential engine produces.
    outbox: EventQueue<W::Event>,
    mailbox: Mailbox<W::Event>,
    lookahead: SimDuration,
    processed: u64,
    /// Conservative windows advanced so far.
    windows: u64,
    now: SimTime,
    probe: P,
    started: Instant,
}

impl<W: ShardedWorld> ShardedEngine<W> {
    /// Creates a sharded engine with empty queues and no instrumentation.
    pub fn new(world: W) -> Self {
        ShardedEngine::with_probe(world, NoProbe)
    }
}

impl<W: ShardedWorld, P: Probe> ShardedEngine<W, P> {
    /// Creates a sharded engine that reports each processed event to
    /// `probe`.
    pub fn with_probe(world: W, probe: P) -> Self {
        let shards = world.num_shards().max(1) as usize;
        let lookahead = world.lookahead();
        ShardedEngine {
            world,
            queues: (0..shards).map(|_| EventQueue::new()).collect(),
            outbox: EventQueue::new(),
            mailbox: Mailbox::new(shards),
            lookahead,
            processed: 0,
            windows: 0,
            now: SimTime::ZERO,
            probe,
            started: Instant::now(),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> u32 {
        self.queues.len() as u32
    }

    /// The latest event timestamp processed so far (global virtual time).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Conservative windows advanced so far (one per
    /// [`advance_window`](Self::advance_window) that found work).
    #[must_use]
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Total number of events processed across all shards.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Cross-shard events posted to the mailbox so far.
    #[must_use]
    pub fn mailbox_posted(&self) -> u64 {
        self.mailbox.posted
    }

    /// Mailbox deliveries that violated the lookahead contract and were
    /// clamped to the destination shard's clock.
    #[must_use]
    pub fn mailbox_late(&self) -> u64 {
        self.mailbox.late
    }

    /// Shared access to the world state.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world state.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Shared access to the probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Exclusive access to the probe.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consumes the engine and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Consumes the engine and returns the world and the probe.
    pub fn into_parts(self) -> (W, P) {
        (self.world, self.probe)
    }

    /// Seeds the simulation: hands the world and a scratch queue to
    /// `prime`, then routes every scheduled event to its owning shard.
    /// Must run before the first window, while all shard clocks are at
    /// zero, so initial events insert directly (the mailbox is only for
    /// events crossing shards *mid-run*).
    pub fn prime_with(&mut self, prime: impl FnOnce(&mut W, &mut EventQueue<W::Event>)) {
        debug_assert_eq!(self.processed, 0, "prime_with after events ran");
        prime(&mut self.world, &mut self.outbox);
        while let Some((at, event)) = self.outbox.pop() {
            let dest = self.dest_shard(&event);
            self.queues[dest].schedule_at(at, event);
        }
    }

    fn dest_shard(&self, event: &W::Event) -> usize {
        let dest = self.world.shard_of(event).0 as usize;
        debug_assert!(dest < self.queues.len(), "shard_of out of range: {dest}");
        dest.min(self.queues.len() - 1)
    }

    /// Events pending across all shard queues and the mailbox.
    fn pending(&self) -> usize {
        self.queues.iter().map(EventQueue::len).sum::<usize>() + self.mailbox.posts.len()
    }

    /// Aggregate push count across shard queues (the outbox is routing
    /// plumbing, not a future-event list, so its churn is excluded).
    fn pushes(&self) -> u64 {
        self.queues.iter().map(EventQueue::pushes).sum()
    }

    fn pops(&self) -> u64 {
        self.queues.iter().map(EventQueue::pops).sum()
    }

    /// The engine's self-measurement, aggregated across shards: total
    /// events, the deepest any single shard queue got, and summed queue
    /// churn.
    #[must_use]
    pub fn profile(&self) -> EngineProfile {
        let high_water = self.queues.iter().map(EventQueue::high_water).max();
        EngineProfile::capture(
            self.processed,
            high_water.unwrap_or(0),
            self.pushes(),
            self.pops(),
            self.started,
        )
    }

    /// Pops and handles the head event of shard `s`, routing everything
    /// the handler scheduled. Mirrors `Engine::step` including the
    /// kinded-probe step timing, so `--perf` attribution works on the
    /// sharded path too.
    fn step_shard(&mut self, s: usize) {
        let t0 = if P::KINDED && self.probe.sample_due() {
            Some(Instant::now())
        } else {
            None
        };
        let Some((at, event)) = self.queues[s].pop() else {
            return;
        };
        self.processed += 1;
        self.now = self.now.max(at);
        let kind = if P::KINDED { W::event_kind(&event) } else { 0 };
        self.outbox.reset_clock(at);
        self.world.handle(at, event, &mut self.outbox);
        while let Some((t, ev)) = self.outbox.pop() {
            let dest = self.dest_shard(&ev);
            if dest == s {
                self.queues[s].schedule_at(t, ev);
            } else {
                self.mailbox.post(t, s as u32, dest as u32, ev);
            }
        }
        self.probe.on_event(at, self.pending());
        if P::KINDED {
            let sampled_ns = t0.map(|t| t.elapsed().as_nanos() as u64);
            self.probe.on_event_kind(kind, sampled_ns);
        }
    }

    /// Advances one conservative window: delivers the mailbox, computes
    /// the global minimum pending timestamp `t_min`, and processes every
    /// event with `t < t_min + lookahead` (or `t == t_min` when the
    /// lookahead is zero) in global `(time, shard, seq)` order. Returns
    /// `false` once everything is drained.
    pub fn advance_window(&mut self) -> bool {
        self.mailbox.deliver(&mut self.queues);
        let Some(t_min) = self.queues.iter().filter_map(EventQueue::peek_time).min() else {
            return false;
        };
        self.windows += 1;
        let horizon = t_min + self.lookahead;
        loop {
            // Pick the earliest in-window head across shards; timestamp
            // ties go to the lower shard id — the global tie-break.
            let mut best: Option<(SimTime, usize)> = None;
            for (s, q) in self.queues.iter().enumerate() {
                let Some(t) = q.peek_time() else { continue };
                let due = if self.lookahead == SimDuration::ZERO {
                    t <= t_min
                } else {
                    t < horizon
                };
                if due && best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, s));
                }
            }
            let Some((_, s)) = best else { break };
            self.step_shard(s);
        }
        true
    }

    /// Runs windows until every shard queue and the mailbox are drained.
    pub fn run(&mut self) {
        while self.advance_window() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;

    /// A toy message-passing world: event `(dest_shard, id, hops_left)`
    /// logs itself and, while hops remain, forwards to the next shard
    /// one lookahead (plus an id-dependent jitter) in the future.
    struct Toy {
        shards: u32,
        lookahead: SimDuration,
        log: Vec<(u64, u32, u32)>,
    }

    type TEv = (u32, u32, u32);

    impl World for Toy {
        type Event = TEv;
        fn handle(&mut self, now: SimTime, ev: TEv, queue: &mut EventQueue<TEv>) {
            let (shard, id, hops) = ev;
            self.log.push((now.as_nanos(), shard, id));
            if hops > 0 {
                let next = (shard + 1) % self.shards;
                let delay = self.lookahead + SimDuration::from_nanos(u64::from(id % 3));
                queue.schedule_after(delay, (next, id, hops - 1));
            }
        }
    }

    impl ShardedWorld for Toy {
        fn num_shards(&self) -> u32 {
            self.shards
        }
        fn shard_of(&self, ev: &TEv) -> ShardId {
            ShardId(ev.0)
        }
        fn lookahead(&self) -> SimDuration {
            self.lookahead
        }
    }

    fn toy(shards: u32) -> Toy {
        Toy {
            shards,
            lookahead: SimDuration::from_nanos(10),
            log: Vec::new(),
        }
    }

    fn run_toy(shards: u32) -> (Vec<(u64, u32, u32)>, u64, u64) {
        let mut e = ShardedEngine::new(toy(shards));
        e.prime_with(|_, q| {
            for id in 0..8 {
                q.schedule_at(SimTime::from_nanos(u64::from(id % 4)), (id % shards, id, 5));
            }
        });
        e.run();
        let posted = e.mailbox_posted();
        let late = e.mailbox_late();
        (e.into_world().log, posted, late)
    }

    #[test]
    fn single_shard_matches_sequential_engine() {
        let mut seq = Engine::new(toy(1));
        for id in 0..8 {
            seq.queue_mut()
                .schedule_at(SimTime::from_nanos(u64::from(id % 4)), (0, id, 5));
        }
        seq.run();
        let (sharded_log, posted, _) = run_toy(1);
        assert_eq!(sharded_log, seq.world().log);
        assert_eq!(posted, 0, "one shard must never touch the mailbox");
    }

    #[test]
    fn multi_shard_run_is_deterministic() {
        let (a, posted_a, late_a) = run_toy(3);
        let (b, posted_b, late_b) = run_toy(3);
        assert_eq!(a, b, "same world twice must replay identically");
        assert_eq!((posted_a, late_a), (posted_b, late_b));
        assert!(posted_a > 0, "cross-shard hops must ride the mailbox");
        assert_eq!(late_a, 0, "toy world honours its lookahead contract");
    }

    #[test]
    fn processing_order_is_global_time_shard_seq() {
        let (log, _, _) = run_toy(3);
        // Forward delays are >= lookahead, so delivery never clamps and
        // the driver's window order is globally sorted by (time, shard).
        let mut sorted = log.clone();
        sorted.sort_by_key(|&(t, s, id)| (t, s, id));
        let keys: Vec<(u64, u32)> = log.iter().map(|&(t, s, _)| (t, s)).collect();
        assert!(
            keys.windows(2).all(|w| w[0] <= w[1]),
            "events out of (time, shard) order: {keys:?}"
        );
        assert_eq!(log.len(), sorted.len());
    }

    #[test]
    fn lookahead_violations_clamp_and_count() {
        /// Forwards cross-shard with a delay *below* the declared
        /// lookahead: deliveries land behind the destination clock and
        /// must clamp (never panic) while being counted.
        struct Cheater {
            log: Vec<u64>,
        }
        impl World for Cheater {
            type Event = (u32, u32);
            fn handle(&mut self, now: SimTime, ev: (u32, u32), queue: &mut EventQueue<(u32, u32)>) {
                self.log.push(now.as_nanos());
                if ev.1 > 0 {
                    // 1ns << the declared 1000ns lookahead.
                    queue.schedule_after(SimDuration::from_nanos(1), (1 - ev.0, ev.1 - 1));
                }
            }
        }
        impl ShardedWorld for Cheater {
            fn num_shards(&self) -> u32 {
                2
            }
            fn shard_of(&self, ev: &(u32, u32)) -> ShardId {
                ShardId(ev.0)
            }
            fn lookahead(&self) -> SimDuration {
                SimDuration::from_nanos(1000)
            }
        }
        let mut e = ShardedEngine::new(Cheater { log: Vec::new() });
        e.prime_with(|_, q| {
            // Keep shard 1's clock ahead so deliveries arrive late.
            q.schedule_at(SimTime::from_nanos(500), (1, 0));
            q.schedule_at(SimTime::ZERO, (0, 4));
        });
        e.run();
        assert_eq!(e.processed(), 6);
        assert!(e.mailbox_late() > 0, "late deliveries must be counted");
        // The log is still monotone per shard and the run completes.
        let log = e.into_world().log;
        assert_eq!(log.len(), 6);
    }

    #[test]
    fn profile_aggregates_across_shards() {
        let mut e = ShardedEngine::new(toy(2));
        e.prime_with(|_, q| {
            q.schedule_at(SimTime::ZERO, (0, 0, 3));
            q.schedule_at(SimTime::ZERO, (1, 1, 3));
        });
        e.run();
        let p = e.profile();
        assert_eq!(p.events, 8);
        assert_eq!(p.pops, 8);
        assert_eq!(p.pushes, 8, "every event enters exactly one shard queue");
    }
}
