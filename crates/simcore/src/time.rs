//! Integer-nanosecond virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in integer nanoseconds since the
/// start of the simulation.
///
/// `SimTime` is totally ordered and supports arithmetic with
/// [`SimDuration`]. Using integers avoids the accumulation of floating-point
/// error over the hundreds of millions of events in a full experiment.
///
/// # Examples
///
/// ```
/// use netrs_simcore::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(4);
/// assert_eq!(t.as_nanos(), 4_000_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_millis(4));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, measured in integer nanoseconds.
///
/// # Examples
///
/// ```
/// use netrs_simcore::SimDuration;
///
/// let d = SimDuration::from_micros(30) * 4;
/// assert_eq!(d.as_micros_f64(), 120.0);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far away"
    /// sentinel for run-until bounds.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds since simulation start.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Returns the raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns this instant expressed in (fractional) microseconds.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns this instant expressed in (fractional) milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns this instant expressed in (fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating difference: `self - earlier`, or zero if `earlier` is
    /// later than `self`.
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs are clamped to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond. Negative and non-finite inputs are clamped to
    /// zero.
    #[must_use]
    pub fn from_micros_f64(micros: f64) -> Self {
        Self::from_secs_f64(micros * 1e-6)
    }

    /// Creates a duration from fractional milliseconds, rounding to the
    /// nearest nanosecond. Negative and non-finite inputs are clamped to
    /// zero.
    #[must_use]
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis * 1e-3)
    }

    /// Returns the raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in (fractional) microseconds.
    #[must_use]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Returns the duration in (fractional) milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration in (fractional) seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Multiplies the duration by a non-negative float, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> Self {
        assert!(factor >= 0.0, "duration factor must be non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_nanos(1_500);
        let d = SimDuration::from_micros(2);
        assert_eq!((t + d).as_nanos(), 3_500);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(30);
        assert_eq!(late.saturating_since(early).as_nanos(), 20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_millis(4), SimDuration::from_micros(4_000));
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.0000025),
            SimDuration::from_nanos(2_500)
        );
        assert_eq!(
            SimDuration::from_micros_f64(2.5),
            SimDuration::from_nanos(2_500)
        );
        assert_eq!(
            SimDuration::from_millis_f64(0.0005),
            SimDuration::from_nanos(500)
        );
    }

    #[test]
    fn from_secs_f64_clamps_bad_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_div_scale() {
        let d = SimDuration::from_micros(30);
        assert_eq!(d * 4, SimDuration::from_micros(120));
        assert_eq!(d / 3, SimDuration::from_micros(10));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_micros(15));
    }

    #[test]
    fn display_picks_reasonable_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000us");
        assert_eq!(SimDuration::from_millis(4).to_string(), "4.000ms");
        assert_eq!(SimTime::from_nanos(1_000_000_000).to_string(), "1.000000s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_micros(1).mul_f64(-0.5);
    }
}
