//! Latency metrics: a log-bucketed histogram with percentile queries.
//!
//! Every figure in the NetRS evaluation reports average, 95th, 99th and
//! 99.9th percentile response latency, so the histogram is a first-class
//! substrate here. The design follows HdrHistogram: exact counts below 256
//! ns, then 128 linear sub-buckets per power of two, giving a worst-case
//! relative quantization error below 1/128 (~0.8%) at any magnitude while
//! using a few kilobytes of memory.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

const EXACT: usize = 256;
const SUB: usize = 128;
const LEVELS: usize = 56;
const NBUCKETS: usize = EXACT + LEVELS * SUB;
/// Buckets summarized per chunk-count entry (see [`Histogram::chunks`]).
const CHUNK: usize = 128;
const NCHUNKS: usize = NBUCKETS / CHUNK;

/// A log-bucketed histogram of durations (recorded in nanoseconds).
///
/// # Examples
///
/// ```
/// use netrs_simcore::{Histogram, SimDuration};
///
/// let mut h = Histogram::new();
/// for ms in 1..=100u64 {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.count(), 100);
/// let p99 = h.value_at_quantile(0.99);
/// assert!(p99 >= SimDuration::from_millis(99));
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    /// Sum of each `CHUNK`-bucket run of `counts`, so quantile queries
    /// skip empty regions wholesale instead of walking ~7k buckets. The
    /// CliRS-R95 scheme queries a quantile per issued request, which made
    /// the linear scan a simulation hot spot.
    chunks: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean", &self.mean())
            .field("p99", &self.value_at_quantile(0.99))
            .field("max", &self.max())
            .finish()
    }
}

fn bucket_index(v: u64) -> usize {
    if v < EXACT as u64 {
        v as usize
    } else {
        let m = 63 - v.leading_zeros() as usize; // highest set bit, >= 8
        let shift = m - 7;
        let sub = (v >> shift) as usize; // in [128, 255]
        EXACT + (m - 8) * SUB + (sub - SUB)
    }
}

/// Upper bound of the value range covered by `idx`.
fn bucket_upper(idx: usize) -> u64 {
    if idx < EXACT {
        idx as u64
    } else {
        let level = (idx - EXACT) / SUB;
        let sub = ((idx - EXACT) % SUB + SUB) as u64;
        let shift = level + 1;
        (sub << shift) + (1u64 << shift) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NBUCKETS],
            chunks: vec![0; NCHUNKS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: SimDuration) {
        self.record_nanos(d.as_nanos());
    }

    /// Records one raw nanosecond value.
    pub fn record_nanos(&mut self, v: u64) {
        let idx = bucket_index(v);
        self.counts[idx] += 1;
        self.chunks[idx / CHUNK] += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact mean of the recorded samples ([`SimDuration::ZERO`] when
    /// empty).
    #[must_use]
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.sum / u128::from(self.count)) as u64)
    }

    /// Exact minimum recorded value ([`SimDuration::ZERO`] when empty).
    #[must_use]
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min)
        }
    }

    /// Exact maximum recorded value ([`SimDuration::ZERO`] when empty).
    #[must_use]
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max)
    }

    /// The smallest recorded-bucket upper bound `v` such that at least
    /// `q * count` samples are `<= v`, clamped to the exact recorded
    /// extrema. `q` is clamped to `[0, 1]`. Returns zero when empty.
    #[must_use]
    pub fn value_at_quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        // Two-level scan: whole chunks that cannot contain the target
        // rank are skipped by their precomputed sums; only the winning
        // chunk's buckets are walked. The returned bucket is exactly the
        // one a flat scan would find.
        for (ci, &chunk_total) in self.chunks.iter().enumerate() {
            if seen + chunk_total < target {
                seen += chunk_total;
                continue;
            }
            let start = ci * CHUNK;
            for (off, &c) in self.counts[start..start + CHUNK].iter().enumerate() {
                seen += c;
                if seen >= target {
                    return SimDuration::from_nanos(
                        bucket_upper(start + off).clamp(self.min, self.max),
                    );
                }
            }
            unreachable!("chunk sum covers the target rank");
        }
        SimDuration::from_nanos(self.max)
    }

    /// Shorthand for `value_at_quantile(p / 100.0)`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> SimDuration {
        self.value_at_quantile(p / 100.0)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        for (a, b) in self.chunks.iter_mut().zip(&other.chunks) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Produces the fixed set of statistics reported by the paper's
    /// figures.
    #[must_use]
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
            p999: self.percentile(99.9),
            max: self.max(),
        }
    }
}

/// The latency statistics reported in each NetRS figure (plus median and
/// max for context).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Mean latency ("Avg." panels).
    pub mean: SimDuration,
    /// Median latency.
    pub p50: SimDuration,
    /// 95th percentile ("95th Percentile" panels).
    pub p95: SimDuration,
    /// 99th percentile ("99th Percentile" panels).
    pub p99: SimDuration,
    /// 99.9th percentile ("99.9th Percentile" panels).
    pub p999: SimDuration,
    /// Maximum observed latency.
    pub max: SimDuration,
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            count: 0,
            mean: SimDuration::ZERO,
            p50: SimDuration::ZERO,
            p95: SimDuration::ZERO,
            p99: SimDuration::ZERO,
            p999: SimDuration::ZERO,
            max: SimDuration::ZERO,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={} p95={} p99={} p99.9={}",
            self.count, self.mean, self.p95, self.p99, self.p999
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_dense_at_boundaries() {
        let mut last = 0usize;
        for v in 0u64..=4096 {
            let idx = bucket_index(v);
            assert!(idx >= last, "index regressed at v={v}");
            assert!(bucket_upper(idx) >= v, "upper bound below value at v={v}");
            last = idx;
        }
    }

    #[test]
    fn bucket_upper_bounds_are_tight() {
        for v in [0u64, 1, 255, 256, 257, 511, 512, 1 << 20, u64::MAX / 2] {
            let idx = bucket_index(v);
            let upper = bucket_upper(idx);
            assert!(upper >= v);
            // Relative error bounded by 1/128.
            if v >= EXACT as u64 {
                assert!(
                    (upper - v) as f64 / v as f64 <= 1.0 / 128.0 + 1e-9,
                    "v={v} upper={upper}"
                );
            } else {
                assert_eq!(upper, v, "exact range must be exact");
            }
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.value_at_quantile(0.99), SimDuration::ZERO);
        assert_eq!(h.summary(), Summary::default());
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record_nanos(v * 1_000); // 1us .. 10ms
        }
        let p50 = h.percentile(50.0).as_nanos() as f64;
        let p99 = h.percentile(99.0).as_nanos() as f64;
        assert!((p50 / 5_000_000.0 - 1.0).abs() < 0.02, "p50={p50}");
        assert!((p99 / 9_900_000.0 - 1.0).abs() < 0.02, "p99={p99}");
        assert_eq!(h.percentile(100.0), SimDuration::from_millis(10));
        assert_eq!(h.min(), SimDuration::from_micros(1));
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record_nanos(v);
        }
        assert_eq!(h.mean().as_nanos(), 25);
    }

    #[test]
    fn single_sample_quantiles_collapse() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_millis(4));
        for q in [0.0, 0.5, 0.95, 0.999, 1.0] {
            assert_eq!(h.value_at_quantile(q), SimDuration::from_millis(4));
        }
    }

    #[test]
    fn merge_equals_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 1..=1000u64 {
            if v % 2 == 0 {
                a.record_nanos(v * 977);
            } else {
                b.record_nanos(v * 977);
            }
            all.record_nanos(v * 977);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.mean(), all.mean());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        for p in [50.0, 95.0, 99.0, 99.9] {
            assert_eq!(a.percentile(p), all.percentile(p));
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record_nanos(123_456);
        let snapshot = a.summary();
        a.merge(&Histogram::new());
        assert_eq!(a.summary(), snapshot);
    }

    #[test]
    fn merge_into_empty_adopts_other() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [500u64, 1_500, 2_500] {
            b.record_nanos(v);
        }
        a.merge(&b);
        assert_eq!(a.summary(), b.summary());
        assert_eq!(a.min(), b.min());
        // Merging empty into empty stays empty (min sentinel untouched).
        let mut e = Histogram::new();
        e.merge(&Histogram::new());
        assert!(e.is_empty());
        assert_eq!(e.summary(), Summary::default());
    }

    #[test]
    fn quantile_extremes_hit_recorded_extrema() {
        let mut h = Histogram::new();
        for v in 1..=1_000u64 {
            h.record_nanos(v * 10_007);
        }
        // q=0 lands in the smallest recorded bucket (within the 1/128
        // quantization bound above the exact minimum); q=1 is clamped to
        // the exact maximum.
        let q0 = h.value_at_quantile(0.0).as_nanos();
        let min = h.min().as_nanos();
        assert!(q0 >= min && q0 <= min + min / 128 + 1, "q0={q0} min={min}");
        assert_eq!(h.value_at_quantile(1.0), h.max());
        // A single sample is every quantile at once.
        let mut one = Histogram::new();
        one.record_nanos(77);
        assert_eq!(one.value_at_quantile(0.0).as_nanos(), 77);
        assert_eq!(one.value_at_quantile(1.0).as_nanos(), 77);
        assert_eq!(one.summary().p999.as_nanos(), 77);
    }

    #[test]
    fn chunked_quantile_matches_flat_scan() {
        // The two-level scan must return exactly the bucket a flat scan
        // over `counts` would; exercise sparse histograms whose samples
        // straddle many empty chunks.
        let mut h = Histogram::new();
        let mut rng = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..5_000 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            h.record_nanos(rng % 50_000_000_000); // up to 50 s
        }
        let flat = |q: f64| {
            let target = ((q.clamp(0.0, 1.0) * h.count as f64).ceil() as u64).max(1);
            let mut seen = 0u64;
            for (idx, &c) in h.counts.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return SimDuration::from_nanos(bucket_upper(idx).clamp(h.min, h.max));
                }
            }
            SimDuration::from_nanos(h.max)
        };
        for q in [0.0, 0.001, 0.25, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(h.value_at_quantile(q), flat(q), "q={q}");
        }
    }

    #[test]
    fn quantile_is_clamped() {
        let mut h = Histogram::new();
        h.record_nanos(5);
        h.record_nanos(10);
        assert_eq!(h.value_at_quantile(-1.0).as_nanos(), 5);
        assert_eq!(h.value_at_quantile(2.0).as_nanos(), 10);
    }

    #[test]
    fn summary_display_is_nonempty() {
        let mut h = Histogram::new();
        h.record(SimDuration::from_micros(100));
        let s = h.summary().to_string();
        assert!(s.contains("n=1"));
    }
}
