//! Seeded randomness and the distributions used by the NetRS evaluation.
//!
//! The NetRS paper (§V-A) draws from three non-uniform distributions:
//! exponential service times, Zipfian key popularity (Zipf parameter 0.99
//! over 100 million keys) and a bimodal server-performance fluctuation.
//! `rand` only gives us uniform bits; the distributions themselves are
//! implemented here so the workspace has no further dependencies.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// A deterministic random stream for simulations.
///
/// All randomness in the workspace flows through `SimRng` values created
/// from an explicit seed. Independent components receive independent
/// sub-streams via [`SimRng::fork`], so adding a consumer in one component
/// never perturbs the draws seen by another.
///
/// # Examples
///
/// ```
/// use netrs_simcore::SimRng;
///
/// let mut a = SimRng::from_seed(42);
/// let mut b = SimRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// let mut child = a.fork(7);
/// let _ = child.f64(); // independent stream
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    seed: u64,
}

/// SplitMix64 step, used to whiten seeds when forking sub-streams.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(splitmix64(seed)),
            seed,
        }
    }

    /// Derives an independent child stream identified by `stream`.
    ///
    /// Forking is a pure function of `(root seed, stream)`: it does not
    /// consume randomness from `self`, so components can be created in any
    /// order without changing each other's draws.
    #[must_use]
    pub fn fork(&self, stream: u64) -> SimRng {
        let child = splitmix64(self.seed ^ splitmix64(stream.wrapping_add(0xA5A5_5A5A_DEAD_BEEF)));
        SimRng::from_seed(child)
    }

    /// Derives the `shard`-th of `shards` deterministic per-shard
    /// sub-streams of this stream.
    ///
    /// Like [`SimRng::fork`], the split is a pure function of the
    /// stream's *seed* — it neither consumes randomness from `self` nor
    /// depends on how many draws `self` has already made, so the shard
    /// streams are stable across runs and across shard-creation order.
    /// Two properties matter to the sharded engine
    /// (`netrs_simcore::ShardedEngine`):
    ///
    /// 1. **Identity at `shards == 1`**: `split(0, 1)` returns the
    ///    stream's pristine state (`SimRng::from_seed(seed)`), so a
    ///    single-shard world draws *exactly* the sequence the unsharded
    ///    world draws and the engine's byte-identity guarantee extends
    ///    through the RNG layer.
    /// 2. **Disjointness at `shards > 1`**: each `(shard, shards)` pair
    ///    maps to a distinct splitmix64-whitened stream id, so one
    ///    shard's draws carry no correlation with another's (tested over
    ///    the first 10k draws in `shard_split_streams_are_disjoint`).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `shard >= shards`.
    #[must_use]
    pub fn split(&self, shard: u32, shards: u32) -> SimRng {
        assert!(shards > 0, "cannot split into zero shards");
        assert!(shard < shards, "shard {shard} out of range 0..{shards}");
        if shards == 1 {
            return SimRng::from_seed(self.seed);
        }
        // A dedicated tag keeps the shard-id space disjoint from the
        // small integers callers typically pass to `fork`.
        let id = 0x5AD5_0000_0000_0000u64 | (u64::from(shards) << 32) | u64::from(shard);
        self.fork(id)
    }

    /// Next raw 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `f64` in `(0, 1]` — safe as the argument of `ln`.
    pub fn f64_open_closed(&mut self) -> f64 {
        1.0 - self.f64()
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        self.inner.gen_range(0..bound)
    }

    /// Uniform index in `[0, len)` for indexing slices.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "len must be positive");
        self.inner.gen_range(0..len)
    }

    /// Bernoulli draw: returns `true` with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential draw with the given mean (in the same unit as the
    /// result).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive and finite.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(
            mean.is_finite() && mean > 0.0,
            "exponential mean must be positive, got {mean}"
        );
        -mean * self.f64_open_closed().ln()
    }

    /// Exponential draw expressed as a [`SimDuration`].
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_nanos(self.exp(mean.as_nanos() as f64).round() as u64)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (order unspecified but
    /// deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from {n}");
        // Floyd's algorithm: O(k) expected for k << n.
        let mut chosen = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.index(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen
    }
}

/// Zipf-distributed integers over `1..=n` with exponent `s`, sampled by
/// Hörmann's rejection-inversion method.
///
/// Rejection-inversion needs O(1) state and O(1) expected time per sample,
/// which is what makes the paper's 100-million-key popularity distribution
/// practical (building a 100M-entry CDF table would not be).
///
/// # Examples
///
/// ```
/// use netrs_simcore::{SimRng, Zipf};
///
/// let zipf = Zipf::new(100_000_000, 0.99);
/// let mut rng = SimRng::from_seed(1);
/// let key = zipf.sample(&mut rng);
/// assert!((1..=100_000_000).contains(&key));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_n: f64,
    // Constants hoisted out of `sample`'s rejection loop. Each stores the
    // bit-exact f64 the loop used to recompute per draw, so hoisting them
    // cannot perturb a single sample.
    /// `h(1.5) - 1.0 - h_n` — the width of the inversion interval.
    span: f64,
    n_f64: f64,
    s_near_one: bool,
    one_minus_s: f64,
    inv_one_minus_s: f64,
    neg_s: f64,
}

impl Zipf {
    /// Creates a Zipf distribution over `1..=n` with exponent `s > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is not positive and finite.
    #[must_use]
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf needs at least one element");
        assert!(s.is_finite() && s > 0.0, "zipf exponent must be positive");
        let h = |x: f64| Self::h(x, s);
        let h_x1 = h(1.5) - 1.0;
        let h_n = h(n as f64 + 0.5);
        Zipf {
            n,
            s,
            h_n,
            span: h_x1 - h_n,
            n_f64: n as f64,
            s_near_one: (s - 1.0).abs() < 1e-12,
            one_minus_s: 1.0 - s,
            inv_one_minus_s: 1.0 / (1.0 - s),
            neg_s: -s,
        }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether the support is empty (never true; kept for API symmetry).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The exponent `s`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.s
    }

    // H(x) = integral of x^-s: x^(1-s)/(1-s) for s != 1, ln(x) for s == 1.
    fn h(x: f64, s: f64) -> f64 {
        if (s - 1.0).abs() < 1e-12 {
            x.ln()
        } else {
            x.powf(1.0 - s) / (1.0 - s)
        }
    }

    /// `H(x)` on the hot path, using the precomputed constants.
    #[inline]
    fn h_hot(&self, x: f64) -> f64 {
        if self.s_near_one {
            x.ln()
        } else {
            x.powf(self.one_minus_s) / self.one_minus_s
        }
    }

    /// `H^-1(x)` on the hot path, using the precomputed constants.
    #[inline]
    fn h_inv_hot(&self, x: f64) -> f64 {
        if self.s_near_one {
            x.exp()
        } else {
            (self.one_minus_s * x).powf(self.inv_one_minus_s)
        }
    }

    /// Draws one rank in `1..=n` (rank 1 is the most popular).
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        loop {
            let u = self.h_n + rng.f64() * self.span;
            let x = self.h_inv_hot(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n_f64);
            if k - x <= 0.5 || u >= self.h_hot(k + 0.5) - k.powf(self.neg_s) {
                return k as u64;
            }
        }
    }
}

/// The bimodal performance-fluctuation model of §V-A: at each fluctuation
/// interval a server's mean service time is redrawn as either `base` or
/// `base / d` with equal probability (range parameter `d`, default 3 in the
/// paper, taken from Schad et al.'s cloud measurements).
///
/// # Examples
///
/// ```
/// use netrs_simcore::{Bimodal, SimDuration, SimRng};
///
/// let fluct = Bimodal::new(SimDuration::from_millis(4), 3.0);
/// let mut rng = SimRng::from_seed(9);
/// let mean = fluct.draw(&mut rng);
/// assert!(mean == SimDuration::from_millis(4)
///     || mean == SimDuration::from_millis(4).mul_f64(1.0 / 3.0));
/// ```
#[derive(Debug, Clone)]
pub struct Bimodal {
    slow: SimDuration,
    fast: SimDuration,
}

impl Bimodal {
    /// Creates the fluctuation model with base (slow-mode) mean service
    /// time `base` and range parameter `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d < 1` or non-finite.
    #[must_use]
    pub fn new(base: SimDuration, d: f64) -> Self {
        assert!(d.is_finite() && d >= 1.0, "range parameter must be >= 1");
        Bimodal {
            slow: base,
            fast: base.mul_f64(1.0 / d),
        }
    }

    /// The slow-mode mean (`tkv`).
    #[must_use]
    pub fn slow(&self) -> SimDuration {
        self.slow
    }

    /// The fast-mode mean (`tkv / d`).
    #[must_use]
    pub fn fast(&self) -> SimDuration {
        self.fast
    }

    /// Draws the mean service time for the next fluctuation interval.
    pub fn draw(&self, rng: &mut SimRng) -> SimDuration {
        if rng.chance(0.5) {
            self.slow
        } else {
            self.fast
        }
    }

    /// The long-run average service *rate* (used by the paper to convert a
    /// nominal utilization into an effective one: with equal time in each
    /// mode the mean rate is `(1 + d) / (2 tkv)`).
    #[must_use]
    pub fn mean_rate_per_sec(&self) -> f64 {
        0.5 * (1.0 / self.slow.as_secs_f64() + 1.0 / self.fast.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_is_order_independent_and_distinct() {
        let root = SimRng::from_seed(123);
        let mut a1 = root.fork(1);
        let mut b = root.fork(2);
        let mut a2 = root.fork(1);
        let x1 = a1.next_u64();
        let _ = b.next_u64();
        let x2 = a2.next_u64();
        assert_eq!(x1, x2, "same stream id must replay identically");
        let mut b2 = root.fork(2);
        assert_ne!(x1, b2.next_u64(), "distinct streams must differ");
    }

    #[test]
    fn shard_split_is_identity_for_one_shard() {
        // The single-shard split must replay the root stream's pristine
        // sequence even if the root has already consumed draws — the
        // sharded engine splits from seeds, not live streams.
        let mut consumed = SimRng::from_seed(99).fork(2);
        let _ = consumed.next_u64();
        let mut split = consumed.split(0, 1);
        let mut fresh = SimRng::from_seed(99).fork(2);
        for _ in 0..100 {
            assert_eq!(split.next_u64(), fresh.next_u64());
        }
    }

    #[test]
    fn shard_split_streams_are_stable_across_runs() {
        let root = SimRng::from_seed(4242).fork(2);
        for shard in 0..4 {
            let a: Vec<u64> = {
                let mut s = root.split(shard, 4);
                (0..100).map(|_| s.next_u64()).collect()
            };
            let b: Vec<u64> = {
                let mut s = SimRng::from_seed(4242).fork(2).split(shard, 4);
                (0..100).map(|_| s.next_u64()).collect()
            };
            assert_eq!(a, b, "shard {shard} stream must be stable");
        }
    }

    #[test]
    fn shard_split_streams_are_disjoint() {
        // Two checks over the first 10k draws of every shard stream:
        // (1) no raw u64 appears in two streams (collision probability
        // ~= (4*10^4)^2 / 2^64 ~ 1e-10 for independent streams), and
        // (2) the lag-0 cross-correlation of the uniform deviates is
        // statistically indistinguishable from zero (|r| < 4/sqrt(n)).
        const N: usize = 10_000;
        let root = SimRng::from_seed(7).fork(2);
        let streams: Vec<Vec<u64>> = (0..4)
            .map(|shard| {
                let mut s = root.split(shard, 4);
                (0..N).map(|_| s.next_u64()).collect()
            })
            .collect();
        let mut seen = std::collections::HashSet::new();
        for (i, stream) in streams.iter().enumerate() {
            for &v in stream {
                assert!(seen.insert(v), "value {v:#x} repeated across shard {i}");
            }
        }
        let uniform = |v: u64| v as f64 / u64::MAX as f64 - 0.5;
        for i in 0..streams.len() {
            for j in (i + 1)..streams.len() {
                let r: f64 = streams[i]
                    .iter()
                    .zip(&streams[j])
                    .map(|(&a, &b)| uniform(a) * uniform(b))
                    .sum::<f64>()
                    / (N as f64 / 12.0);
                assert!(
                    r.abs() < 4.0 / (N as f64).sqrt(),
                    "shards {i},{j} correlated: r = {r}"
                );
            }
        }
    }

    #[test]
    fn shard_split_differs_by_shard_count() {
        let root = SimRng::from_seed(5);
        let mut a = root.split(1, 2);
        let mut b = root.split(1, 4);
        assert_ne!(
            a.next_u64(),
            b.next_u64(),
            "same shard index under different totals must not alias"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn shard_split_rejects_out_of_range_shard() {
        let _ = SimRng::from_seed(1).split(2, 2);
    }

    #[test]
    fn exp_mean_is_close() {
        let mut rng = SimRng::from_seed(7);
        let n = 200_000;
        let mean = 4.0e6; // 4ms in ns
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() / mean < 0.02,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn exp_duration_is_positive_and_varies() {
        let mut rng = SimRng::from_seed(8);
        let mean = SimDuration::from_millis(4);
        let a = rng.exp_duration(mean);
        let b = rng.exp_duration(mean);
        assert_ne!(a, b);
    }

    #[test]
    fn zipf_respects_support_and_monotonicity() {
        let zipf = Zipf::new(1000, 0.99);
        let mut rng = SimRng::from_seed(5);
        let mut counts = vec![0u32; 1001];
        for _ in 0..200_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=1000).contains(&k));
            counts[k as usize] += 1;
        }
        // Rank 1 must be clearly more popular than rank 100 and rank 1000.
        assert!(counts[1] > counts[100] * 2);
        assert!(counts[1] > counts[1000] * 10);
    }

    #[test]
    fn zipf_matches_analytic_head_probability() {
        // P(X = 1) = 1 / H_{n,s}; check within sampling error.
        let n = 100u64;
        let s = 0.99;
        let norm: f64 = (1..=n).map(|k| (k as f64).powf(-s)).sum();
        let p1 = 1.0 / norm;
        let zipf = Zipf::new(n, s);
        let mut rng = SimRng::from_seed(11);
        let trials = 300_000;
        let hits = (0..trials).filter(|_| zipf.sample(&mut rng) == 1).count();
        let observed = hits as f64 / trials as f64;
        assert!(
            (observed - p1).abs() < 0.005,
            "observed {observed}, analytic {p1}"
        );
    }

    #[test]
    fn zipf_rank_frequency_slope_matches_exponent() {
        // On a log-log plot a Zipf law is a line of slope -s
        // (log P(rank r) = -s log r - log H_{n,s}). Fit a least-squares
        // line over the well-sampled head ranks and check the slope.
        let s = 0.99;
        let zipf = Zipf::new(100_000, s);
        let mut rng = SimRng::from_seed(4242);
        let mut counts = vec![0u64; 51];
        let trials = 2_000_000;
        for _ in 0..trials {
            let k = zipf.sample(&mut rng) as usize;
            if k <= 50 {
                counts[k] += 1;
            }
        }
        let xs: Vec<f64> = (1..=50).map(|r| (r as f64).ln()).collect();
        let ys: Vec<f64> = (1..=50).map(|r| (counts[r] as f64).ln()).collect();
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let var: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let slope = cov / var;
        assert!(
            (slope + s).abs() < 0.05,
            "fitted rank-frequency slope {slope}, expected {}",
            -s
        );
    }

    #[test]
    fn zipf_handles_exponent_one_and_huge_n() {
        let zipf = Zipf::new(100_000_000, 1.0);
        let mut rng = SimRng::from_seed(3);
        for _ in 0..10_000 {
            let k = zipf.sample(&mut rng);
            assert!((1..=100_000_000).contains(&k));
        }
    }

    #[test]
    fn bimodal_draws_both_modes_evenly() {
        let fluct = Bimodal::new(SimDuration::from_millis(4), 3.0);
        let mut rng = SimRng::from_seed(21);
        let mut slow = 0u32;
        let n = 100_000;
        for _ in 0..n {
            if fluct.draw(&mut rng) == fluct.slow() {
                slow += 1;
            }
        }
        let frac = slow as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "slow fraction {frac}");
    }

    #[test]
    fn bimodal_mean_rate_matches_paper_formula() {
        // With d = 3 and tkv = 4ms, mean rate = (1 + 3) / (2 * 4ms) = 500/s.
        let fluct = Bimodal::new(SimDuration::from_millis(4), 3.0);
        let expected = (1.0 + 3.0) / (2.0 * 0.004);
        let got = fluct.mean_rate_per_sec();
        assert!((got - expected).abs() / expected < 1e-3, "got {got}");
    }

    #[test]
    fn sample_indices_are_distinct() {
        let mut rng = SimRng::from_seed(77);
        for _ in 0..100 {
            let mut picks = rng.sample_indices(50, 10);
            picks.sort_unstable();
            picks.dedup();
            assert_eq!(picks.len(), 10);
            assert!(picks.iter().all(|&i| i < 50));
        }
    }

    #[test]
    fn sample_indices_full_range() {
        let mut rng = SimRng::from_seed(78);
        let mut picks = rng.sample_indices(10, 10);
        picks.sort_unstable();
        assert_eq!(picks, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::from_seed(79);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn exp_rejects_nonpositive_mean() {
        let mut rng = SimRng::from_seed(1);
        let _ = rng.exp(0.0);
    }
}
