//! Zero-cost-when-disabled observability: engine probes, sim-time spans,
//! engine profiles and bounded time-series buffers.
//!
//! The [`Probe`] trait is the engine's instrumentation hook. Every method
//! has a no-op default body and the engine is monomorphized over the
//! probe type, so with the default [`NoProbe`] the hooks compile away and
//! the hot path is byte-for-byte what it was before instrumentation
//! existed. Worlds that need richer, domain-specific telemetry (per
//! request lifecycle spans, say) thread their own sinks; the probe layer
//! covers what only the engine can see — the event stream itself.

use std::collections::VecDeque;
use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::time::{SimDuration, SimTime};

/// Instrumentation sink driven by the [`Engine`](crate::Engine).
///
/// All methods default to no-ops so implementors opt into exactly the
/// signals they need and an uninstrumented engine pays nothing.
pub trait Probe {
    /// Whether this probe wants per-event-kind attribution.
    ///
    /// When `false` (the default) the engine never calls
    /// [`Probe::sample_due`] or [`Probe::on_event_kind`] and never reads
    /// the host clock per step — the associated const lets the branches
    /// fold away entirely, preserving the zero-cost guarantee for
    /// [`NoProbe`].
    const KINDED: bool = false;

    /// Called once per processed event, after the world's handler ran.
    /// `queue_depth` is the number of events pending afterwards.
    fn on_event(&mut self, now: SimTime, queue_depth: usize) {
        let _ = (now, queue_depth);
    }

    /// Whether the engine should wall-clock-time the next step (kinded
    /// probes only). Must be cheap — it runs before every event.
    fn sample_due(&mut self) -> bool {
        false
    }

    /// Called once per processed event on kinded probes, with the kind
    /// index from [`World::event_kind`](crate::World::event_kind) and,
    /// when [`Probe::sample_due`] returned true for this step, the
    /// measured wall-clock nanoseconds of the whole step.
    fn on_event_kind(&mut self, kind: u32, sampled_ns: Option<u64>) {
        let _ = (kind, sampled_ns);
    }

    /// Adds `delta` to the named monotonic counter.
    fn count(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Records an instantaneous value of the named gauge.
    fn gauge(&mut self, now: SimTime, name: &'static str, value: f64) {
        let _ = (now, name, value);
    }

    /// Records a completed sim-time span.
    fn span(&mut self, span: Span) {
        let _ = span;
    }
}

/// The default probe: every hook is a no-op and vanishes at compile time.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {}

/// A named sim-time interval attributed to an entity (request, server…).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Span {
    /// What happened during the interval.
    pub name: &'static str,
    /// The entity the span belongs to (caller-defined, e.g. request id).
    pub id: u64,
    /// When the interval began.
    pub start: SimTime,
    /// When the interval ended.
    pub end: SimTime,
}

impl Span {
    /// The span's length.
    #[must_use]
    pub fn duration(&self) -> SimDuration {
        self.end - self.start
    }
}

/// A probe that keeps everything it is told, for tests and offline export.
#[derive(Debug, Default)]
pub struct CollectingProbe {
    /// Events observed via [`Probe::on_event`].
    pub events: u64,
    /// Deepest pending queue seen after any event.
    pub max_queue_depth: usize,
    /// Counter totals in first-use order.
    pub counters: Vec<(&'static str, u64)>,
    /// Every gauge observation, in order.
    pub gauges: Vec<(SimTime, &'static str, f64)>,
    /// Every recorded span, in order.
    pub spans: Vec<Span>,
}

impl CollectingProbe {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The total of the named counter (zero if never incremented).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }
}

impl Probe for CollectingProbe {
    fn on_event(&mut self, _now: SimTime, queue_depth: usize) {
        self.events += 1;
        self.max_queue_depth = self.max_queue_depth.max(queue_depth);
    }

    fn count(&mut self, name: &'static str, delta: u64) {
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += delta,
            None => self.counters.push((name, delta)),
        }
    }

    fn gauge(&mut self, now: SimTime, name: &'static str, value: f64) {
        self.gauges.push((now, name, value));
    }

    fn span(&mut self, span: Span) {
        self.spans.push(span);
    }
}

/// End-of-run engine self-measurement: how much work the event loop did
/// and how fast the host machine chewed through it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EngineProfile {
    /// Events processed.
    pub events: u64,
    /// Deepest the future-event list ever got.
    pub queue_high_water: usize,
    /// Events ever scheduled onto the queue.
    pub pushes: u64,
    /// Events ever popped off the queue.
    pub pops: u64,
    /// Peak resident-set size of the process in kilobytes (zero when the
    /// platform does not expose it).
    pub peak_rss_kb: u64,
    /// Wall-clock seconds since the engine was created.
    pub wall_seconds: f64,
    /// Events per wall-clock second (zero if no time elapsed).
    pub events_per_sec: f64,
}

impl EngineProfile {
    /// Builds a profile from raw engine counters and the construction
    /// instant.
    #[must_use]
    pub fn capture(
        events: u64,
        queue_high_water: usize,
        pushes: u64,
        pops: u64,
        started: Instant,
    ) -> Self {
        let wall_seconds = started.elapsed().as_secs_f64();
        let events_per_sec = if wall_seconds > 0.0 {
            events as f64 / wall_seconds
        } else {
            0.0
        };
        EngineProfile {
            events,
            queue_high_water,
            pushes,
            pops,
            peak_rss_kb: crate::hostperf::peak_rss_kb(),
            wall_seconds,
            events_per_sec,
        }
    }
}

impl std::fmt::Display for EngineProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let rate = if self.events_per_sec >= 1_000_000.0 {
            format!("{:.2}M", self.events_per_sec / 1_000_000.0)
        } else if self.events_per_sec >= 1_000.0 {
            format!("{:.0}k", self.events_per_sec / 1_000.0)
        } else {
            format!("{:.0}", self.events_per_sec)
        };
        write!(
            f,
            "{} events in {:.2}s wall ({rate} events/s), queue high-water {} \
             ({} pushes / {} pops), peak RSS {} kB",
            self.events,
            self.wall_seconds,
            self.queue_high_water,
            self.pushes,
            self.pops,
            self.peak_rss_kb
        )
    }
}

/// A bounded time series: a ring buffer of `(sim time, value)` samples
/// that keeps the most recent `capacity` entries.
#[derive(Debug, Clone)]
pub struct RingSeries {
    cap: usize,
    buf: VecDeque<(SimTime, f64)>,
    pushed: u64,
}

impl RingSeries {
    /// Creates an empty series keeping at most `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring series needs a positive capacity");
        RingSeries {
            cap: capacity,
            buf: VecDeque::with_capacity(capacity),
            pushed: 0,
        }
    }

    /// Appends a sample, evicting the oldest if the buffer is full.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back((t, value));
        self.pushed += 1;
    }

    /// Samples currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no samples are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retention bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Samples ever pushed, including evicted ones.
    #[must_use]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// The most recent sample, if any.
    #[must_use]
    pub fn latest(&self) -> Option<(SimTime, f64)> {
        self.buf.back().copied()
    }

    /// Retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.buf.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn collecting_probe_aggregates_counters() {
        let mut p = CollectingProbe::new();
        p.count("steps", 2);
        p.count("steps", 3);
        p.count("drops", 1);
        assert_eq!(p.counter("steps"), 5);
        assert_eq!(p.counter("drops"), 1);
        assert_eq!(p.counter("missing"), 0);
    }

    #[test]
    fn collecting_probe_keeps_spans_and_gauges_in_order() {
        let mut p = CollectingProbe::new();
        p.gauge(t(5), "util", 0.5);
        p.span(Span {
            name: "service",
            id: 7,
            start: t(10),
            end: t(40),
        });
        assert_eq!(p.gauges, vec![(t(5), "util", 0.5)]);
        assert_eq!(p.spans[0].duration(), SimDuration::from_nanos(30));
    }

    #[test]
    fn no_probe_is_trivially_usable() {
        let mut p = NoProbe;
        p.on_event(t(1), 3);
        p.count("x", 1);
        p.gauge(t(2), "y", 0.0);
        p.span(Span {
            name: "z",
            id: 0,
            start: t(0),
            end: t(1),
        });
    }

    #[test]
    fn ring_series_evicts_oldest_beyond_capacity() {
        let mut s = RingSeries::new(3);
        for i in 0..5u64 {
            s.push(t(i * 10), i as f64);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.capacity(), 3);
        assert_eq!(s.total_pushed(), 5);
        let kept: Vec<_> = s.iter().collect();
        assert_eq!(kept, vec![(t(20), 2.0), (t(30), 3.0), (t(40), 4.0)]);
        assert_eq!(s.latest(), Some((t(40), 4.0)));
    }

    #[test]
    #[should_panic(expected = "positive capacity")]
    fn ring_series_rejects_zero_capacity() {
        let _ = RingSeries::new(0);
    }

    #[test]
    fn profile_display_is_human_readable() {
        let p = EngineProfile {
            events: 1_000,
            queue_high_water: 42,
            pushes: 1_005,
            pops: 1_000,
            peak_rss_kb: 4_096,
            wall_seconds: 2.0,
            events_per_sec: 500.0,
        };
        let s = p.to_string();
        assert!(s.contains("1000 events"), "{s}");
        assert!(s.contains("high-water 42"), "{s}");
        assert!(s.contains("1005 pushes / 1000 pops"), "{s}");
        assert!(s.contains("peak RSS 4096 kB"), "{s}");
    }
}
