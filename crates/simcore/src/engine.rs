//! The discrete-event engine: a calendar queue plus a driver loop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use crate::time::{SimDuration, SimTime};
use crate::trace::{EngineProfile, NoProbe, Probe};

/// The simulated world: all mutable state of a simulation plus the handler
/// that advances it one event at a time.
///
/// The engine owns a `World` and feeds it events in non-decreasing time
/// order. Handlers schedule follow-up events through the [`EventQueue`]
/// passed to [`World::handle`].
pub trait World: Sized {
    /// The event type processed by this world.
    type Event;

    /// Processes one event occurring at `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// Names of this world's event kinds, indexed by [`World::event_kind`].
    ///
    /// Only consulted by kinded probes (see [`Probe::KINDED`]); the
    /// default collapses every event into a single `"event"` bucket so
    /// worlds that never profile need not implement it.
    #[must_use]
    fn event_kinds() -> &'static [&'static str] {
        &["event"]
    }

    /// Dense kind index of `event`, in `0..event_kinds().len()`.
    ///
    /// Must be cheap (a discriminant read): kinded probes call it once
    /// per processed event.
    #[must_use]
    fn event_kind(event: &Self::Event) -> u32 {
        let _ = event;
        0
    }
}

/// Heap key plus a slot index into the payload slab. Keeping the payload
/// out of the heap means sift operations move 24 bytes instead of a full
/// event (~120 bytes for the simulator's `Ev`) — the heap was the
/// single largest memory-traffic source in the event loop. `(at, seq)`
/// is a total order (`seq` is unique), so pop order is exactly what the
/// payload-carrying heap produced.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Entry {
    at: SimTime,
    seq: u64,
    idx: u32,
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event
        // (breaking ties by insertion order) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list ordered by `(time, insertion sequence)`.
///
/// Ties in event time are broken by insertion order, which makes simulations
/// fully deterministic for a fixed seed.
///
/// # Examples
///
/// ```
/// use netrs_simcore::{EventQueue, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_at(SimTime::from_nanos(20), "later");
/// q.schedule_at(SimTime::from_nanos(10), "sooner");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), ev), (10, "sooner"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry>,
    /// Event payloads, indexed by `Entry::idx`; freed slots recycle
    /// through `free`, so the slab stays at the queue's high-water size.
    slab: Vec<Option<E>>,
    free: Vec<u32>,
    seq: u64,
    popped: u64,
    now: SimTime,
    high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            seq: 0,
            popped: 0,
            now: SimTime::ZERO,
            high_water: 0,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Deepest the pending-event list has ever been.
    #[must_use]
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Events ever scheduled (each `schedule_*` call is one push).
    #[must_use]
    pub fn pushes(&self) -> u64 {
        self.seq
    }

    /// Events ever popped; `pushes() - pops()` is the pending count.
    #[must_use]
    pub fn pops(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// An `at` earlier than the current time indicates a logic error in
    /// the caller: the event would fire "before" events that already ran,
    /// corrupting the timeline and the simulation's determinism. Debug
    /// builds panic; release builds clamp the event to `now` so the
    /// causal order of everything already processed still holds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` is earlier than the current time.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "cannot schedule an event in the past: at={at}, now={}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i as usize] = Some(event);
                i
            }
            None => {
                self.slab.push(Some(event));
                (self.slab.len() - 1) as u32
            }
        };
        self.heap.push(Entry { at, seq, idx });
        if self.heap.len() > self.high_water {
            self.high_water = self.heap.len();
        }
    }

    /// Schedules `event` at `now() + delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.popped += 1;
        self.now = entry.at;
        let event = self.slab[entry.idx as usize]
            .take()
            .expect("every heap entry owns a live slab slot");
        self.free.push(entry.idx);
        Some((entry.at, event))
    }

    /// Returns the timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Moves the clock to `now` without processing events.
    ///
    /// Intended for reusing a drained queue as a scratch *outbox* (see
    /// [`ShardedEngine`](crate::ShardedEngine)): handlers schedule
    /// relative times against the event being processed, so the scratch
    /// queue's clock must first be moved to that event's timestamp.
    /// Shards process events out of global time order, so the clock may
    /// legitimately move backwards here — which is only sound while
    /// nothing is pending, hence the emptiness requirement.
    ///
    /// # Panics
    ///
    /// Panics if any events are pending.
    pub fn reset_clock(&mut self, now: SimTime) {
        assert!(
            self.is_empty(),
            "reset_clock would reorder {} pending events",
            self.len()
        );
        self.now = now;
    }
}

/// Drives a [`World`] through its event queue.
///
/// The engine is generic over a [`Probe`] for instrumentation; the
/// default [`NoProbe`] makes every hook a no-op that compiles away, so an
/// uninstrumented engine pays nothing. See the
/// [crate-level documentation](crate) for a complete example.
pub struct Engine<W: World, P: Probe = NoProbe> {
    world: W,
    queue: EventQueue<W::Event>,
    processed: u64,
    probe: P,
    started: Instant,
}

impl<W: World> Engine<W> {
    /// Creates an engine around `world` with an empty queue at time zero
    /// and no instrumentation.
    pub fn new(world: W) -> Self {
        Engine::with_probe(world, NoProbe)
    }
}

impl<W: World, P: Probe> Engine<W, P> {
    /// Creates an engine that reports each processed event to `probe`.
    pub fn with_probe(world: W, probe: P) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            processed: 0,
            probe,
            started: Instant::now(),
        }
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total number of events processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Shared access to the world state.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world state.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Shared access to the event queue, e.g. for churn counters.
    pub fn queue(&self) -> &EventQueue<W::Event> {
        &self.queue
    }

    /// Exclusive access to the event queue, e.g. to seed initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Shared access to the probe.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Exclusive access to the probe.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consumes the engine and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Consumes the engine and returns the world and the probe.
    pub fn into_parts(self) -> (W, P) {
        (self.world, self.probe)
    }

    /// The engine's self-measurement: events processed, queue-depth
    /// high-water mark, and wall-clock throughput since construction.
    #[must_use]
    pub fn profile(&self) -> EngineProfile {
        EngineProfile::capture(
            self.processed,
            self.queue.high_water(),
            self.queue.pushes(),
            self.queue.pops(),
            self.started,
        )
    }

    /// Processes a single event. Returns the time of the processed event, or
    /// `None` if the queue was empty.
    ///
    /// When the probe is kinded ([`Probe::KINDED`]) the engine asks
    /// [`Probe::sample_due`] whether to time this step; if so it brackets
    /// the whole step (pop, kind lookup, handler, `on_event`) between two
    /// `Instant` reads and hands the elapsed nanoseconds to
    /// [`Probe::on_event_kind`]. Pairing the reads around each sampled
    /// event — instead of attributing inter-sample gaps to the boundary
    /// event — keeps the per-kind estimate proportional to per-kind
    /// *cost*, not per-kind count. `KINDED` is an associated const, so
    /// for [`NoProbe`] every branch here folds away.
    pub fn step(&mut self) -> Option<SimTime> {
        let t0 = if P::KINDED && self.probe.sample_due() {
            Some(Instant::now())
        } else {
            None
        };
        let (at, event) = self.queue.pop()?;
        self.processed += 1;
        let kind = if P::KINDED { W::event_kind(&event) } else { 0 };
        self.world.handle(at, event, &mut self.queue);
        self.probe.on_event(at, self.queue.len());
        if P::KINDED {
            let sampled_ns = t0.map(|t| t.elapsed().as_nanos() as u64);
            self.probe.on_event_kind(kind, sampled_ns);
        }
        Some(at)
    }

    /// Runs until the queue is empty.
    pub fn run(&mut self) {
        while self.step().is_some() {}
    }

    /// Runs until the queue is empty or the next event would occur after
    /// `deadline` (events exactly at `deadline` are processed).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > deadline {
                break;
            }
            self.step();
        }
    }

    /// Runs while `keep_going` returns true (checked before each event) and
    /// events remain.
    pub fn run_while(&mut self, mut keep_going: impl FnMut(&W) -> bool) {
        while keep_going(&self.world) {
            if self.step().is_none() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CollectingProbe;

    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
            self.seen.push((now.as_nanos(), ev));
            if ev == 1 {
                // Handler-scheduled events interleave correctly.
                queue.schedule_after(SimDuration::from_nanos(5), 100);
            }
        }
    }

    fn engine() -> Engine<Recorder> {
        Engine::new(Recorder { seen: Vec::new() })
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e = engine();
        e.queue_mut().schedule_at(SimTime::from_nanos(30), 3);
        e.queue_mut().schedule_at(SimTime::from_nanos(10), 1);
        e.queue_mut().schedule_at(SimTime::from_nanos(20), 2);
        e.run();
        assert_eq!(e.world().seen, vec![(10, 1), (15, 100), (20, 2), (30, 3)]);
        assert_eq!(e.processed(), 4);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e = engine();
        // Start at 2 so no event triggers the handler's follow-up schedule.
        for ev in 2..102 {
            e.queue_mut().schedule_at(SimTime::from_nanos(7), ev);
        }
        e.run();
        let expected: Vec<(u64, u32)> = (2..102).map(|ev| (7, ev)).collect();
        assert_eq!(e.world().seen, expected);
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut e = engine();
        for t in [5u64, 10, 15, 20] {
            e.queue_mut().schedule_at(SimTime::from_nanos(t), t as u32);
        }
        e.run_until(SimTime::from_nanos(15));
        assert_eq!(e.world().seen, vec![(5, 5), (10, 10), (15, 15)]);
        assert_eq!(e.queue_mut().len(), 1);
        // The clock does not advance past the last processed event.
        assert_eq!(e.now(), SimTime::from_nanos(15));
    }

    #[test]
    fn run_while_respects_predicate() {
        let mut e = engine();
        for t in 1..=10u64 {
            e.queue_mut().schedule_at(SimTime::from_nanos(t), 0);
        }
        e.run_while(|w| w.seen.len() < 4);
        assert_eq!(e.world().seen.len(), 4);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics_in_debug() {
        let mut e = engine();
        e.queue_mut().schedule_at(SimTime::from_nanos(50), 1);
        e.step();
        e.queue_mut().schedule_at(SimTime::from_nanos(10), 2);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn scheduling_in_the_past_clamps_to_now() {
        // Regression guard: release builds must not let a past timestamp
        // fire out of order (it would corrupt the trace timeline).
        let mut e = engine();
        e.queue_mut().schedule_at(SimTime::from_nanos(50), 1);
        e.step();
        e.queue_mut().schedule_at(SimTime::from_nanos(10), 2);
        e.run();
        // The late event fired at now (50), not in the causal past.
        assert_eq!(e.world().seen, vec![(50, 1), (50, 2), (55, 100)]);
    }

    #[test]
    fn empty_queue_reports_exhaustion() {
        let mut e = engine();
        assert!(e.step().is_none());
        assert!(e.queue_mut().is_empty());
        assert_eq!(e.queue_mut().peek_time(), None);
    }

    #[test]
    fn queue_tracks_high_water_mark() {
        let mut q: EventQueue<u32> = EventQueue::new();
        assert_eq!(q.high_water(), 0);
        for t in [10u64, 20, 30] {
            q.schedule_at(SimTime::from_nanos(t), 0);
        }
        assert_eq!(q.high_water(), 3);
        let _ = q.pop();
        let _ = q.pop();
        q.schedule_at(SimTime::from_nanos(40), 0);
        // Draining and refilling below the peak does not move the mark.
        assert_eq!(q.high_water(), 3);
        // Churn counters: 4 schedules, 2 pops, difference is pending.
        assert_eq!(q.pushes(), 4);
        assert_eq!(q.pops(), 2);
        assert_eq!((q.pushes() - q.pops()) as usize, q.len());
    }

    #[test]
    fn tie_storm_interleaved_with_pops_preserves_insertion_order() {
        // Many events at ONE timestamp, with pops interleaved between the
        // schedules: insertion order must survive the heap churn exactly.
        let t = SimTime::from_nanos(100);
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut popped = Vec::new();
        let mut next_id = 0u32;
        // Alternate bursts of schedules with partial drains.
        for burst in 0..20 {
            for _ in 0..burst + 1 {
                q.schedule_at(t, next_id);
                next_id += 1;
            }
            for _ in 0..burst / 2 {
                let (at, id) = q.pop().unwrap();
                assert_eq!(at, t);
                popped.push(id);
            }
        }
        while let Some((_, id)) = q.pop() {
            popped.push(id);
        }
        let expected: Vec<u32> = (0..next_id).collect();
        assert_eq!(popped, expected, "tie-storm must pop in insertion order");
    }

    #[test]
    fn slab_reuses_slots_after_heavy_churn() {
        // Push/pop far more events than are ever simultaneously pending:
        // the payload slab must stay at the high-water size, recycling
        // freed slots instead of growing without bound.
        let mut q: EventQueue<u64> = EventQueue::new();
        for round in 0..1_000u64 {
            for i in 0..4 {
                q.schedule_at(SimTime::from_nanos(round * 10 + i), round * 4 + i);
            }
            for _ in 0..4 {
                let _ = q.pop().unwrap();
            }
        }
        assert_eq!(q.pushes(), 4_000);
        assert_eq!(q.pops(), 4_000);
        assert_eq!(q.high_water(), 4);
        assert!(
            q.slab.len() <= q.high_water(),
            "slab grew to {} slots with a high-water of {}",
            q.slab.len(),
            q.high_water()
        );
        assert_eq!(q.free.len(), q.slab.len(), "all slots free after drain");
    }

    #[test]
    fn reset_clock_moves_empty_queue_clock_both_ways() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(50), 1);
        let _ = q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(50));
        q.reset_clock(SimTime::from_nanos(10));
        assert_eq!(q.now(), SimTime::from_nanos(10));
        // schedule_after is now relative to the reset clock.
        q.schedule_after(SimDuration::from_nanos(5), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(15)));
    }

    #[test]
    #[should_panic(expected = "pending events")]
    fn reset_clock_rejects_pending_events() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(50), 1);
        q.reset_clock(SimTime::from_nanos(10));
    }

    #[test]
    fn probe_observes_every_event_and_profile_matches() {
        let mut e = Engine::with_probe(Recorder { seen: Vec::new() }, CollectingProbe::new());
        e.queue_mut().schedule_at(SimTime::from_nanos(10), 1);
        e.queue_mut().schedule_at(SimTime::from_nanos(20), 2);
        e.run();
        // 1 schedules a follow-up, so three events total.
        assert_eq!(e.probe().events, 3);
        assert!(e.probe().max_queue_depth >= 1);
        let profile = e.profile();
        assert_eq!(profile.events, 3);
        assert_eq!(profile.queue_high_water, 2);
        assert_eq!(profile.pushes, 3);
        assert_eq!(profile.pops, 3);
        assert!(profile.wall_seconds >= 0.0);
        let (world, probe) = e.into_parts();
        assert_eq!(world.seen.len(), 3);
        assert_eq!(probe.events, 3);
    }
}
