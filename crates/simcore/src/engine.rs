//! The discrete-event engine: a calendar queue plus a driver loop.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// The simulated world: all mutable state of a simulation plus the handler
/// that advances it one event at a time.
///
/// The engine owns a `World` and feeds it events in non-decreasing time
/// order. Handlers schedule follow-up events through the [`EventQueue`]
/// passed to [`World::handle`].
pub trait World: Sized {
    /// The event type processed by this world.
    type Event;

    /// Processes one event occurring at `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);
}

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event
        // (breaking ties by insertion order) on top.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A future-event list ordered by `(time, insertion sequence)`.
///
/// Ties in event time are broken by insertion order, which makes simulations
/// fully deterministic for a fixed seed.
///
/// # Examples
///
/// ```
/// use netrs_simcore::{EventQueue, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_at(SimTime::from_nanos(20), "later");
/// q.schedule_at(SimTime::from_nanos(10), "sooner");
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t.as_nanos(), ev), (10, "sooner"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently
    /// popped event.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time — an event in the
    /// past indicates a logic error in the caller.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule an event in the past: at={at}, now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` at `now() + delay`.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Returns the timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }
}

/// Drives a [`World`] through its event queue.
///
/// See the [crate-level documentation](crate) for a complete example.
pub struct Engine<W: World> {
    world: W,
    queue: EventQueue<W::Event>,
    processed: u64,
}

impl<W: World> Engine<W> {
    /// Creates an engine around `world` with an empty queue at time zero.
    pub fn new(world: W) -> Self {
        Engine {
            world,
            queue: EventQueue::new(),
            processed: 0,
        }
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total number of events processed so far.
    #[must_use]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Shared access to the world state.
    pub fn world(&self) -> &W {
        &self.world
    }

    /// Exclusive access to the world state.
    pub fn world_mut(&mut self) -> &mut W {
        &mut self.world
    }

    /// Exclusive access to the event queue, e.g. to seed initial events.
    pub fn queue_mut(&mut self) -> &mut EventQueue<W::Event> {
        &mut self.queue
    }

    /// Consumes the engine and returns the world.
    pub fn into_world(self) -> W {
        self.world
    }

    /// Processes a single event. Returns the time of the processed event, or
    /// `None` if the queue was empty.
    pub fn step(&mut self) -> Option<SimTime> {
        let (at, event) = self.queue.pop()?;
        self.processed += 1;
        self.world.handle(at, event, &mut self.queue);
        Some(at)
    }

    /// Runs until the queue is empty.
    pub fn run(&mut self) {
        while self.step().is_some() {}
    }

    /// Runs until the queue is empty or the next event would occur after
    /// `deadline` (events exactly at `deadline` are processed).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(next) = self.queue.peek_time() {
            if next > deadline {
                break;
            }
            self.step();
        }
    }

    /// Runs while `keep_going` returns true (checked before each event) and
    /// events remain.
    pub fn run_while(&mut self, mut keep_going: impl FnMut(&W) -> bool) {
        while keep_going(&self.world) {
            if self.step().is_none() {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(u64, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: SimTime, ev: u32, queue: &mut EventQueue<u32>) {
            self.seen.push((now.as_nanos(), ev));
            if ev == 1 {
                // Handler-scheduled events interleave correctly.
                queue.schedule_after(SimDuration::from_nanos(5), 100);
            }
        }
    }

    fn engine() -> Engine<Recorder> {
        Engine::new(Recorder { seen: Vec::new() })
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut e = engine();
        e.queue_mut().schedule_at(SimTime::from_nanos(30), 3);
        e.queue_mut().schedule_at(SimTime::from_nanos(10), 1);
        e.queue_mut().schedule_at(SimTime::from_nanos(20), 2);
        e.run();
        assert_eq!(e.world().seen, vec![(10, 1), (15, 100), (20, 2), (30, 3)]);
        assert_eq!(e.processed(), 4);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut e = engine();
        // Start at 2 so no event triggers the handler's follow-up schedule.
        for ev in 2..102 {
            e.queue_mut().schedule_at(SimTime::from_nanos(7), ev);
        }
        e.run();
        let expected: Vec<(u64, u32)> = (2..102).map(|ev| (7, ev)).collect();
        assert_eq!(e.world().seen, expected);
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut e = engine();
        for t in [5u64, 10, 15, 20] {
            e.queue_mut().schedule_at(SimTime::from_nanos(t), t as u32);
        }
        e.run_until(SimTime::from_nanos(15));
        assert_eq!(e.world().seen, vec![(5, 5), (10, 10), (15, 15)]);
        assert_eq!(e.queue_mut().len(), 1);
        // The clock does not advance past the last processed event.
        assert_eq!(e.now(), SimTime::from_nanos(15));
    }

    #[test]
    fn run_while_respects_predicate() {
        let mut e = engine();
        for t in 1..=10u64 {
            e.queue_mut().schedule_at(SimTime::from_nanos(t), 0);
        }
        e.run_while(|w| w.seen.len() < 4);
        assert_eq!(e.world().seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_in_the_past_panics() {
        let mut e = engine();
        e.queue_mut().schedule_at(SimTime::from_nanos(50), 1);
        e.step();
        e.queue_mut().schedule_at(SimTime::from_nanos(10), 2);
    }

    #[test]
    fn empty_queue_reports_exhaustion() {
        let mut e = engine();
        assert!(e.step().is_none());
        assert!(e.queue_mut().is_empty());
        assert_eq!(e.queue_mut().peek_time(), None);
    }
}
