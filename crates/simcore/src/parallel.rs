//! True multi-threaded conservative-window execution over per-shard
//! worlds.
//!
//! [`ShardedEngine`](crate::ShardedEngine) interleaves shards
//! *sequentially* on one thread: one shared world, one global
//! earliest-head pick per event. [`ParallelShardedEngine`] removes the
//! shared world — each shard owns its **own** [`ParallelWorld`] instance
//! (an SPMD replica holding that shard's mutable state) — so the
//! in-window independence argument of conservative-lookahead PDES turns
//! into actual concurrency:
//!
//! ```text
//! per window:  [merge: deliver posts, pick t_min, publish horizon]
//!              [barrier]
//!              every shard drains its queue up to the horizon,
//!              same-shard emissions re-enter its own queue,
//!              cross-shard emissions buffer in a private post list
//!              [barrier]
//! ```
//!
//! # Determinism
//!
//! The schedule is a pure function of the event content, never of thread
//! timing:
//!
//! * within a shard, events run in the shard queue's `(time, seq)` order;
//! * shards are independent within a window (cross-shard emissions are
//!   *buffered*, not delivered), so the cross-shard interleaving of the
//!   drain phase is unobservable;
//! * the merge phase delivers all buffered posts in `(time, src_shard,
//!   src_seq)` order, so the destination queue's insertion order — and
//!   hence its tie-break — is a total order.
//!
//! Consequently a run with `threads = 1` executes the *identical*
//! schedule as a run with `threads = N`, and the output of any consumer
//! that folds per-shard state in canonical shard order is byte-identical
//! across thread counts **by construction**. Tests pin this.
//!
//! # Lookahead-contract violations
//!
//! A world that posts a cross-shard event closer than its declared
//! lookahead does not corrupt the destination timeline: the delivery is
//! clamped to the destination clock and counted in
//! [`ParallelShardedEngine::mailbox_late`] (same discipline as the
//! sequential [`Mailbox`](crate::Mailbox)).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use crate::engine::EventQueue;
use crate::shard::ShardId;
use crate::time::{SimDuration, SimTime};

/// One shard's slice of a simulation that can run in parallel.
///
/// Unlike [`ShardedWorld`](crate::ShardedWorld) — one world shared by
/// every shard — a `ParallelWorld` is instantiated **once per shard**
/// (SPMD): each instance owns the mutable state of its shard and treats
/// everything else as immutable construction data. Handlers therefore
/// need `&mut self` only for shard-local state, which is what makes the
/// drain phase safe to run concurrently.
pub trait ParallelWorld: Send {
    /// The event type.
    type Event: Send;

    /// Processes one event at `now`, scheduling follow-ups into `queue`.
    /// Events whose [`shard_of`](ParallelWorld::shard_of) is this shard
    /// re-enter the shard's own queue (and may still run inside the
    /// current window); all others are buffered for the next merge.
    fn handle(&mut self, now: SimTime, event: Self::Event, queue: &mut EventQueue<Self::Event>);

    /// The shard that owns `event`. Consulted on the **emitting** shard's
    /// instance, so it must depend only on the event and immutable data.
    fn shard_of(&self, event: &Self::Event) -> ShardId;

    /// Minimum cross-shard scheduling delay this world guarantees.
    fn lookahead(&self) -> SimDuration;
}

/// One cross-shard event buffered during a drain phase.
struct Post<E> {
    at: SimTime,
    src: u32,
    src_seq: u64,
    dest: u32,
    event: E,
}

/// Cache-line-padded per-shard state so adjacent shards' hot fields
/// never share a line (the queues/worlds allocate out-of-line, but the
/// mutexes and counters embedded here are written every window).
#[repr(align(128))]
struct Cell<W: ParallelWorld> {
    shard: u32,
    world: W,
    queue: EventQueue<W::Event>,
    /// Scratch queue handed to the handler; drained and routed after
    /// each event (same shard → own queue, cross shard → `posts`).
    outbox: EventQueue<W::Event>,
    posts: Vec<Post<W::Event>>,
    post_seq: u64,
    processed: u64,
    /// Wall-clock nanoseconds this shard spent draining (diagnostic
    /// only — never feeds back into the simulation schedule).
    busy_ns: u64,
}

impl<W: ParallelWorld> Cell<W> {
    /// Drains every in-window head event of this shard. `horizon_ns` is
    /// exclusive (`t < horizon`), except with zero lookahead where it is
    /// the inclusive window floor (`t <= t_min`).
    fn drain(&mut self, horizon_ns: u64, zero_lookahead: bool) {
        let t0 = Instant::now();
        while let Some(t) = self.queue.peek_time() {
            let due = if zero_lookahead {
                t.as_nanos() <= horizon_ns
            } else {
                t.as_nanos() < horizon_ns
            };
            if !due {
                break;
            }
            let (at, event) = self.queue.pop().expect("peeked head exists");
            self.outbox.reset_clock(at);
            self.world.handle(at, event, &mut self.outbox);
            while let Some((ts, ev)) = self.outbox.pop() {
                let dest = self.world.shard_of(&ev).0;
                if dest == self.shard {
                    self.queue.schedule_at(ts, ev);
                } else {
                    self.posts.push(Post {
                        at: ts,
                        src: self.shard,
                        src_seq: self.post_seq,
                        dest,
                        event: ev,
                    });
                    self.post_seq += 1;
                }
            }
            self.processed += 1;
        }
        self.busy_ns += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    }
}

/// Aggregate schedule statistics of a finished (or in-progress) run.
/// Every field is a pure function of the event schedule — independent of
/// thread count and wall-clock — so it is safe to surface in
/// deterministic run output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WindowStats {
    /// Conservative windows executed.
    pub windows: u64,
    /// Events processed across all shards.
    pub processed: u64,
    /// Cross-shard events buffered and merged.
    pub mailbox_posted: u64,
    /// Deliveries that violated the lookahead contract and were clamped
    /// to the destination shard's clock.
    pub mailbox_late: u64,
}

impl WindowStats {
    /// Mean events per window.
    #[must_use]
    pub fn events_per_window(&self) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            self.processed as f64 / self.windows as f64
        }
    }
}

/// Horizon sentinel published by the coordinator to stop the workers.
const DONE: u64 = u64::MAX;

/// Drives `N` per-shard [`ParallelWorld`] instances over a persistent
/// worker pool with two barriers per conservative window. See the
/// [module docs](self) for the protocol and determinism argument.
pub struct ParallelShardedEngine<W: ParallelWorld> {
    cells: Vec<Mutex<Cell<W>>>,
    lookahead: SimDuration,
    threads: usize,
    stats: WindowStats,
    delivered: u64,
}

impl<W: ParallelWorld> ParallelShardedEngine<W> {
    /// Creates an engine over one world instance per shard. `threads` is
    /// clamped to `[1, shards]`; shard `s` is statically assigned to
    /// worker `s % threads` (worker 0 is the calling thread).
    ///
    /// # Panics
    ///
    /// Panics when `worlds` is empty.
    pub fn new(worlds: Vec<W>, threads: usize) -> Self {
        assert!(!worlds.is_empty(), "need at least one shard world");
        let lookahead = worlds[0].lookahead();
        let threads = threads.clamp(1, worlds.len());
        let cells = worlds
            .into_iter()
            .enumerate()
            .map(|(s, world)| {
                Mutex::new(Cell {
                    shard: s as u32,
                    world,
                    queue: EventQueue::new(),
                    outbox: EventQueue::new(),
                    posts: Vec::new(),
                    post_seq: 0,
                    processed: 0,
                    busy_ns: 0,
                })
            })
            .collect();
        ParallelShardedEngine {
            cells,
            lookahead,
            threads,
            stats: WindowStats::default(),
            delivered: 0,
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> u32 {
        self.cells.len() as u32
    }

    /// Effective worker count (after clamping to the shard count).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Schedule statistics so far (thread-count-independent).
    #[must_use]
    pub fn stats(&self) -> WindowStats {
        self.stats
    }

    /// Cross-shard events posted so far.
    #[must_use]
    pub fn mailbox_posted(&self) -> u64 {
        self.stats.mailbox_posted
    }

    /// Clamped late deliveries so far.
    #[must_use]
    pub fn mailbox_late(&self) -> u64 {
        self.stats.mailbox_late
    }

    /// Per-shard wall-clock busy nanoseconds spent in drain phases
    /// (diagnostic; varies run-to-run with the host, unlike
    /// [`stats`](Self::stats)).
    #[must_use]
    pub fn busy_ns(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.lock().expect("cell lock").busy_ns)
            .collect()
    }

    /// Latest simulation instant any shard reached (the run's end time
    /// once the engine drains).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.cells
            .iter()
            .map(|c| c.lock().expect("cell lock").queue.now())
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Per-shard processed-event counts.
    #[must_use]
    pub fn processed_per_shard(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.lock().expect("cell lock").processed)
            .collect()
    }

    /// Consumes the engine, returning the shard worlds in shard order.
    #[must_use]
    pub fn into_worlds(self) -> Vec<W> {
        self.cells
            .into_iter()
            .map(|c| c.into_inner().expect("cell lock").world)
            .collect()
    }

    /// SPMD priming: runs `prime(shard, world, queue)` for every shard
    /// with all clocks at zero, keeping only the events that belong to
    /// that shard (each replica primes the *full* schedule and the
    /// engine filters — foreign events are dropped here and primed by
    /// their owning shard instead).
    pub fn prime_each(&mut self, mut prime: impl FnMut(u32, &mut W, &mut EventQueue<W::Event>)) {
        debug_assert_eq!(self.stats.processed, 0, "prime_each after events ran");
        for cell in &self.cells {
            let cell = &mut *cell.lock().expect("cell lock");
            prime(cell.shard, &mut cell.world, &mut cell.outbox);
            while let Some((at, ev)) = cell.outbox.pop() {
                if cell.world.shard_of(&ev).0 == cell.shard {
                    cell.queue.schedule_at(at, ev);
                }
            }
            // Priming popped the scratch clock forward; rewind for the run.
            cell.outbox.reset_clock(SimTime::ZERO);
        }
    }

    /// Merge phase: delivers every buffered post in `(time, src, src_seq)`
    /// order, then computes the next window's horizon. Returns the horizon
    /// in nanoseconds, or [`DONE`] when every queue is drained.
    fn merge_and_pick(&mut self) -> u64 {
        let mut posts: Vec<Post<W::Event>> = Vec::new();
        for cell in &self.cells {
            posts.append(&mut cell.lock().expect("cell lock").posts);
        }
        posts.sort_by_key(|p| (p.at, p.src, p.src_seq));
        self.stats.mailbox_posted += posts.len() as u64;
        for p in posts {
            let cell = &mut *self.cells[p.dest as usize].lock().expect("cell lock");
            let mut at = p.at;
            if at < cell.queue.now() {
                self.stats.mailbox_late += 1;
                at = cell.queue.now();
            }
            cell.queue.schedule_at(at, p.event);
            self.delivered += 1;
        }
        let t_min = self
            .cells
            .iter()
            .filter_map(|c| c.lock().expect("cell lock").queue.peek_time())
            .min();
        let Some(t_min) = t_min else { return DONE };
        self.stats.windows += 1;
        t_min
            .as_nanos()
            .saturating_add(self.lookahead.as_nanos())
            .min(DONE - 1)
    }

    /// Folds the per-cell processed counters into the aggregate stats.
    fn fold_processed(&mut self) {
        self.stats.processed = self
            .cells
            .iter()
            .map(|c| c.lock().expect("cell lock").processed)
            .sum();
    }

    /// Runs windows until every shard queue is drained.
    ///
    /// With `threads == 1` the identical schedule runs inline on the
    /// calling thread — no pool, no barriers — which is what makes the
    /// single-thread/multi-thread byte-identity hold by construction.
    pub fn run(&mut self) {
        let zero_la = self.lookahead == SimDuration::ZERO;
        if self.threads == 1 {
            loop {
                let horizon = self.merge_and_pick();
                if horizon == DONE {
                    break;
                }
                for cell in &self.cells {
                    cell.lock().expect("cell lock").drain(horizon, zero_la);
                }
            }
            self.fold_processed();
            return;
        }

        let threads = self.threads;
        let lookahead_zero = zero_la;
        let horizon = AtomicU64::new(0);
        // Two barriers so the merge phase (coordinator alone) never
        // overlaps a drain phase (all workers).
        let start = Barrier::new(threads);
        let end = Barrier::new(threads);
        let cells = &self.cells;
        let stats = Mutex::new((WindowStats::default(), 0u64));

        crossbeam::thread::scope(|scope| {
            for w in 1..threads {
                let horizon = &horizon;
                let start = &start;
                let end = &end;
                scope.spawn(move |_| loop {
                    start.wait();
                    let h = horizon.load(Ordering::Acquire);
                    if h == DONE {
                        break;
                    }
                    for cell in cells.iter().skip(w).step_by(threads) {
                        cell.lock().expect("cell lock").drain(h, lookahead_zero);
                    }
                    end.wait();
                });
            }
            // Coordinator doubles as worker 0. Borrow-splitting: the
            // merge needs `&mut self`-ish access, so run it through a
            // local closure over the shared pieces instead.
            let mut local = WindowStats::default();
            let mut delivered = 0u64;
            loop {
                let h = merge_phase(cells, self.lookahead, &mut local, &mut delivered);
                horizon.store(h, Ordering::Release);
                start.wait();
                if h == DONE {
                    break;
                }
                for cell in cells.iter().step_by(threads) {
                    cell.lock().expect("cell lock").drain(h, lookahead_zero);
                }
                end.wait();
            }
            *stats.lock().expect("stats lock") = (local, delivered);
        })
        .expect("worker thread panicked");

        let (local, delivered) = *stats.lock().expect("stats lock");
        self.stats.windows += local.windows;
        self.stats.mailbox_posted += local.mailbox_posted;
        self.stats.mailbox_late += local.mailbox_late;
        self.delivered += delivered;
        self.fold_processed();
    }
}

/// The merge phase, factored free of `&mut self` so the coordinator can
/// run it inside the worker scope (the cells are only ever touched under
/// their mutexes, and the barriers guarantee no worker holds one here).
fn merge_phase<W: ParallelWorld>(
    cells: &[Mutex<Cell<W>>],
    lookahead: SimDuration,
    stats: &mut WindowStats,
    delivered: &mut u64,
) -> u64 {
    let mut posts: Vec<Post<W::Event>> = Vec::new();
    for cell in cells {
        posts.append(&mut cell.lock().expect("cell lock").posts);
    }
    posts.sort_by_key(|p| (p.at, p.src, p.src_seq));
    stats.mailbox_posted += posts.len() as u64;
    for p in posts {
        let cell = &mut *cells[p.dest as usize].lock().expect("cell lock");
        let mut at = p.at;
        if at < cell.queue.now() {
            stats.mailbox_late += 1;
            at = cell.queue.now();
        }
        cell.queue.schedule_at(at, p.event);
        *delivered += 1;
    }
    let t_min = cells
        .iter()
        .filter_map(|c| c.lock().expect("cell lock").queue.peek_time())
        .min();
    let Some(t_min) = t_min else { return DONE };
    stats.windows += 1;
    t_min
        .as_nanos()
        .saturating_add(lookahead.as_nanos())
        .min(DONE - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SPMD toy: each shard instance logs only its own events and
    /// forwards ring-wise with >= lookahead delay.
    struct Toy {
        shards: u32,
        lookahead_ns: u64,
        log: Vec<(u64, u32, u32)>,
    }

    type TEv = (u32, u32, u32); // (dest shard, id, hops left)

    impl ParallelWorld for Toy {
        type Event = TEv;
        fn handle(&mut self, now: SimTime, ev: TEv, queue: &mut EventQueue<TEv>) {
            let (shard, id, hops) = ev;
            self.log.push((now.as_nanos(), shard, id));
            if hops > 0 {
                let next = (shard + 1) % self.shards;
                let delay = SimDuration::from_nanos(self.lookahead_ns + u64::from(id % 3));
                queue.schedule_after(delay, (next, id, hops - 1));
            }
        }
        fn shard_of(&self, ev: &TEv) -> ShardId {
            ShardId(ev.0)
        }
        fn lookahead(&self) -> SimDuration {
            SimDuration::from_nanos(self.lookahead_ns)
        }
    }

    fn toys(shards: u32, lookahead_ns: u64) -> Vec<Toy> {
        (0..shards)
            .map(|_| Toy {
                shards,
                lookahead_ns,
                log: Vec::new(),
            })
            .collect()
    }

    type ToyLog = Vec<Vec<(u64, u32, u32)>>;

    fn run_toy(shards: u32, threads: usize) -> (ToyLog, WindowStats) {
        let mut e = ParallelShardedEngine::new(toys(shards, 10), threads);
        e.prime_each(|_, _, q| {
            // Every shard primes the full schedule; the engine keeps
            // only its own events (SPMD filtering).
            for id in 0..8u32 {
                q.schedule_at(SimTime::from_nanos(u64::from(id % 4)), (id % shards, id, 5));
            }
        });
        e.run();
        let stats = e.stats();
        (e.into_worlds().into_iter().map(|w| w.log).collect(), stats)
    }

    #[test]
    fn threads_do_not_change_the_schedule() {
        let (one, s1) = run_toy(4, 1);
        for threads in [2, 3, 4] {
            let (many, sn) = run_toy(4, threads);
            assert_eq!(one, many, "threads={threads} diverged from threads=1");
            assert_eq!(s1, sn, "window stats must be thread-independent");
        }
        assert!(s1.mailbox_posted > 0, "ring hops must cross shards");
        assert_eq!(s1.mailbox_late, 0, "toy honours its lookahead");
        assert_eq!(s1.processed, 8 * 6);
        assert!(s1.events_per_window() > 0.0);
    }

    #[test]
    fn tie_storm_straddling_window_boundary_is_deterministic() {
        // Many identical timestamps, on every shard, placed exactly at
        // what becomes a window boundary: delivery order must still be
        // the (time, src, src_seq) total order, regardless of threads.
        let run = |threads: usize| {
            let mut e = ParallelShardedEngine::new(toys(4, 10), threads);
            e.prime_each(|_, _, q| {
                for id in 0..32u32 {
                    // All at t=10 (== the first horizon for t_min=0 is
                    // 10, so these straddle the boundary), plus seeds at
                    // t=0 on every shard.
                    q.schedule_at(SimTime::ZERO, (id % 4, id, 1));
                    q.schedule_at(SimTime::from_nanos(10), (id % 4, id + 100, 1));
                }
            });
            e.run();
            let stats = e.stats();
            (
                e.into_worlds()
                    .into_iter()
                    .map(|w| w.log)
                    .collect::<Vec<_>>(),
                stats,
            )
        };
        let (a, sa) = run(1);
        let (b, sb) = run(4);
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn lookahead_violation_clamps_counts_and_completes() {
        /// Declares 1000ns lookahead but forwards cross-shard at 1ns.
        struct Cheater {
            log: Vec<u64>,
        }
        impl ParallelWorld for Cheater {
            type Event = (u32, u32);
            fn handle(&mut self, now: SimTime, ev: (u32, u32), q: &mut EventQueue<(u32, u32)>) {
                self.log.push(now.as_nanos());
                if ev.1 > 0 {
                    q.schedule_after(SimDuration::from_nanos(1), (1 - ev.0, ev.1 - 1));
                }
            }
            fn shard_of(&self, ev: &(u32, u32)) -> ShardId {
                ShardId(ev.0)
            }
            fn lookahead(&self) -> SimDuration {
                SimDuration::from_nanos(1000)
            }
        }
        for threads in [1, 2] {
            let mut e = ParallelShardedEngine::new(
                vec![Cheater { log: Vec::new() }, Cheater { log: Vec::new() }],
                threads,
            );
            e.prime_each(|_, _, q| {
                q.schedule_at(SimTime::from_nanos(500), (1, 0));
                q.schedule_at(SimTime::ZERO, (0, 4));
            });
            e.run();
            assert_eq!(e.stats().processed, 6);
            assert!(e.mailbox_late() > 0, "late deliveries must be counted");
        }
    }

    #[test]
    fn single_shard_runs_without_mailbox_traffic() {
        let mut e = ParallelShardedEngine::new(toys(1, 10), 8);
        assert_eq!(e.threads(), 1, "threads clamp to the shard count");
        e.prime_each(|_, _, q| {
            for id in 0..4u32 {
                q.schedule_at(SimTime::from_nanos(u64::from(id)), (0, id, 3));
            }
        });
        e.run();
        assert_eq!(e.mailbox_posted(), 0);
        assert_eq!(e.stats().processed, 16);
    }

    #[test]
    fn busy_and_processed_per_shard_have_one_entry_per_shard() {
        let (_, _) = run_toy(3, 2);
        let mut e = ParallelShardedEngine::new(toys(3, 10), 2);
        e.prime_each(|_, _, q| {
            for id in 0..6u32 {
                q.schedule_at(SimTime::ZERO, (id % 3, id, 2));
            }
        });
        e.run();
        assert_eq!(e.busy_ns().len(), 3);
        assert_eq!(
            e.processed_per_shard().iter().sum::<u64>(),
            e.stats().processed
        );
    }
}
