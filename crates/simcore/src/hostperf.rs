//! Host-performance observability: per-event-kind wall-clock attribution.
//!
//! [`PerfProbe`] is a kinded [`Probe`] that watches the simulator run on
//! the *host* machine — where sim-time telemetry (traces, device stats,
//! control streams) watches the simulated system. It records per-kind
//! dispatch counts for every event, samples wall-clock step durations at
//! a configurable stride so the overhead stays bounded, and keeps a
//! log2-bucketed histogram of post-event queue depths.
//!
//! The timing design matters: the engine brackets *whole sampled steps*
//! between two `Instant` reads and the per-kind total is estimated as
//! `mean(sampled step time for kind) × count(kind)`. Attributing
//! inter-sample gaps to the boundary event instead would weight kinds by
//! how *often* they fire, not what they *cost*.

use crate::time::SimTime;
use crate::trace::Probe;

/// Number of log2 queue-depth buckets kept by [`PerfProbe`]: bucket `i`
/// counts events whose post-handler pending-queue depth `d` satisfied
/// `floor(log2(max(d, 1))) == i`, i.e. `d` in `[2^i, 2^(i+1))` (bucket 0
/// also holds depth 0). 32 buckets cover any queue that fits in memory.
pub const DEPTH_BUCKETS: usize = 32;

/// Per-event-kind tallies accumulated by a [`PerfProbe`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindStats {
    /// Kind name, from [`World::event_kinds`](crate::World::event_kinds).
    pub name: &'static str,
    /// Events of this kind processed.
    pub count: u64,
    /// Events of this kind whose step was wall-clock timed.
    pub sampled: u64,
    /// Total measured nanoseconds across the sampled steps.
    pub sampled_ns: u64,
}

impl KindStats {
    /// Estimated total self-time in nanoseconds for this kind across the
    /// whole run: the mean sampled step time scaled up to the full count.
    /// Zero when the kind was never sampled.
    #[must_use]
    pub fn est_total_ns(&self) -> u64 {
        if self.sampled == 0 {
            0
        } else {
            (u128::from(self.sampled_ns) * u128::from(self.count) / u128::from(self.sampled)) as u64
        }
    }
}

/// End-of-run snapshot of everything a [`PerfProbe`] observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfReport {
    /// Sampling stride: every `stride`-th step was wall-clock timed.
    pub stride: u32,
    /// Per-kind tallies, indexed like the world's `event_kinds()`.
    pub kinds: Vec<KindStats>,
    /// Log2 histogram of post-event queue depths (see [`DEPTH_BUCKETS`]).
    pub depth_hist: [u64; DEPTH_BUCKETS],
}

impl PerfReport {
    /// Total events across all kinds.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.kinds.iter().map(|k| k.count).sum()
    }

    /// Sum of per-kind estimated self-times: the portion of the run's
    /// wall-clock the attribution accounts for.
    #[must_use]
    pub fn attributed_ns(&self) -> u64 {
        self.kinds.iter().map(KindStats::est_total_ns).sum()
    }
}

/// A kinded probe: per-event-kind counts, strided wall-clock sampling,
/// and a queue-depth histogram.
///
/// Attach with [`Engine::with_probe`](crate::Engine::with_probe); the
/// probe only observes, so a profiled run's simulated timeline is
/// byte-identical to an unprofiled one.
#[derive(Debug, Clone)]
pub struct PerfProbe {
    kinds: Vec<KindStats>,
    stride: u32,
    /// Steps left until the next sample; when it hits zero the step is
    /// timed and the countdown restarts at `stride - 1`.
    until_sample: u32,
    depth_hist: [u64; DEPTH_BUCKETS],
}

impl PerfProbe {
    /// Default sampling stride: one step in seven is timed. A small prime
    /// avoids resonating with periodic event cadences, and at ~2×25 ns
    /// per clock read against ~200 ns events keeps overhead around 3–4%.
    pub const DEFAULT_STRIDE: u32 = 7;

    /// Creates a probe for a world with the given kind names (usually
    /// `W::event_kinds()`). `stride` of N samples every Nth step; it is
    /// clamped to at least 1 (sample every step).
    #[must_use]
    pub fn new(kind_names: &'static [&'static str], stride: u32) -> Self {
        PerfProbe {
            kinds: kind_names
                .iter()
                .map(|name| KindStats {
                    name,
                    count: 0,
                    sampled: 0,
                    sampled_ns: 0,
                })
                .collect(),
            stride: stride.max(1),
            until_sample: 0,
            depth_hist: [0; DEPTH_BUCKETS],
        }
    }

    /// The sampling stride in effect.
    #[must_use]
    pub fn stride(&self) -> u32 {
        self.stride
    }

    /// Snapshot of everything observed so far.
    #[must_use]
    pub fn report(&self) -> PerfReport {
        PerfReport {
            stride: self.stride,
            kinds: self.kinds.clone(),
            depth_hist: self.depth_hist,
        }
    }
}

impl Probe for PerfProbe {
    const KINDED: bool = true;

    fn on_event(&mut self, _now: SimTime, queue_depth: usize) {
        let bucket = (usize::BITS - 1 - queue_depth.max(1).leading_zeros()) as usize;
        self.depth_hist[bucket.min(DEPTH_BUCKETS - 1)] += 1;
    }

    fn sample_due(&mut self) -> bool {
        if self.until_sample == 0 {
            self.until_sample = self.stride - 1;
            true
        } else {
            self.until_sample -= 1;
            false
        }
    }

    fn on_event_kind(&mut self, kind: u32, sampled_ns: Option<u64>) {
        let slot = &mut self.kinds[kind as usize];
        slot.count += 1;
        if let Some(ns) = sampled_ns {
            slot.sampled += 1;
            slot.sampled_ns += ns;
        }
    }
}

/// Peak resident-set size of the current process in kilobytes, read from
/// `/proc/self/status` (`VmHWM`). Returns 0 on platforms without procfs.
#[must_use]
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|status| {
            status.lines().find_map(|line| {
                line.strip_prefix("VmHWM:")?
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EventQueue, World};
    use crate::time::{SimDuration, SimTime};

    /// A toy kinded world: `Tick` events reschedule themselves a fixed
    /// number of times and spawn one `Tock` each.
    struct Clockwork {
        ticks_left: u32,
    }

    #[derive(Debug)]
    enum Ev {
        Tick,
        Tock,
    }

    impl World for Clockwork {
        type Event = Ev;

        fn handle(&mut self, _now: SimTime, ev: Ev, queue: &mut EventQueue<Ev>) {
            if let Ev::Tick = ev {
                queue.schedule_after(SimDuration::from_nanos(3), Ev::Tock);
                if self.ticks_left > 0 {
                    self.ticks_left -= 1;
                    queue.schedule_after(SimDuration::from_nanos(10), Ev::Tick);
                }
            }
        }

        fn event_kinds() -> &'static [&'static str] {
            &["Tick", "Tock"]
        }

        fn event_kind(event: &Ev) -> u32 {
            match event {
                Ev::Tick => 0,
                Ev::Tock => 1,
            }
        }
    }

    #[test]
    fn perf_probe_counts_every_event_by_kind() {
        let probe = PerfProbe::new(Clockwork::event_kinds(), 3);
        let mut e = Engine::with_probe(Clockwork { ticks_left: 99 }, probe);
        e.queue_mut().schedule_at(SimTime::ZERO, Ev::Tick);
        e.run();
        let report = e.probe().report();
        assert_eq!(report.kinds[0].name, "Tick");
        assert_eq!(report.kinds[0].count, 100);
        assert_eq!(report.kinds[1].name, "Tock");
        assert_eq!(report.kinds[1].count, 100);
        assert_eq!(report.total_events(), e.processed());
        // Stride 3 over 200 events: 67 samples (steps 0, 3, 6, ...).
        let sampled: u64 = report.kinds.iter().map(|k| k.sampled).sum();
        assert_eq!(sampled, 67);
        // The depth histogram saw every event.
        assert_eq!(report.depth_hist.iter().sum::<u64>(), 200);
    }

    #[test]
    fn stride_one_samples_every_step() {
        let probe = PerfProbe::new(Clockwork::event_kinds(), 1);
        let mut e = Engine::with_probe(Clockwork { ticks_left: 9 }, probe);
        e.queue_mut().schedule_at(SimTime::ZERO, Ev::Tick);
        e.run();
        let report = e.probe().report();
        for k in &report.kinds {
            assert_eq!(k.sampled, k.count, "stride 1 must time every {}", k.name);
        }
        // Every step was timed, so the attribution covers the loop.
        assert!(report.attributed_ns() > 0);
    }

    #[test]
    fn stride_zero_is_clamped_to_one() {
        let probe = PerfProbe::new(&["only"], 0);
        assert_eq!(probe.stride(), 1);
    }

    #[test]
    fn est_total_scales_sampled_mean_to_full_count() {
        let k = KindStats {
            name: "x",
            count: 1000,
            sampled: 10,
            sampled_ns: 250, // mean 25 ns
        };
        assert_eq!(k.est_total_ns(), 25_000);
        let never_sampled = KindStats {
            name: "y",
            count: 5,
            sampled: 0,
            sampled_ns: 0,
        };
        assert_eq!(never_sampled.est_total_ns(), 0);
    }

    #[test]
    fn peak_rss_is_nonzero_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }
}
