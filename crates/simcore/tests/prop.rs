//! Property-based tests for the simulation core.

use netrs_simcore::{Engine, EventQueue, Histogram, SimDuration, SimRng, SimTime, World, Zipf};
use proptest::prelude::*;

struct Collector {
    order: Vec<u64>,
}

impl World for Collector {
    type Event = u64;
    fn handle(&mut self, now: SimTime, _ev: u64, _q: &mut EventQueue<u64>) {
        self.order.push(now.as_nanos());
    }
}

proptest! {
    /// The engine always delivers events in non-decreasing time order,
    /// regardless of insertion order.
    #[test]
    fn events_always_in_time_order(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut engine = Engine::new(Collector { order: Vec::new() });
        for &t in &times {
            engine.queue_mut().schedule_at(SimTime::from_nanos(t), t);
        }
        engine.run();
        let order = &engine.world().order;
        prop_assert_eq!(order.len(), times.len());
        prop_assert!(order.windows(2).all(|w| w[0] <= w[1]));
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(order, &sorted);
    }

    /// Pop order equals a sorted `(at, seq)` reference model under
    /// arbitrary interleavings of schedules and pops. Each op is either
    /// a schedule at one of a few clustered times (forcing ties) or a
    /// pop; the queue must agree with a stable sort of the not-yet-
    /// popped schedules by `(time, insertion sequence)`.
    #[test]
    fn pop_order_matches_sorted_reference_model(
        ops in proptest::collection::vec((0u8..4, 0u64..8), 1..300),
    ) {
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut model: Vec<(u64, u64)> = Vec::new(); // (at, seq), sorted on pop
        let mut seq = 0u64;
        let mut popped = Vec::new();
        let mut expected = Vec::new();
        for &(op, slot) in &ops {
            if op == 0 && !model.is_empty() {
                // Reference: earliest (at, seq) not yet popped.
                let best = *model.iter().min().unwrap();
                model.retain(|&e| e != best);
                expected.push(best);
                let (at, id) = q.pop().unwrap();
                popped.push((at.as_nanos(), id));
            } else {
                // Cluster times into 8 slots at or after `now` so ties
                // are common and the past-schedule guard never trips.
                let at = q.now().as_nanos() + slot;
                q.schedule_at(SimTime::from_nanos(at), seq);
                model.push((at, seq));
                seq += 1;
            }
        }
        while let Some((at, id)) = q.pop() {
            let best = *model.iter().min().unwrap();
            model.retain(|&e| e != best);
            expected.push(best);
            popped.push((at.as_nanos(), id));
        }
        prop_assert!(model.is_empty());
        prop_assert_eq!(popped, expected);
    }

    /// Histogram quantiles are monotone in q, bracketed by min/max, and the
    /// quantization error of any quantile is below 1% relative.
    #[test]
    fn histogram_quantiles_are_sane(values in proptest::collection::vec(1u64..10_000_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record_nanos(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let mut last = 0u64;
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            let got = h.value_at_quantile(q).as_nanos();
            prop_assert!(got >= last, "quantiles must be monotone");
            last = got;
            prop_assert!(got >= *sorted.first().unwrap());
            prop_assert!(got <= *sorted.last().unwrap());
        }
        // Cross-check p50 against the exact order statistic.
        let exact = sorted[(values.len() - 1) / 2];
        let got = h.value_at_quantile(0.5).as_nanos();
        // The histogram returns a bucket upper bound >= the exact order
        // statistic it covers, within 1/128 relative error.
        prop_assert!(got as f64 >= exact as f64 * 0.99, "got {got}, exact {exact}");
        prop_assert!(got as f64 <= *sorted.last().unwrap() as f64 * (1.0 + 1.0 / 128.0));
    }

    /// Merging two histograms is equivalent to recording the union.
    #[test]
    fn histogram_merge_is_union(
        a in proptest::collection::vec(1u64..1_000_000, 0..200),
        b in proptest::collection::vec(1u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a { ha.record_nanos(v); hu.record_nanos(v); }
        for &v in &b { hb.record_nanos(v); hu.record_nanos(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.summary(), hu.summary());
    }

    /// Zipf samples always stay in the declared support.
    #[test]
    fn zipf_support(n in 1u64..100_000, s in 0.1f64..3.0, seed in any::<u64>()) {
        let zipf = Zipf::new(n, s);
        let mut rng = SimRng::from_seed(seed);
        for _ in 0..200 {
            let k = zipf.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// Exponential draws are positive and reproducible per seed.
    #[test]
    fn exp_draws_reproducible(seed in any::<u64>(), mean_us in 1u64..100_000) {
        let mean = SimDuration::from_micros(mean_us);
        let mut r1 = SimRng::from_seed(seed);
        let mut r2 = SimRng::from_seed(seed);
        for _ in 0..50 {
            let a = r1.exp_duration(mean);
            let b = r2.exp_duration(mean);
            prop_assert_eq!(a, b);
        }
    }
}
