//! The NetRS controller (§II, §III): plans RSNode placement, compiles
//! Replica Selection Plans into per-switch rules, and keeps the system
//! available through the Degraded-Replica-Selection exception mechanism.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use netrs_netdev::{NetRsRules, TorRules};
use netrs_topology::{FatTree, SwitchId, Tier};
use netrs_wire::{RsnodeId, SourceMarker};
use serde::{Deserialize, Serialize};

use crate::group::TrafficGroups;
use crate::plan::{PlacementProblem, PlanConstraints, PlanDiff, PlanSolveStats, PlanSolver, Rsp};
use crate::traffic::TrafficMatrix;

/// Controller configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct ControllerConfig {
    /// The placement constraints (capacities, hop budget, …).
    pub constraints: PlanConstraints,
}

/// The centralized NetRS controller.
///
/// The controller assigns every NetRS operator a unique positive
/// [`RsnodeId`] (we use `switch id + 1`, reserving 0 for "unset"),
/// periodically turns monitor statistics into a [`Rsp`], and compiles the
/// plan into the [`NetRsRules`] each switch executes.
#[derive(Debug, Clone)]
pub struct NetRsController {
    topo: FatTree,
    cfg: ControllerConfig,
    current: Rsp,
    failed: BTreeSet<SwitchId>,
    /// Traffic groups each failed operator held at failure time, so a
    /// later recovery can restore them (those still degraded).
    displaced: BTreeMap<SwitchId, Vec<u32>>,
}

impl NetRsController {
    /// Creates a controller for a topology.
    #[must_use]
    pub fn new(topo: FatTree, cfg: ControllerConfig) -> Self {
        NetRsController {
            topo,
            cfg,
            current: Rsp::default(),
            failed: BTreeSet::new(),
            displaced: BTreeMap::new(),
        }
    }

    /// The topology under control.
    #[must_use]
    pub fn topology(&self) -> &FatTree {
        &self.topo
    }

    /// The RSNode ID of the operator at a switch.
    #[must_use]
    pub fn rsnode_id_of(sw: SwitchId) -> RsnodeId {
        RsnodeId(u16::try_from(sw.0 + 1).expect("switch count fits RID width"))
    }

    /// The switch hosting an RSNode ID (inverse of
    /// [`NetRsController::rsnode_id_of`]); `None` for illegal/unset IDs.
    #[must_use]
    pub fn switch_of_rsnode(&self, rid: RsnodeId) -> Option<SwitchId> {
        if !rid.is_legal() || rid.0 == 0 {
            return None;
        }
        let sw = SwitchId(u32::from(rid.0) - 1);
        (sw.0 < self.topo.num_switches()).then_some(sw)
    }

    /// The source marker of a rack's ToR (pod, rack), as stamped on
    /// responses (§IV-D).
    #[must_use]
    pub fn marker_of_rack(&self, rack: u32) -> SourceMarker {
        let tor = SwitchId(rack);
        SourceMarker {
            pod: self.topo.pod_of_switch(tor).expect("tors have pods") as u16,
            rack: rack as u16,
        }
    }

    /// Computes and installs a new plan from traffic statistics,
    /// excluding failed operators. Returns the installed plan.
    pub fn plan(
        &mut self,
        groups: &TrafficGroups,
        traffic: &TrafficMatrix,
        solver: PlanSolver,
    ) -> &Rsp {
        let _ = self.plan_with_stats(groups, traffic, solver);
        &self.current
    }

    /// Like [`NetRsController::plan`], but also returns what the plan
    /// event changed ([`PlanDiff`] against the previously installed plan)
    /// and the solver-effort metrics, for the decision audit log.
    pub fn plan_with_stats(
        &mut self,
        groups: &TrafficGroups,
        traffic: &TrafficMatrix,
        solver: PlanSolver,
    ) -> (PlanDiff, PlanSolveStats) {
        let problem = PlacementProblem::new(&self.topo, groups, traffic, &self.cfg.constraints)
            .without_operators(self.failed.iter().copied());
        let (rsp, stats) = problem.solve_with_stats(solver);
        let diff = PlanDiff::between(&self.current, &rsp);
        self.current = rsp;
        (diff, stats)
    }

    /// Installs an externally produced plan (e.g. [`Rsp::tor_plan`] for
    /// the NetRS-ToR scheme).
    pub fn install(&mut self, rsp: Rsp) -> &Rsp {
        self.current = rsp;
        &self.current
    }

    /// The currently installed plan.
    #[must_use]
    pub fn current_plan(&self) -> &Rsp {
        &self.current
    }

    /// Marks an operator failed (§III-C(iii)) and degrades every traffic
    /// group currently assigned to it. Returns the affected groups. The
    /// caller should re-deploy rules afterwards; a later
    /// [`NetRsController::plan`] will avoid the operator entirely.
    pub fn on_operator_failure(&mut self, sw: SwitchId) -> Vec<u32> {
        self.failed.insert(sw);
        let affected: Vec<u32> = self
            .current
            .assignment
            .iter()
            .filter(|&(_, &op)| op == sw)
            .map(|(&g, _)| g)
            .collect();
        for &g in &affected {
            self.current.assignment.remove(&g);
            self.current.drs.insert(g);
            self.current.proven_optimal = false;
        }
        self.displaced.insert(sw, affected.clone());
        affected
    }

    /// Marks a failed operator recovered and restores the traffic groups
    /// it held at failure time, except those a re-plan has since
    /// reassigned elsewhere. Returns the restored groups; the caller
    /// should re-deploy rules (and rebuild operator state — the recovered
    /// RSNode starts with a fresh selector).
    pub fn on_operator_recovery(&mut self, sw: SwitchId) -> Vec<u32> {
        self.failed.remove(&sw);
        let mut restored = Vec::new();
        for g in self.displaced.remove(&sw).unwrap_or_default() {
            // Only groups still degraded come back; a re-plan may have
            // found them a different operator in the meantime.
            if self.current.drs.remove(&g) {
                self.current.assignment.insert(g, sw);
                self.current.proven_optimal = false;
                restored.push(g);
            }
        }
        restored
    }

    /// The set of operators marked failed.
    #[must_use]
    pub fn failed_operators(&self) -> &BTreeSet<SwitchId> {
        &self.failed
    }

    /// Handles an overloaded operator (§III-C(ii)): every traffic group
    /// currently assigned to it degrades to DRS, but — unlike a failure —
    /// the operator stays a candidate for future plans (load changes are
    /// transient). Returns the affected groups; the caller should
    /// re-deploy rules.
    pub fn on_operator_overload(&mut self, sw: SwitchId) -> Vec<u32> {
        let affected: Vec<u32> = self
            .current
            .assignment
            .iter()
            .filter(|&(_, &op)| op == sw)
            .map(|(&g, _)| g)
            .collect();
        for &g in &affected {
            self.current.assignment.remove(&g);
            self.current.drs.insert(g);
            self.current.proven_optimal = false;
        }
        affected
    }

    /// Compiles the installed plan into the NetRS rules of every switch.
    #[must_use]
    pub fn deploy(&self, groups: &TrafficGroups) -> HashMap<SwitchId, NetRsRules> {
        let mut rules: HashMap<SwitchId, NetRsRules> = self
            .topo
            .switches()
            .map(|sw| (sw, NetRsRules::switch(Self::rsnode_id_of(sw))))
            .collect();

        // ToR switches additionally carry group/RSNode/DRS/marker rules.
        for sw in self.topo.switches() {
            if self.topo.tier(sw) != Tier::Tor {
                continue;
            }
            let mut tor = TorRules {
                source_marker: self.marker_of_rack(sw.0),
                ..TorRules::default()
            };
            for info in groups.iter() {
                if info.tor != sw {
                    continue;
                }
                for &h in &info.hosts {
                    tor.group_of_host.insert(h.0, info.id);
                }
                if self.current.drs.contains(&info.id) {
                    tor.drs_groups.insert(info.id);
                } else if let Some(&op) = self.current.assignment.get(&info.id) {
                    tor.rsnode_of_group.insert(info.id, Self::rsnode_id_of(op));
                }
            }
            rules.insert(sw, NetRsRules::tor(Self::rsnode_id_of(sw), tor));
        }
        rules
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::TrafficGroups;
    use netrs_topology::HostId;

    fn controller() -> (NetRsController, TrafficGroups, TrafficMatrix) {
        let topo = FatTree::new(4).unwrap();
        let clients: Vec<HostId> = vec![HostId(0), HostId(1), HostId(4), HostId(12)];
        let servers: Vec<HostId> = (8..12).map(HostId).collect();
        let groups = TrafficGroups::rack_level(&topo, &clients);
        let rates: Vec<(HostId, f64)> = clients.iter().map(|&h| (h, 500.0)).collect();
        let traffic = TrafficMatrix::oracle(&topo, &groups, &rates, &servers);
        (
            NetRsController::new(topo, ControllerConfig::default()),
            groups,
            traffic,
        )
    }

    #[test]
    fn rsnode_ids_round_trip() {
        let (c, _, _) = controller();
        for sw in c.topology().switches() {
            let rid = NetRsController::rsnode_id_of(sw);
            assert!(rid.is_legal() && rid.0 > 0);
            assert_eq!(c.switch_of_rsnode(rid), Some(sw));
        }
        assert_eq!(c.switch_of_rsnode(RsnodeId::ILLEGAL), None);
        assert_eq!(c.switch_of_rsnode(RsnodeId(0)), None);
        assert_eq!(c.switch_of_rsnode(RsnodeId(999)), None);
    }

    #[test]
    fn plan_and_deploy_cover_all_switches_and_groups() {
        let (mut c, groups, traffic) = controller();
        let rsp = c.plan(&groups, &traffic, PlanSolver::default()).clone();
        assert_eq!(rsp.assignment.len(), groups.len());
        let rules = c.deploy(&groups);
        assert_eq!(rules.len() as u32, c.topology().num_switches());
        // Every group's ToR knows the group's hosts and RSNode.
        for info in groups.iter() {
            let tor_rules = rules[&info.tor].tor.as_ref().expect("tor rules");
            for &h in &info.hosts {
                assert_eq!(tor_rules.group_of_host[&h.0], info.id);
            }
            let rid = tor_rules.rsnode_of_group[&info.id];
            assert_eq!(
                c.switch_of_rsnode(rid),
                rsp.assignment.get(&info.id).copied()
            );
        }
        // Non-ToR switches carry no ToR rules.
        let agg = c.topology().agg(0, 0);
        assert!(rules[&agg].tor.is_none());
    }

    #[test]
    fn source_markers_match_topology() {
        let (c, _, _) = controller();
        let m = c.marker_of_rack(3);
        assert_eq!(m.rack, 3);
        assert_eq!(
            u32::from(m.pod),
            c.topology().pod_of_switch(SwitchId(3)).unwrap()
        );
    }

    #[test]
    fn operator_failure_degrades_its_groups() {
        let (mut c, groups, traffic) = controller();
        c.plan(&groups, &traffic, PlanSolver::default());
        let (&victim_group, &victim_op) = c
            .current_plan()
            .assignment
            .iter()
            .next()
            .expect("plan has assignments");
        let affected = c.on_operator_failure(victim_op);
        assert!(affected.contains(&victim_group));
        assert!(c.current_plan().drs.contains(&victim_group));
        assert!(!c.current_plan().assignment.contains_key(&victim_group));

        // Deployed rules now mark the group as DRS at its ToR.
        let rules = c.deploy(&groups);
        let info = groups.info(victim_group);
        let tor_rules = rules[&info.tor].tor.as_ref().unwrap();
        assert!(tor_rules.drs_groups.contains(&victim_group));
        assert!(!tor_rules.rsnode_of_group.contains_key(&victim_group));

        // A re-plan avoids the failed operator.
        let rsp = c.plan(&groups, &traffic, PlanSolver::default()).clone();
        assert!(!rsp.rsnodes().contains(&victim_op));
        assert!(rsp.assignment.contains_key(&victim_group), "group recovers");
    }

    #[test]
    fn operator_recovery_restores_displaced_groups() {
        let (mut c, groups, traffic) = controller();
        c.plan(&groups, &traffic, PlanSolver::default());
        let (&victim_group, &victim_op) = c.current_plan().assignment.iter().next().unwrap();
        c.on_operator_failure(victim_op);
        assert!(c.current_plan().drs.contains(&victim_group));

        let restored = c.on_operator_recovery(victim_op);
        assert!(restored.contains(&victim_group));
        assert!(c.failed_operators().is_empty());
        assert_eq!(
            c.current_plan().assignment.get(&victim_group),
            Some(&victim_op)
        );
        assert!(!c.current_plan().drs.contains(&victim_group));

        // Recovering again (or an unknown switch) is a no-op.
        assert!(c.on_operator_recovery(victim_op).is_empty());
        assert!(c.on_operator_recovery(SwitchId(999)).is_empty());
    }

    #[test]
    fn recovery_skips_groups_a_replan_reassigned() {
        let (mut c, groups, traffic) = controller();
        c.plan(&groups, &traffic, PlanSolver::default());
        let (&victim_group, &victim_op) = c.current_plan().assignment.iter().next().unwrap();
        c.on_operator_failure(victim_op);
        // A re-plan finds the degraded group a new home.
        c.plan(&groups, &traffic, PlanSolver::default());
        assert!(c.current_plan().assignment.contains_key(&victim_group));
        let restored = c.on_operator_recovery(victim_op);
        assert!(
            !restored.contains(&victim_group),
            "reassigned groups stay where the re-plan put them"
        );
    }

    #[test]
    fn overload_degrades_but_does_not_exclude() {
        let (mut c, groups, traffic) = controller();
        c.plan(&groups, &traffic, PlanSolver::default());
        let (&group, &op) = c.current_plan().assignment.iter().next().unwrap();
        let affected = c.on_operator_overload(op);
        assert!(affected.contains(&group));
        assert!(c.current_plan().drs.contains(&group));
        assert!(c.failed_operators().is_empty(), "overload is not failure");
        // A re-plan may freely use the operator again.
        let rsp = c.plan(&groups, &traffic, PlanSolver::default()).clone();
        assert!(rsp.assignment.contains_key(&group));
    }

    #[test]
    fn install_tor_plan() {
        let (mut c, groups, _) = controller();
        let rsp = Rsp::tor_plan(&groups);
        c.install(rsp.clone());
        assert_eq!(c.current_plan(), &rsp);
        let rules = c.deploy(&groups);
        for info in groups.iter() {
            let tor_rules = rules[&info.tor].tor.as_ref().unwrap();
            assert_eq!(
                tor_rules.rsnode_of_group[&info.id],
                NetRsController::rsnode_id_of(info.tor),
                "NetRS-ToR assigns each group its own ToR"
            );
        }
    }
}
