//! Traffic groups: the granularity at which the controller assigns
//! RSNodes (§III-A).
//!
//! The paper considers host-level groups (one group per client host),
//! rack-level groups (all clients under one ToR), and intervening
//! sub-rack granularities; request-level grouping is explicitly ruled out
//! because it would need per-request coordination.

use std::collections::HashMap;

use netrs_netdev::GroupId;
use netrs_topology::{FatTree, HostId, SwitchId};
use serde::{Deserialize, Serialize};

/// How client hosts are partitioned into traffic groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Granularity {
    /// One group per client host.
    Host,
    /// Groups of at most this many client hosts within the same rack.
    SubRack(u32),
    /// One group per rack (the paper's default evaluation granularity).
    #[default]
    Rack,
}

/// One traffic group: a set of client hosts under a common ToR.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupInfo {
    /// The group's ID (dense, `0..len`).
    pub id: GroupId,
    /// The ToR switch all of the group's hosts attach to.
    pub tor: SwitchId,
    /// The client hosts in the group.
    pub hosts: Vec<HostId>,
}

/// The full partition of client hosts into traffic groups.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TrafficGroups {
    groups: Vec<GroupInfo>,
    host_to_group: HashMap<u32, GroupId>,
}

impl TrafficGroups {
    /// Partitions `clients` into groups of the given granularity.
    /// Clients are grouped within their rack; ordering is deterministic.
    ///
    /// # Panics
    ///
    /// Panics if a client host is outside the topology or if a
    /// `SubRack(0)` granularity is requested.
    #[must_use]
    pub fn build(topo: &FatTree, clients: &[HostId], granularity: Granularity) -> Self {
        if let Granularity::SubRack(n) = granularity {
            assert!(n > 0, "sub-rack groups need at least one host");
        }
        let mut by_rack: HashMap<u32, Vec<HostId>> = HashMap::new();
        for &h in clients {
            assert!(h.0 < topo.num_hosts(), "client host {h} outside topology");
            by_rack.entry(topo.rack_of_host(h)).or_default().push(h);
        }
        let mut racks: Vec<u32> = by_rack.keys().copied().collect();
        racks.sort_unstable();

        let mut groups = Vec::new();
        let mut host_to_group = HashMap::new();
        for rack in racks {
            let mut hosts = by_rack.remove(&rack).expect("key from map");
            hosts.sort_unstable();
            let chunk = match granularity {
                Granularity::Host => 1,
                Granularity::SubRack(n) => n as usize,
                Granularity::Rack => hosts.len(),
            };
            for part in hosts.chunks(chunk.max(1)) {
                let id = groups.len() as GroupId;
                for &h in part {
                    host_to_group.insert(h.0, id);
                }
                groups.push(GroupInfo {
                    id,
                    tor: SwitchId(rack),
                    hosts: part.to_vec(),
                });
            }
        }
        TrafficGroups {
            groups,
            host_to_group,
        }
    }

    /// Rack-level groups (the paper's default).
    #[must_use]
    pub fn rack_level(topo: &FatTree, clients: &[HostId]) -> Self {
        Self::build(topo, clients, Granularity::Rack)
    }

    /// Number of groups.
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no groups.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The group a client host belongs to, if any.
    #[must_use]
    pub fn group_of_host(&self, h: HostId) -> Option<GroupId> {
        self.host_to_group.get(&h.0).copied()
    }

    /// Group metadata by ID.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    #[must_use]
    pub fn info(&self, g: GroupId) -> &GroupInfo {
        &self.groups[g as usize]
    }

    /// Iterates over all groups in ID order.
    pub fn iter(&self) -> impl Iterator<Item = &GroupInfo> {
        self.groups.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> FatTree {
        FatTree::new(4).unwrap()
    }

    #[test]
    fn rack_level_groups_share_tor() {
        let t = topo();
        // Hosts 0,1 share rack 0; 2,3 share rack 1; 4 alone in rack 2.
        let clients = [HostId(0), HostId(1), HostId(2), HostId(3), HostId(4)];
        let g = TrafficGroups::rack_level(&t, &clients);
        assert_eq!(g.len(), 3);
        assert_eq!(g.info(0).hosts, vec![HostId(0), HostId(1)]);
        assert_eq!(g.info(0).tor, SwitchId(0));
        assert_eq!(g.info(2).hosts, vec![HostId(4)]);
        assert_eq!(g.group_of_host(HostId(3)), Some(1));
        assert_eq!(g.group_of_host(HostId(9)), None);
    }

    #[test]
    fn host_level_groups_are_singletons() {
        let t = topo();
        let clients = [HostId(0), HostId(1), HostId(4)];
        let g = TrafficGroups::build(&t, &clients, Granularity::Host);
        assert_eq!(g.len(), 3);
        assert!(g.iter().all(|info| info.hosts.len() == 1));
    }

    #[test]
    fn sub_rack_groups_chunk_within_racks() {
        let t = FatTree::new(8).unwrap(); // 4 hosts per rack
        let clients: Vec<HostId> = (0..8).map(HostId).collect(); // racks 0, 1
        let g = TrafficGroups::build(&t, &clients, Granularity::SubRack(3));
        // Rack 0: chunks [0,1,2], [3]; rack 1: [4,5,6], [7].
        assert_eq!(g.len(), 4);
        assert_eq!(g.info(0).hosts.len(), 3);
        assert_eq!(g.info(1).hosts, vec![HostId(3)]);
        // No group spans racks.
        for info in g.iter() {
            let racks: std::collections::HashSet<u32> =
                info.hosts.iter().map(|&h| t.rack_of_host(h)).collect();
            assert_eq!(racks.len(), 1);
        }
    }

    #[test]
    fn deterministic_regardless_of_client_order() {
        let t = topo();
        let a = TrafficGroups::rack_level(&t, &[HostId(0), HostId(5), HostId(1)]);
        let b = TrafficGroups::rack_level(&t, &[HostId(5), HostId(1), HostId(0)]);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_clients_give_empty_groups() {
        let g = TrafficGroups::rack_level(&topo(), &[]);
        assert!(g.is_empty());
        assert_eq!(g.len(), 0);
    }

    #[test]
    #[should_panic(expected = "outside topology")]
    fn out_of_range_client_rejected() {
        let _ = TrafficGroups::rack_level(&topo(), &[HostId(999)]);
    }
}
