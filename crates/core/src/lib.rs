//! **NetRS** — in-network replica selection for distributed key-value
//! stores.
//!
//! This crate is the primary contribution of the ICDCS'18 paper *"NetRS:
//! Cutting Response Latency in Distributed Key-Value Stores with
//! In-Network Replica Selection"* (Su, Feng, Hua, Shi, Zhu), rebuilt as a
//! Rust library on top of the workspace substrates:
//!
//! * [`TrafficGroups`] — the controller's unit of assignment (§III-A):
//!   requests are grouped per host, per rack, or per sub-rack chunk.
//! * [`TrafficMatrix`] — each group's Tier-0/1/2 request-rate composition,
//!   measured by ToR monitors or computed from a workload oracle.
//! * [`PlacementProblem`] — the RSNode-placement ILP of §III-B (Eq. 1–7):
//!   minimize the number of RSNodes subject to single-RSNode-per-request,
//!   accelerator-capacity and extra-hop-budget constraints. Solvable
//!   exactly (branch-and-bound via [`netrs_ilp`]), greedily, or greedy-
//!   warm-started-exact ([`PlanSolver::Auto`]).
//! * [`Rsp`] — the Replica Selection Plan: which NetRS operator serves
//!   each traffic group, plus the groups degraded to client-side backup
//!   routing (DRS, §III-C).
//! * [`NetRsController`] — generates plans, compiles them into per-switch
//!   [`netrs_netdev::NetRsRules`], and handles operator failures by
//!   enabling DRS for the affected groups.
//!
//! # Examples
//!
//! Plan RSNode placement for clients spread over a small fat-tree:
//!
//! ```
//! use netrs::{
//!     ControllerConfig, NetRsController, PlanSolver, TrafficGroups, TrafficMatrix,
//! };
//! use netrs_topology::{FatTree, HostId};
//!
//! let topo = FatTree::new(4)?;
//! let clients: Vec<HostId> = (0..8).map(HostId).collect();
//! let servers: Vec<HostId> = (8..16).map(HostId).collect();
//! let groups = TrafficGroups::rack_level(&topo, &clients);
//! // Each client sends 1000 req/s; tiers follow server placement.
//! let rates: Vec<(HostId, f64)> = clients.iter().map(|&h| (h, 1000.0)).collect();
//! let traffic = TrafficMatrix::oracle(&topo, &groups, &rates, &servers);
//!
//! let mut controller = NetRsController::new(topo, ControllerConfig::default());
//! let rsp = controller.plan(&groups, &traffic, PlanSolver::default());
//! assert!(rsp.drs.is_empty());
//! let rules = controller.deploy(&groups);
//! assert_eq!(rules.len(), 20); // one rule set per switch
//! # Ok::<(), netrs_topology::TopologyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod group;
mod plan;
mod traffic;

pub use controller::{ControllerConfig, NetRsController};
pub use group::{Granularity, GroupInfo, TrafficGroups};
pub use plan::{
    AssignmentVars, PlacementProblem, PlanConstraints, PlanDiff, PlanSolveStats, PlanSolver, Rsp,
};
pub use traffic::TrafficMatrix;

pub use netrs_netdev::GroupId;
