//! RSNode placement: the ILP of §III-B and its solvers.
//!
//! The decision variables are the paper's: `P[g][o] = 1` iff traffic
//! group `g` selects replicas at NetRS operator `o`, and `D[o] = 1` iff
//! operator `o` hosts any RSNode. The model is
//!
//! * **Objective (Eq. 1)** — minimize `Σ D[o]` (fewer RSNodes → fresher
//!   local information and less herd behaviour).
//! * **Eq. 4 / R matrix** — `P[g][o]` only exists where `o` lies on `g`'s
//!   default paths: `g`'s own ToR, the aggregation switches of `g`'s pod,
//!   or any core switch (encoded here by only *creating* variables for
//!   candidates, which also prunes the model).
//! * **Eq. 5** — every group has exactly one RSNode.
//! * **Eq. 3 (aggregated)** — `Σ_g P[g][o] ≤ |G| · D[o]` links assignment
//!   to opening; the aggregation keeps the row count linear while
//!   admitting the same integer solutions.
//! * **Eq. 6** — operator load (group request rates, optionally doubled
//!   for response clones, which share the accelerator) within
//!   `U·c/t` capacity.
//! * **Eq. 7** — total extra forwarding hops within the budget `E`, with
//!   the per-tier hop cost of [`netrs_topology::extra_hops`].
//!
//! Core switches are interchangeable in the model (every `R[g][core]` is
//! 1 and capacities are uniform), so the builder applies symmetry
//! reduction: only as many core candidates as could ever be needed are
//! instantiated.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use netrs_ilp::{BranchAndBound, IlpError, Problem, Sense, VarId};
use netrs_netdev::{AcceleratorConfig, GroupId};
use netrs_topology::{extra_hops, FatTree, SwitchId, Tier};
use serde::{Deserialize, Serialize};

use crate::group::TrafficGroups;
use crate::traffic::TrafficMatrix;

/// The `P` variables of the placement ILP: one `(group, operator,
/// variable)` triple per legal assignment.
pub type AssignmentVars = Vec<(GroupId, SwitchId, VarId)>;

/// The constraint parameters of the placement problem (paper defaults in
/// [`Default`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanConstraints {
    /// Maximum accelerator utilization `U` (Constraint 2; paper: 50 %).
    pub max_utilization: f64,
    /// The accelerator model on every operator.
    pub accelerator: AcceleratorConfig,
    /// Absolute per-operator task-rate caps overriding the uniform
    /// `U·c/t` capacity — the paper's shared-accelerator scenario where
    /// administrators give each accelerator its own threshold.
    pub capacity_overrides: HashMap<u32, f64>,
    /// Extra-hop budget `E` in hops/second (Constraint 3; the paper uses
    /// 20 % of the aggregate request rate `A`).
    pub extra_hop_budget: f64,
    /// Additional accelerator load per request for the cloned response
    /// the selector must also process (1.0 = every request produces one
    /// clone task; 0.0 reproduces the paper's request-only Eq. 6).
    pub response_load_factor: f64,
    /// Cap on instantiated core-switch candidates (0 = automatic: just
    /// enough cores to carry the whole load, plus slack).
    pub core_candidates: u32,
    /// Accelerator-sharing sets `J` (§III-B's cost-cutting variant where
    /// one accelerator connects to several switches): the *summed* load
    /// of each set's switches must stay within the set's capacity. Each
    /// entry is `(switch ids, shared capacity in tasks/second)`. Switches
    /// may appear in at most one set; unlisted switches keep their own
    /// accelerator.
    pub shared_accelerators: Vec<(Vec<u32>, f64)>,
}

impl Default for PlanConstraints {
    fn default() -> Self {
        PlanConstraints {
            max_utilization: 0.5,
            accelerator: AcceleratorConfig::default(),
            capacity_overrides: HashMap::new(),
            extra_hop_budget: f64::INFINITY,
            response_load_factor: 1.0,
            core_candidates: 0,
            shared_accelerators: Vec::new(),
        }
    }
}

/// Which algorithm produces the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlanSolver {
    /// Branch-and-bound to proven optimality (small instances).
    Exact {
        /// Node budget before falling back to the best incumbent.
        node_limit: u64,
    },
    /// The capacity/hop-aware greedy heuristic only.
    Greedy,
    /// Greedy first, then branch-and-bound warm-started with the greedy
    /// plan under a node budget — the paper's "terminate solving early"
    /// mode.
    Auto {
        /// Node budget for the improvement phase.
        node_limit: u64,
    },
}

impl Default for PlanSolver {
    fn default() -> Self {
        PlanSolver::Auto { node_limit: 200 }
    }
}

/// Solver-effort metrics of one placement solve, surfaced to the
/// control-plane audit log.
///
/// Every field is a *deterministic* function of the model and solver
/// configuration — deliberately no wall-clock time, so audit records
/// stay byte-identical across repeated runs of the same seed. Simplex
/// iterations plus branch-and-bound nodes are the solve-cost proxy.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanSolveStats {
    /// Decision variables of the (last) solved ILP model; zero when the
    /// greedy heuristic produced the plan without building a model.
    pub variables: usize,
    /// Constraint rows of the (last) solved ILP model.
    pub constraints: usize,
    /// Simplex iterations summed over every LP solved (root and nodes,
    /// across DRS-degradation retries).
    pub lp_iterations: u64,
    /// Branch-and-bound nodes expanded, summed across retries.
    pub branch_nodes: u64,
    /// Objective value of the returned plan — the number of opened
    /// RSNodes (Eq. 1).
    pub objective: f64,
    /// Whether the greedy heuristic produced the final assignment
    /// (pure-greedy solver, oversized Auto model, or budget fallback).
    pub greedy: bool,
}

/// A Replica Selection Plan: the output of the controller (§II).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct Rsp {
    /// RSNode operator (by switch) of each assigned traffic group.
    pub assignment: BTreeMap<GroupId, SwitchId>,
    /// Groups running Degraded Replica Selection instead (§III-C).
    pub drs: BTreeSet<GroupId>,
    /// Whether the assignment was proven optimal by the solver.
    pub proven_optimal: bool,
}

impl Rsp {
    /// The distinct RSNode switches used by the plan.
    #[must_use]
    pub fn rsnodes(&self) -> BTreeSet<SwitchId> {
        self.assignment.values().copied().collect()
    }

    /// Number of RSNodes per tier `[core, agg, tor]` — the paper reports
    /// plans this way ("6 RSNodes on aggregation switches and 1 RSNode on
    /// a core switch").
    #[must_use]
    pub fn tier_census(&self, topo: &FatTree) -> [usize; 3] {
        let mut census = [0usize; 3];
        for sw in self.rsnodes() {
            census[topo.tier(sw).id() as usize] += 1;
        }
        census
    }

    /// The trivial NetRS-ToR plan: every group's RSNode is its own ToR
    /// switch (the paper's straightforward baseline RSP).
    #[must_use]
    pub fn tor_plan(groups: &TrafficGroups) -> Rsp {
        Rsp {
            assignment: groups.iter().map(|g| (g.id, g.tor)).collect(),
            drs: BTreeSet::new(),
            proven_optimal: false,
        }
    }
}

/// The structured difference between two consecutive [`Rsp`]s — what a
/// plan event actually changed, for the control-plane audit log. Every
/// list is in ascending id order (the plans are `BTreeMap`/`BTreeSet`
/// based), so the diff is deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PlanDiff {
    /// Groups assigned in both plans but moved to a different operator.
    pub reassigned: Vec<GroupId>,
    /// Groups that gained an operator (previously DRS or absent).
    pub newly_assigned: Vec<GroupId>,
    /// Groups that lost their operator (now DRS or absent).
    pub unassigned: Vec<GroupId>,
    /// Switches hosting an RSNode only in the new plan.
    pub rsnodes_added: Vec<SwitchId>,
    /// Switches hosting an RSNode only in the old plan.
    pub rsnodes_removed: Vec<SwitchId>,
}

impl PlanDiff {
    /// Computes the diff from `old` to `new`.
    #[must_use]
    pub fn between(old: &Rsp, new: &Rsp) -> PlanDiff {
        let mut diff = PlanDiff::default();
        for (&g, &sw) in &new.assignment {
            match old.assignment.get(&g) {
                Some(&prev) if prev != sw => diff.reassigned.push(g),
                Some(_) => {}
                None => diff.newly_assigned.push(g),
            }
        }
        for &g in old.assignment.keys() {
            if !new.assignment.contains_key(&g) {
                diff.unassigned.push(g);
            }
        }
        let old_nodes = old.rsnodes();
        let new_nodes = new.rsnodes();
        diff.rsnodes_added = new_nodes.difference(&old_nodes).copied().collect();
        diff.rsnodes_removed = old_nodes.difference(&new_nodes).copied().collect();
        diff
    }

    /// Total groups whose steering changed.
    #[must_use]
    pub fn groups_touched(&self) -> usize {
        self.reassigned.len() + self.newly_assigned.len() + self.unassigned.len()
    }

    /// Whether the two plans steer identically.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups_touched() == 0
            && self.rsnodes_added.is_empty()
            && self.rsnodes_removed.is_empty()
    }
}

/// The RSNode placement problem for one topology/workload.
#[derive(Debug)]
pub struct PlacementProblem<'a> {
    topo: &'a FatTree,
    groups: &'a TrafficGroups,
    traffic: &'a TrafficMatrix,
    cons: &'a PlanConstraints,
    /// Operators excluded from candidacy (failed or overloaded devices).
    excluded: BTreeSet<SwitchId>,
}

impl<'a> PlacementProblem<'a> {
    /// Creates the problem.
    ///
    /// # Panics
    ///
    /// Panics if the traffic matrix does not cover every group.
    #[must_use]
    pub fn new(
        topo: &'a FatTree,
        groups: &'a TrafficGroups,
        traffic: &'a TrafficMatrix,
        cons: &'a PlanConstraints,
    ) -> Self {
        assert_eq!(
            traffic.len(),
            groups.len(),
            "traffic matrix must cover every group"
        );
        PlacementProblem {
            topo,
            groups,
            traffic,
            cons,
            excluded: BTreeSet::new(),
        }
    }

    /// Excludes operators (e.g. failed devices) from candidacy.
    #[must_use]
    pub fn without_operators(mut self, excluded: impl IntoIterator<Item = SwitchId>) -> Self {
        self.excluded.extend(excluded);
        self
    }

    /// The accelerator task-rate capacity of an operator (`U·c/t`, or its
    /// administrator override).
    #[must_use]
    pub fn capacity_of(&self, sw: SwitchId) -> f64 {
        self.cons.capacity_overrides.get(&sw.0).copied().unwrap_or(
            self.cons
                .accelerator
                .capacity_at_utilization(self.cons.max_utilization),
        )
    }

    /// A group's accelerator load in tasks/second (requests plus cloned
    /// responses).
    #[must_use]
    pub fn load_of(&self, g: GroupId) -> f64 {
        self.traffic.group_total(g) * (1.0 + self.cons.response_load_factor)
    }

    /// Extra forwarding hops per second incurred if group `g` uses the
    /// operator at `sw` (Eq. 7 terms).
    #[must_use]
    pub fn extra_hop_rate(&self, g: GroupId, sw: SwitchId) -> f64 {
        let rsnode_tier = self.topo.tier(sw);
        let rates = self.traffic.tier_rates(g);
        Tier::ALL
            .into_iter()
            .map(|traffic_tier| {
                f64::from(extra_hops(traffic_tier, rsnode_tier)) * rates[traffic_tier.id() as usize]
            })
            .sum()
    }

    /// How many core-switch candidates the model instantiates.
    fn core_candidate_count(&self) -> u32 {
        if self.cons.core_candidates > 0 {
            return self.cons.core_candidates.min(self.topo.num_cores());
        }
        // Enough cores to absorb the entire load, plus one slack.
        let total_load: f64 = (0..self.groups.len() as GroupId)
            .map(|g| self.load_of(g))
            .sum();
        let core_cap = self.capacity_of(self.topo.core(0)).max(1e-9);
        let needed = (total_load / core_cap).ceil() as u32 + 1;
        needed.clamp(1, self.topo.num_cores())
    }

    /// The candidate operators of a group, per the R-matrix rules of
    /// §III-B: own ToR, own-pod aggregation switches, core switches
    /// (symmetry-reduced), minus excluded devices.
    #[must_use]
    pub fn candidates(&self, g: GroupId) -> Vec<SwitchId> {
        let info = self.groups.info(g);
        let pod = self
            .topo
            .pod_of_switch(info.tor)
            .expect("group ToRs always have a pod");
        let mut out = Vec::new();
        if !self.excluded.contains(&info.tor) {
            out.push(info.tor);
        }
        for i in 0..self.topo.arity() / 2 {
            let agg = self.topo.agg(pod, i);
            if !self.excluded.contains(&agg) {
                out.push(agg);
            }
        }
        for c in 0..self.core_candidate_count() {
            let core = self.topo.core(c);
            if !self.excluded.contains(&core) {
                out.push(core);
            }
        }
        out
    }

    /// Builds the ILP over the groups *not* in `drs`. Returns the model
    /// and the variable maps (`P` variables as `(group, operator, var)`
    /// triples and `D` variables per operator).
    #[must_use]
    pub fn to_ilp(
        &self,
        drs: &BTreeSet<GroupId>,
    ) -> (Problem, AssignmentVars, BTreeMap<SwitchId, VarId>) {
        let mut p = Problem::minimize();
        let mut pvars: AssignmentVars = Vec::new();
        let mut dvars: BTreeMap<SwitchId, VarId> = BTreeMap::new();
        let active: Vec<GroupId> = (0..self.groups.len() as GroupId)
            .filter(|g| !drs.contains(g))
            .collect();

        // D variables first (cost 1 each, Eq. 1), then P variables
        // (cost 0) for each (group, candidate) pair — Eq. 4 by
        // construction.
        for &g in &active {
            for sw in self.candidates(g) {
                dvars.entry(sw).or_insert_with(|| p.add_binary(1.0));
            }
        }
        for &g in &active {
            for sw in self.candidates(g) {
                let v = p.add_binary(0.0);
                pvars.push((g, sw, v));
            }
        }

        // Eq. 5: exactly one RSNode per group.
        for &g in &active {
            let terms: Vec<(VarId, f64)> = pvars
                .iter()
                .filter(|&&(pg, _, _)| pg == g)
                .map(|&(_, _, v)| (v, 1.0))
                .collect();
            if !terms.is_empty() {
                p.add_constraint(terms, Sense::Eq, 1.0);
            }
        }

        let big_g = active.len().max(1) as f64;
        for (&sw, &dv) in &dvars {
            let assigned: Vec<&(GroupId, SwitchId, VarId)> =
                pvars.iter().filter(|&&(_, s, _)| s == sw).collect();
            // Eq. 3 (aggregated linking).
            let mut link: Vec<(VarId, f64)> = assigned.iter().map(|&&(_, _, v)| (v, 1.0)).collect();
            link.push((dv, -big_g));
            p.add_constraint(link, Sense::Le, 0.0);
            // Eq. 6 (capacity).
            let cap_terms: Vec<(VarId, f64)> = assigned
                .iter()
                .map(|&&(g, _, v)| (v, self.load_of(g)))
                .collect();
            p.add_constraint(cap_terms, Sense::Le, self.capacity_of(sw));
        }

        // §III-B's shared-accelerator variant of Eq. 6: the summed load
        // of all switches wired to one accelerator stays within that
        // accelerator's capacity.
        for (set, cap) in &self.cons.shared_accelerators {
            let members: BTreeSet<u32> = set.iter().copied().collect();
            let terms: Vec<(VarId, f64)> = pvars
                .iter()
                .filter(|&&(_, sw, _)| members.contains(&sw.0))
                .map(|&(g, _, v)| (v, self.load_of(g)))
                .collect();
            if !terms.is_empty() {
                p.add_constraint(terms, Sense::Le, *cap);
            }
        }

        // Eq. 7 (global extra-hop budget), only if finite.
        if self.cons.extra_hop_budget.is_finite() {
            let terms: Vec<(VarId, f64)> = pvars
                .iter()
                .map(|&(g, sw, v)| (v, self.extra_hop_rate(g, sw)))
                .filter(|&(_, c)| c > 0.0)
                .collect();
            p.add_constraint(terms, Sense::Le, self.cons.extra_hop_budget);
        }

        (p, pvars, dvars)
    }

    /// Index of the shared-accelerator set a switch belongs to, if any.
    fn shared_set_of(&self, sw: SwitchId) -> Option<usize> {
        self.cons
            .shared_accelerators
            .iter()
            .position(|(set, _)| set.contains(&sw.0))
    }

    /// The greedy heuristic: repeatedly open (or extend) the operator
    /// that absorbs the most remaining load within its capacity (own and
    /// shared-accelerator, if any) and the global hop budget; groups
    /// nothing can absorb fall back to DRS — highest-traffic groups are
    /// preferred for DRS exactly as §III-C prescribes.
    #[must_use]
    pub fn solve_greedy(&self) -> Rsp {
        let mut remaining: BTreeSet<GroupId> = (0..self.groups.len() as GroupId).collect();
        let mut cap_left: HashMap<SwitchId, f64> = HashMap::new();
        let mut shared_left: Vec<f64> = self
            .cons
            .shared_accelerators
            .iter()
            .map(|&(_, cap)| cap)
            .collect();
        let mut opened: BTreeSet<SwitchId> = BTreeSet::new();
        let mut hops_left = self.cons.extra_hop_budget;
        let mut rsp = Rsp::default();

        // Candidate operator universe.
        let mut universe: BTreeSet<SwitchId> = BTreeSet::new();
        for g in remaining.iter().copied() {
            universe.extend(self.candidates(g));
        }

        while !remaining.is_empty() {
            let mut best: Option<(f64, bool, SwitchId, Vec<GroupId>, f64)> = None;
            for &sw in &universe {
                let mut cap = *cap_left.entry(sw).or_insert_with(|| self.capacity_of(sw));
                if let Some(set) = self.shared_set_of(sw) {
                    cap = cap.min(shared_left[set]);
                }
                let mut hops = hops_left;
                // Absorb cheap-hop, heavy groups first.
                let mut takers: Vec<GroupId> = remaining
                    .iter()
                    .copied()
                    .filter(|&g| self.candidates(g).contains(&sw))
                    .collect();
                takers.sort_by(|&a, &b| {
                    let ka = (self.extra_hop_rate(a, sw), -self.load_of(a));
                    let kb = (self.extra_hop_rate(b, sw), -self.load_of(b));
                    ka.partial_cmp(&kb).unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut taken = Vec::new();
                let mut taken_load = 0.0;
                let mut hops_used = 0.0;
                for g in takers {
                    let load = self.load_of(g);
                    let hr = self.extra_hop_rate(g, sw);
                    if load <= cap + 1e-9 && hr <= hops + 1e-9 {
                        cap -= load;
                        hops -= hr;
                        hops_used += hr;
                        taken_load += load;
                        taken.push(g);
                    }
                }
                if taken.is_empty() {
                    continue;
                }
                let already_open = opened.contains(&sw);
                let key = (taken_load, already_open, sw, taken, hops_used);
                let better = match &best {
                    None => true,
                    Some((bl, bo, ..)) => {
                        key.0 > *bl + 1e-9 || ((key.0 - *bl).abs() <= 1e-9 && key.1 && !bo)
                    }
                };
                if better {
                    best = Some(key);
                }
            }

            match best {
                Some((_, _, sw, taken, hops_used)) => {
                    opened.insert(sw);
                    let shared = self.shared_set_of(sw);
                    let cap = cap_left.get_mut(&sw).expect("entry created above");
                    for g in taken {
                        let load = self.load_of(g);
                        *cap -= load;
                        if let Some(set) = shared {
                            shared_left[set] -= load;
                        }
                        remaining.remove(&g);
                        rsp.assignment.insert(g, sw);
                    }
                    hops_left -= hops_used;
                }
                None => {
                    // Nothing can take anything: degrade the
                    // highest-traffic remaining group (§III-C).
                    let g = remaining
                        .iter()
                        .copied()
                        .max_by(|&a, &b| {
                            self.load_of(a)
                                .partial_cmp(&self.load_of(b))
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .expect("remaining is non-empty");
                    remaining.remove(&g);
                    rsp.drs.insert(g);
                }
            }
        }
        rsp
    }

    /// Solves the placement with the chosen solver. On an infeasible
    /// model the controller's DRS fallback kicks in: the highest-traffic
    /// group is degraded and the model re-solved, until feasible.
    #[must_use]
    pub fn solve(&self, solver: PlanSolver) -> Rsp {
        self.solve_with_stats(solver).0
    }

    /// A greedy plan plus the solve stats it deterministically implies.
    fn greedy_with_stats(&self, mut stats: PlanSolveStats) -> (Rsp, PlanSolveStats) {
        let rsp = self.solve_greedy();
        stats.greedy = true;
        stats.objective = rsp.rsnodes().len() as f64;
        (rsp, stats)
    }

    /// Like [`PlacementProblem::solve`], but also returns the
    /// [`PlanSolveStats`] of the solve for the control-plane audit log.
    #[must_use]
    pub fn solve_with_stats(&self, solver: PlanSolver) -> (Rsp, PlanSolveStats) {
        let mut stats = PlanSolveStats::default();
        if self.groups.is_empty() {
            return (Rsp::default(), stats);
        }
        let (node_limit, warm) = match solver {
            PlanSolver::Greedy => return self.greedy_with_stats(stats),
            PlanSolver::Exact { node_limit } => (node_limit, None),
            PlanSolver::Auto { node_limit } => {
                // The dense-simplex improvement phase pays off only while
                // the model stays moderate; past that the greedy plan IS
                // the anytime answer (the paper's early-termination mode).
                let model_size: usize = (0..self.groups.len() as GroupId)
                    .map(|g| self.candidates(g).len())
                    .sum();
                if model_size > 2_500 {
                    return self.greedy_with_stats(stats);
                }
                (node_limit, Some(self.solve_greedy()))
            }
        };

        let mut drs: BTreeSet<GroupId> = warm.as_ref().map(|w| w.drs.clone()).unwrap_or_default();
        loop {
            let (problem, pvars, dvars) = self.to_ilp(&drs);
            stats.variables = problem.num_vars();
            stats.constraints = problem.num_constraints();
            let warm_vec = warm.as_ref().map(|w| {
                let mut x = vec![0.0; problem.num_vars()];
                for &(g, sw, v) in &pvars {
                    if w.assignment.get(&g) == Some(&sw) {
                        x[v] = 1.0;
                        x[dvars[&sw]] = 1.0;
                    }
                }
                x
            });
            let bnb = BranchAndBound {
                node_limit,
                ..BranchAndBound::default()
            };
            match bnb.solve_from(&problem, warm_vec.as_deref()) {
                Ok(sol) => {
                    stats.lp_iterations += sol.lp_iterations;
                    stats.branch_nodes += sol.nodes;
                    stats.objective = sol.objective;
                    let mut rsp = Rsp {
                        drs,
                        proven_optimal: sol.status == netrs_ilp::IlpStatus::Optimal,
                        ..Rsp::default()
                    };
                    for &(g, sw, v) in &pvars {
                        if sol.values[v] > 0.5 {
                            rsp.assignment.insert(g, sw);
                        }
                    }
                    return (rsp, stats);
                }
                Err(IlpError::BudgetExhausted) => {
                    // Only possible without a warm start (Exact mode with
                    // a tiny budget): fall back to the heuristic rather
                    // than degrading groups that may well be placeable.
                    return self.greedy_with_stats(stats);
                }
                Err(IlpError::Infeasible) => {
                    // §III-C(i): no feasible RSP — degrade the
                    // highest-traffic active group and retry.
                    let candidate = (0..self.groups.len() as GroupId)
                        .filter(|g| !drs.contains(g))
                        .max_by(|&a, &b| {
                            self.load_of(a)
                                .partial_cmp(&self.load_of(b))
                                .unwrap_or(std::cmp::Ordering::Equal)
                        });
                    match candidate {
                        Some(g) => {
                            drs.insert(g);
                        }
                        None => {
                            return (
                                Rsp {
                                    drs,
                                    ..Rsp::default()
                                },
                                stats,
                            )
                        }
                    }
                }
                Err(IlpError::Unbounded) => {
                    unreachable!("placement objective is non-negative")
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrs_topology::HostId;

    fn setup(clients: &[u32], per_client_rate: f64) -> (FatTree, TrafficGroups, TrafficMatrix) {
        let topo = FatTree::new(4).unwrap();
        let hosts: Vec<HostId> = clients.iter().map(|&h| HostId(h)).collect();
        let groups = TrafficGroups::rack_level(&topo, &hosts);
        let servers: Vec<HostId> = (8..16).map(HostId).collect();
        let rates: Vec<(HostId, f64)> = hosts.iter().map(|&h| (h, per_client_rate)).collect();
        let traffic = TrafficMatrix::oracle(&topo, &groups, &rates, &servers);
        (topo, groups, traffic)
    }

    #[test]
    fn candidates_follow_r_matrix_rules() {
        let (topo, groups, traffic) = setup(&[0, 1], 100.0);
        let cons = PlanConstraints {
            core_candidates: 2,
            ..PlanConstraints::default()
        };
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let cands = p.candidates(0);
        // Own ToR (switch 0), both pod-0 aggs, 2 core candidates.
        assert!(cands.contains(&topo.tor(0, 0)));
        assert!(cands.contains(&topo.agg(0, 0)));
        assert!(cands.contains(&topo.agg(0, 1)));
        assert!(cands.contains(&topo.core(0)));
        assert_eq!(cands.len(), 5);
        // Never a foreign pod's agg or a foreign ToR.
        assert!(!cands.contains(&topo.agg(1, 0)));
        assert!(!cands.contains(&topo.tor(1, 0)));
    }

    #[test]
    fn single_core_suffices_when_capacity_allows() {
        // Two client racks in pods 0 and 1, servers in pods 2 and 3:
        // all-cross-pod traffic, so one core RSNode covers both racks
        // with zero extra hops.
        let (topo, groups, traffic) = setup(&[0, 4], 100.0);
        let cons = PlanConstraints {
            extra_hop_budget: 0.0, // force on-path RSNodes only
            ..PlanConstraints::default()
        };
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let rsp = p.solve(PlanSolver::Exact { node_limit: 10_000 });
        assert!(rsp.drs.is_empty());
        assert!(rsp.proven_optimal);
        assert_eq!(rsp.rsnodes().len(), 1, "one RSNode must suffice: {rsp:?}");
        let census = rsp.tier_census(&topo);
        assert_eq!(census[0], 1, "it must be a core switch: {census:?}");
    }

    #[test]
    fn capacity_forces_multiple_rsnodes() {
        let (topo, groups, traffic) = setup(&[0, 12], 100.0);
        // Each group loads 100 req/s * 2 (clones). Cap capacity at 250/s:
        // one operator cannot take both groups (2 * 200 = 400).
        let mut cons = PlanConstraints {
            extra_hop_budget: f64::INFINITY,
            ..PlanConstraints::default()
        };
        for sw in topo.switches() {
            cons.capacity_overrides.insert(sw.0, 250.0);
        }
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let rsp = p.solve(PlanSolver::Exact { node_limit: 10_000 });
        assert!(rsp.drs.is_empty());
        assert_eq!(rsp.rsnodes().len(), 2, "{rsp:?}");
    }

    #[test]
    fn hop_budget_pushes_rsnodes_down_the_tree() {
        // One rack of clients with mostly rack-local traffic: with a zero
        // hop budget the RSNode must be the ToR itself.
        let topo = FatTree::new(4).unwrap();
        let hosts = [HostId(0)];
        let groups = TrafficGroups::rack_level(&topo, &hosts);
        let servers = [HostId(1)]; // same rack → all Tier-2 traffic
        let traffic = TrafficMatrix::oracle(&topo, &groups, &[(HostId(0), 100.0)], &servers);
        let cons = PlanConstraints {
            extra_hop_budget: 0.0,
            ..PlanConstraints::default()
        };
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let rsp = p.solve(PlanSolver::Exact { node_limit: 1_000 });
        assert_eq!(rsp.assignment[&0], topo.tor(0, 0));

        // With budget for the detour, a core RSNode becomes legal too —
        // but minimizing count still gives 1 RSNode either way.
        let cons = PlanConstraints {
            extra_hop_budget: 1_000.0,
            ..PlanConstraints::default()
        };
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let rsp = p.solve(PlanSolver::Exact { node_limit: 1_000 });
        assert_eq!(rsp.rsnodes().len(), 1);
    }

    #[test]
    fn infeasible_model_degrades_highest_traffic_group() {
        let (topo, groups, traffic) = setup(&[0, 12], 100.0);
        // Capacity too small for either group anywhere.
        let mut cons = PlanConstraints::default();
        for sw in topo.switches() {
            cons.capacity_overrides.insert(sw.0, 10.0);
        }
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let rsp = p.solve(PlanSolver::Exact { node_limit: 1_000 });
        assert_eq!(rsp.drs.len(), 2, "all groups must degrade: {rsp:?}");
        assert!(rsp.assignment.is_empty());
    }

    #[test]
    fn greedy_respects_capacity_and_covers_groups() {
        let (topo, groups, traffic) = setup(&[0, 1, 2, 3, 12, 13], 50.0);
        let cons = PlanConstraints::default();
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let rsp = p.solve_greedy();
        assert!(rsp.drs.is_empty());
        assert_eq!(rsp.assignment.len(), groups.len());
        // Per-operator load within capacity.
        let mut loads: HashMap<SwitchId, f64> = HashMap::new();
        for (&g, &sw) in &rsp.assignment {
            *loads.entry(sw).or_default() += p.load_of(g);
        }
        for (&sw, &load) in &loads {
            assert!(load <= p.capacity_of(sw) + 1e-6);
        }
    }

    #[test]
    fn auto_never_beats_exact_never_worse_than_greedy() {
        let (topo, groups, traffic) = setup(&[0, 1, 2, 4, 5, 12], 80.0);
        let mut cons = PlanConstraints::default();
        for sw in topo.switches() {
            cons.capacity_overrides.insert(sw.0, 400.0);
        }
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let greedy = p.solve_greedy();
        let auto = p.solve(PlanSolver::Auto { node_limit: 5_000 });
        let exact = p.solve(PlanSolver::Exact {
            node_limit: 100_000,
        });
        assert!(exact.proven_optimal);
        assert!(auto.rsnodes().len() <= greedy.rsnodes().len().max(1));
        assert!(exact.rsnodes().len() <= auto.rsnodes().len());
        assert!(auto.drs.is_empty() && exact.drs.is_empty());
    }

    #[test]
    fn excluded_operators_are_never_candidates() {
        let (topo, groups, traffic) = setup(&[0, 1], 100.0);
        let cons = PlanConstraints::default();
        let core0 = topo.core(0);
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons)
            .without_operators([core0, topo.tor(0, 0)]);
        for g in 0..groups.len() as GroupId {
            let cands = p.candidates(g);
            assert!(!cands.contains(&core0));
            assert!(!cands.contains(&topo.tor(0, 0)));
        }
        let rsp = p.solve(PlanSolver::Exact { node_limit: 1_000 });
        assert!(!rsp.rsnodes().contains(&core0));
    }

    #[test]
    fn tor_plan_maps_each_group_to_its_tor() {
        let (topo, groups, _) = setup(&[0, 1, 4, 12], 10.0);
        let rsp = Rsp::tor_plan(&groups);
        for info in groups.iter() {
            assert_eq!(rsp.assignment[&info.id], info.tor);
        }
        assert_eq!(rsp.tier_census(&topo)[2], rsp.rsnodes().len());
    }

    #[test]
    fn ilp_structure_matches_equations() {
        let (topo, groups, traffic) = setup(&[0, 12], 100.0);
        let cons = PlanConstraints {
            core_candidates: 1,
            extra_hop_budget: 500.0,
            ..PlanConstraints::default()
        };
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let (ilp, pvars, dvars) = p.to_ilp(&BTreeSet::new());
        // 2 groups × (1 ToR + 2 aggs + 1 core) = 8 P vars; operators: 2
        // ToRs + 4 aggs + 1 shared core = 7 D vars.
        assert_eq!(pvars.len(), 8);
        assert_eq!(dvars.len(), 7);
        assert_eq!(ilp.num_vars(), 15);
        // Rows: 2 assignment + 7 linking + 7 capacity + 1 hop budget.
        assert_eq!(ilp.num_constraints(), 17);
    }

    #[test]
    fn solve_stats_are_plausible_for_the_exact_solver() {
        let (topo, groups, traffic) = setup(&[0, 1, 4, 12], 100.0);
        let cons = PlanConstraints::default();
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let (rsp, stats) = p.solve_with_stats(PlanSolver::Exact { node_limit: 10_000 });
        assert!(!stats.greedy);
        assert!(stats.variables > 0 && stats.constraints > 0);
        assert!(
            stats.lp_iterations > 0,
            "solving a non-trivial model must pivot at least once: {stats:?}"
        );
        // Eq. 1: D vars cost 1, P vars cost 0, so the objective IS the
        // number of opened RSNodes.
        assert!(
            (stats.objective - rsp.rsnodes().len() as f64).abs() < 1e-6,
            "objective {} vs {} RSNodes",
            stats.objective,
            rsp.rsnodes().len()
        );
        // The model sizes must match what to_ilp builds.
        let (ilp, _, _) = p.to_ilp(&rsp.drs);
        assert_eq!(stats.variables, ilp.num_vars());
        assert_eq!(stats.constraints, ilp.num_constraints());
    }

    #[test]
    fn solve_stats_flag_greedy_fallbacks() {
        let (topo, groups, traffic) = setup(&[0, 4], 100.0);
        let cons = PlanConstraints::default();
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let (rsp, stats) = p.solve_with_stats(PlanSolver::Greedy);
        assert!(stats.greedy);
        assert_eq!(stats.lp_iterations, 0);
        assert_eq!(stats.branch_nodes, 0);
        assert!((stats.objective - rsp.rsnodes().len() as f64).abs() < 1e-9);
        // Auto on a small model runs the ILP and reports its effort.
        let (auto_rsp, auto_stats) = p.solve_with_stats(PlanSolver::Auto { node_limit: 5_000 });
        assert!(!auto_stats.greedy);
        assert!(auto_stats.lp_iterations > 0);
        assert!((auto_stats.objective - auto_rsp.rsnodes().len() as f64).abs() < 1e-6);
    }

    #[test]
    fn shared_accelerators_cap_the_set_sum() {
        // Two cross-pod client racks; wire the first two core switches to
        // ONE shared accelerator whose capacity fits only one group.
        let (topo, groups, traffic) = setup(&[0, 4], 100.0);
        // Per-group load = 100 * 2 = 200 tasks/s.
        let shared_cores = vec![topo.core(0).0, topo.core(1).0];
        let cons = PlanConstraints {
            core_candidates: 2,
            shared_accelerators: vec![(shared_cores.clone(), 250.0)],
            ..PlanConstraints::default()
        };
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        for solver in [PlanSolver::Greedy, PlanSolver::Exact { node_limit: 10_000 }] {
            let rsp = p.solve(solver);
            assert!(rsp.drs.is_empty(), "{solver:?}: {rsp:?}");
            // Verify: total load assigned to switches of the shared set
            // stays within the shared capacity.
            let shared_load: f64 = rsp
                .assignment
                .iter()
                .filter(|&(_, sw)| shared_cores.contains(&sw.0))
                .map(|(&g, _)| p.load_of(g))
                .sum();
            assert!(
                shared_load <= 250.0 + 1e-6,
                "{solver:?}: shared set overloaded with {shared_load}"
            );
        }
        // Without the shared set, one core would take both groups; with
        // it, the exact solver must split or move off the shared cores.
        let unconstrained = PlanConstraints {
            core_candidates: 2,
            ..PlanConstraints::default()
        };
        let p2 = PlacementProblem::new(&topo, &groups, &traffic, &unconstrained);
        let rsp2 = p2.solve(PlanSolver::Exact { node_limit: 10_000 });
        assert_eq!(
            rsp2.rsnodes().len(),
            1,
            "sanity: unconstrained uses one core"
        );
    }

    #[test]
    fn empty_groups_produce_empty_plan() {
        let topo = FatTree::new(4).unwrap();
        let groups = TrafficGroups::rack_level(&topo, &[]);
        let traffic = TrafficMatrix::zero(0);
        let cons = PlanConstraints::default();
        let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let rsp = p.solve(PlanSolver::default());
        assert!(rsp.assignment.is_empty() && rsp.drs.is_empty());
    }
}
