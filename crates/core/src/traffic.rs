//! The per-group traffic composition matrix `T` of §III-B.
//!
//! `T[g][k]` is group `g`'s Tier-k request rate (requests/second): Tier-2
//! traffic stays in the rack, Tier-1 stays in the pod, Tier-0 crosses
//! pods. The controller obtains `T` either from ToR monitor snapshots
//! (§IV-D) or — in simulations, before any traffic has flowed — from a
//! workload oracle that knows where clients and servers sit.

use netrs_netdev::{GroupId, TrafficSnapshot};
use netrs_topology::{FatTree, HostId, Tier};
use serde::{Deserialize, Serialize};

use crate::group::TrafficGroups;

/// Request rates per `(group, tier)`, in requests/second. Tier indices
/// are the paper's: 0 = cross-pod, 1 = pod-local, 2 = rack-local.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    rates: Vec<[f64; 3]>,
}

impl TrafficMatrix {
    /// An all-zero matrix for `n_groups` groups.
    #[must_use]
    pub fn zero(n_groups: usize) -> Self {
        TrafficMatrix {
            rates: vec![[0.0; 3]; n_groups],
        }
    }

    /// Number of groups.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rates.len()
    }

    /// Whether the matrix covers no groups.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }

    /// Adds `rate` requests/second of Tier-`tier` traffic to a group.
    ///
    /// # Panics
    ///
    /// Panics if the group is out of range or the rate is negative/NaN.
    pub fn add(&mut self, group: GroupId, tier: Tier, rate: f64) {
        assert!(rate >= 0.0, "rates must be non-negative");
        self.rates[group as usize][tier.id() as usize] += rate;
    }

    /// The Tier-k rates of one group.
    #[must_use]
    pub fn tier_rates(&self, group: GroupId) -> [f64; 3] {
        self.rates[group as usize]
    }

    /// Total request rate of one group.
    #[must_use]
    pub fn group_total(&self, group: GroupId) -> f64 {
        self.rates[group as usize].iter().sum()
    }

    /// Total request rate across all groups (the paper's `A`).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.rates.iter().flatten().sum()
    }

    /// Builds `T` from ToR monitor snapshots, converting window counts to
    /// rates and summing across monitors.
    #[must_use]
    pub fn from_snapshots(n_groups: usize, snapshots: &[TrafficSnapshot]) -> Self {
        let mut m = Self::zero(n_groups);
        for snap in snapshots {
            for &(group, counts) in &snap.counts {
                if (group as usize) < n_groups {
                    let rates = snap.rates(counts);
                    for (k, r) in rates.into_iter().enumerate() {
                        m.rates[group as usize][k] += r;
                    }
                }
            }
        }
        m
    }

    /// Builds `T` analytically from the workload: each client host sends
    /// at its given rate, spread uniformly over the server hosts (which is
    /// the long-run behaviour of an unbiased selector over a balanced
    /// ring). Tier shares follow from where the servers sit relative to
    /// the client.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is empty or a client host has no group.
    #[must_use]
    pub fn oracle(
        topo: &FatTree,
        groups: &TrafficGroups,
        client_rates: &[(HostId, f64)],
        servers: &[HostId],
    ) -> Self {
        assert!(!servers.is_empty(), "oracle needs at least one server");
        let mut m = Self::zero(groups.len());
        let total_servers = servers.len() as f64;
        for &(client, rate) in client_rates {
            let group = groups
                .group_of_host(client)
                .expect("every client host must belong to a group");
            let mut counts = [0u32; 3];
            for &s in servers {
                counts[topo.traffic_tier(client, s).id() as usize] += 1;
            }
            for (k, c) in counts.into_iter().enumerate() {
                m.rates[group as usize][k] += rate * f64::from(c) / total_servers;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrs_simcore::{SimDuration, SimTime};
    use netrs_wire::SourceMarker;

    #[test]
    fn add_and_totals() {
        let mut m = TrafficMatrix::zero(2);
        m.add(0, Tier::Core, 100.0);
        m.add(0, Tier::Tor, 50.0);
        m.add(1, Tier::Agg, 25.0);
        assert_eq!(m.tier_rates(0), [100.0, 0.0, 50.0]);
        assert_eq!(m.group_total(0), 150.0);
        assert_eq!(m.total(), 175.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn from_snapshots_converts_counts_to_rates() {
        let snap = TrafficSnapshot {
            local: SourceMarker { pod: 0, rack: 0 },
            counts: vec![(0, [500, 0, 0]), (1, [0, 250, 250])],
            from: SimTime::ZERO,
            to: SimTime::ZERO + SimDuration::from_millis(500),
        };
        let m = TrafficMatrix::from_snapshots(2, &[snap.clone(), snap]);
        // Two identical monitors double the rates: 2 * 500/0.5s = 2000/s.
        assert!((m.tier_rates(0)[0] - 2_000.0).abs() < 1e-9);
        assert!((m.tier_rates(1)[1] - 1_000.0).abs() < 1e-9);
        assert!((m.total() - 4_000.0).abs() < 1e-9);
    }

    #[test]
    fn from_snapshots_ignores_unknown_groups() {
        let snap = TrafficSnapshot {
            local: SourceMarker { pod: 0, rack: 0 },
            counts: vec![(7, [100, 0, 0])],
            from: SimTime::ZERO,
            to: SimTime::ZERO + SimDuration::from_secs(1),
        };
        let m = TrafficMatrix::from_snapshots(2, &[snap]);
        assert_eq!(m.total(), 0.0);
    }

    #[test]
    fn oracle_matches_server_placement() {
        let topo = FatTree::new(4).unwrap();
        // Client at host 0; servers: one in its rack (1), one in its pod
        // (2), two cross-pod (4, 12).
        let clients = [HostId(0)];
        let groups = TrafficGroups::rack_level(&topo, &clients);
        let servers = [HostId(1), HostId(2), HostId(4), HostId(12)];
        let m = TrafficMatrix::oracle(&topo, &groups, &[(HostId(0), 1000.0)], &servers);
        let rates = m.tier_rates(0);
        assert!((rates[2] - 250.0).abs() < 1e-9, "rack share");
        assert!((rates[1] - 250.0).abs() < 1e-9, "pod share");
        assert!((rates[0] - 500.0).abs() < 1e-9, "cross-pod share");
    }

    #[test]
    fn oracle_sums_hosts_within_a_group() {
        let topo = FatTree::new(4).unwrap();
        let clients = [HostId(0), HostId(1)];
        let groups = TrafficGroups::rack_level(&topo, &clients);
        let servers = [HostId(12)];
        let m = TrafficMatrix::oracle(
            &topo,
            &groups,
            &[(HostId(0), 10.0), (HostId(1), 30.0)],
            &servers,
        );
        assert!((m.group_total(0) - 40.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rate_rejected() {
        let mut m = TrafficMatrix::zero(1);
        m.add(0, Tier::Core, -1.0);
    }
}
