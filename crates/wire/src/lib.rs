//! The NetRS packet formats of §IV-A (Fig. 2), byte-exact.
//!
//! NetRS packets ride in the payload of UDP datagrams (the paper targets
//! UDP-based key-value protocols, as production stores do for reads). The
//! two formats share a fixed prefix and diverge after it:
//!
//! ```text
//! request :  RID(2) MF(6) RV(2) RGID(3)            | application payload
//! response:  RID(2) MF(6) RV(2) SM(4) SSL(2) SS(n) | application payload
//! ```
//!
//! * **RID** — RSNode ID: the NetRS operator responsible for this packet.
//! * **MF** — magic field: a 6-byte label switches match to classify the
//!   packet; the invertible function `f` over magic fields implements the
//!   request→response labelling handshake of §IV-C.
//! * **RV** — retaining value: set by the RSNode on the request, echoed by
//!   the server on the response (e.g. a send timestamp for RTT tracking).
//! * **RGID** — replica group ID (3 bytes): key to the replica-group
//!   database on the accelerator, keeping headers fixed-size regardless of
//!   the replication factor.
//! * **SM** — source marker (pod, rack) stamped by the server-side ToR so
//!   monitors can classify the response's tier.
//! * **SSL/SS** — length-prefixed piggybacked server status for the
//!   replica-selection algorithm.
//!
//! All multi-byte integers are big-endian (network order).
//!
//! # Examples
//!
//! ```
//! use netrs_wire::{MagicField, RequestHeader, Rgid, RsnodeId};
//!
//! let hdr = RequestHeader {
//!     rid: RsnodeId(7),
//!     magic: MagicField::REQUEST,
//!     rv: 0x1234,
//!     rgid: Rgid::new(99)?,
//! };
//! let wire = hdr.encode(b"GET k");
//! let (back, payload) = RequestHeader::decode(&wire)?;
//! assert_eq!(back, hdr);
//! assert_eq!(&payload[..], b"GET k");
//! # Ok::<(), netrs_wire::WireError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Length of the fixed request header (RID + MF + RV + RGID).
pub const REQUEST_HEADER_LEN: usize = 2 + 6 + 2 + 3;
/// Length of the fixed part of the response header (RID + MF + RV + SM +
/// SSL); the variable-length SS segment follows.
pub const RESPONSE_FIXED_LEN: usize = 2 + 6 + 2 + 4 + 2;
/// Byte offset of the magic field in both formats.
pub const MAGIC_OFFSET: usize = 2;
/// Opcode byte opening a `SET` application payload.
pub const OP_SET: u8 = 0x53; // 'S'
/// Length of the fixed part of a `SET` frame (OP + KEY + VLEN); the
/// value follows.
pub const SET_FIXED_LEN: usize = 1 + 8 + 4;

/// The ID of a NetRS operator acting as RSNode, carried in the RID segment.
///
/// The controller assigns positive IDs; [`RsnodeId::ILLEGAL`] marks a
/// packet whose traffic group is under Degraded Replica Selection (§III-C:
/// "the NetRS controller just tells the corresponding NetRS operator to set
/// an illegal RSNode ID").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct RsnodeId(pub u16);

impl RsnodeId {
    /// The illegal ID used to flag Degraded Replica Selection.
    pub const ILLEGAL: RsnodeId = RsnodeId(u16::MAX);

    /// Whether this is a legal (assignable) RSNode ID.
    #[must_use]
    pub fn is_legal(self) -> bool {
        self != Self::ILLEGAL
    }
}

impl fmt::Display for RsnodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_legal() {
            write!(f, "rsn{}", self.0)
        } else {
            write!(f, "rsn-illegal")
        }
    }
}

/// A replica group ID: a 3-byte key into the accelerator-local replica
/// group database.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Rgid(u32);

impl Rgid {
    /// Largest encodable group ID (24 bits).
    pub const MAX: u32 = 0x00FF_FFFF;

    /// Creates a replica group ID.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::RgidOutOfRange`] if `id` does not fit in 3
    /// bytes.
    pub fn new(id: u32) -> Result<Self, WireError> {
        if id > Self::MAX {
            Err(WireError::RgidOutOfRange(id))
        } else {
            Ok(Rgid(id))
        }
    }

    /// The numeric value.
    #[must_use]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Rgid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rg{}", self.0)
    }
}

/// The 6-byte magic field used by switches to classify packets.
///
/// §IV-C requires an invertible function `f` over magic fields with
/// `f(M_RESP) ∉ {M_REQ, M_RESP}`. We use an involution (XOR with a fixed
/// key), so `f` is its own inverse — servers can compute `f⁻¹` with the
/// same operation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MagicField(pub [u8; 6]);

impl MagicField {
    /// Labels a NetRS request awaiting replica selection (`M_req`).
    pub const REQUEST: MagicField = MagicField(*b"NRSREQ");
    /// Labels a NetRS response (`M_resp`).
    pub const RESPONSE: MagicField = MagicField(*b"NRSRSP");
    /// Labels a non-NetRS packet that monitors should still count
    /// (`M_mon`).
    pub const MONITORED: MagicField = MagicField(*b"NRSMON");

    const F_KEY: [u8; 6] = [0xA5, 0x3C, 0x5A, 0xC3, 0x69, 0x96];

    /// The invertible transform `f` (an involution: `f(f(m)) == m`).
    #[must_use]
    pub fn f(self) -> MagicField {
        let mut out = self.0;
        for (b, k) in out.iter_mut().zip(Self::F_KEY) {
            *b ^= k;
        }
        MagicField(out)
    }

    /// The inverse transform `f⁻¹` (identical to [`MagicField::f`] because
    /// `f` is an involution).
    #[must_use]
    pub fn f_inv(self) -> MagicField {
        self.f()
    }

    /// Classifies a magic field the way the switch ingress pipeline does.
    #[must_use]
    pub fn kind(self) -> PacketKind {
        if self == Self::REQUEST {
            PacketKind::NetRsRequest
        } else if self == Self::RESPONSE {
            PacketKind::NetRsResponse
        } else if self == Self::MONITORED {
            PacketKind::Monitored
        } else {
            PacketKind::Other
        }
    }
}

impl fmt::Display for MagicField {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

/// Packet classes distinguished by the switch pipeline (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PacketKind {
    /// A key-value read request that NetRS must select a replica for.
    NetRsRequest,
    /// A key-value response carrying piggybacked server status.
    NetRsResponse,
    /// A packet NetRS no longer processes but monitors still count
    /// (magic == `M_mon`).
    Monitored,
    /// Any other traffic: forwarded by the regular pipeline untouched.
    Other,
}

/// The source marker (SM segment): the network location a response comes
/// from, stamped by the server-side ToR switch (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct SourceMarker {
    /// Pod ID of the sending host.
    pub pod: u16,
    /// Global rack (ToR) ID of the sending host.
    pub rack: u16,
}

impl SourceMarker {
    /// Whether the marker names the same pod as `other`.
    #[must_use]
    pub fn same_pod(self, other: SourceMarker) -> bool {
        self.pod == other.pod
    }

    /// Whether the marker names the same rack as `other`.
    #[must_use]
    pub fn same_rack(self, other: SourceMarker) -> bool {
        self.rack == other.rack
    }
}

/// Errors decoding NetRS packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer is shorter than the format requires.
    Truncated {
        /// Bytes required by the fixed header (plus declared SS length).
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// A replica group ID does not fit in the 3-byte RGID segment.
    RgidOutOfRange(u32),
    /// The magic field does not label the packet as the expected kind.
    UnexpectedMagic(MagicField),
    /// An application payload opens with an opcode the decoder does not
    /// recognize.
    UnexpectedOpcode(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, got } => {
                write!(f, "packet truncated: needed {needed} bytes, got {got}")
            }
            WireError::RgidOutOfRange(id) => {
                write!(f, "replica group id {id} exceeds 3-byte range")
            }
            WireError::UnexpectedMagic(m) => write!(f, "unexpected magic field {m}"),
            WireError::UnexpectedOpcode(op) => write!(f, "unexpected opcode byte {op:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The fixed header of a NetRS request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RequestHeader {
    /// RSNode ID (RID segment).
    pub rid: RsnodeId,
    /// Magic field (MF segment).
    pub magic: MagicField,
    /// Retaining value (RV segment).
    pub rv: u16,
    /// Replica group ID (RGID segment).
    pub rgid: Rgid,
}

impl RequestHeader {
    /// Serializes the header followed by the application payload.
    #[must_use]
    pub fn encode(&self, payload: &[u8]) -> Bytes {
        let mut buf = BytesMut::with_capacity(REQUEST_HEADER_LEN + payload.len());
        buf.put_u16(self.rid.0);
        buf.put_slice(&self.magic.0);
        buf.put_u16(self.rv);
        buf.put_uint(u64::from(self.rgid.0), 3);
        buf.put_slice(payload);
        buf.freeze()
    }

    /// Parses a request, returning the header and the application payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if the buffer is too short.
    pub fn decode(buf: &[u8]) -> Result<(RequestHeader, Bytes), WireError> {
        if buf.len() < REQUEST_HEADER_LEN {
            return Err(WireError::Truncated {
                needed: REQUEST_HEADER_LEN,
                got: buf.len(),
            });
        }
        let rid = RsnodeId(u16::from_be_bytes([buf[0], buf[1]]));
        let mut magic = [0u8; 6];
        magic.copy_from_slice(&buf[2..8]);
        let rv = u16::from_be_bytes([buf[8], buf[9]]);
        let rgid = Rgid(u32::from_be_bytes([0, buf[10], buf[11], buf[12]]));
        Ok((
            RequestHeader {
                rid,
                magic: MagicField(magic),
                rv,
                rgid,
            },
            Bytes::copy_from_slice(&buf[REQUEST_HEADER_LEN..]),
        ))
    }
}

/// The header of a NetRS response, including the piggybacked server status
/// (SS segment, with its SSL length prefix).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResponseHeader {
    /// RSNode ID copied from the corresponding request.
    pub rid: RsnodeId,
    /// Magic field (`f⁻¹` of the request's magic, per §IV-C).
    pub magic: MagicField,
    /// Retaining value echoed from the request.
    pub rv: u16,
    /// Source marker stamped by the server-side ToR.
    pub sm: SourceMarker,
    /// Piggybacked server status (SS segment).
    pub status: Bytes,
}

impl ResponseHeader {
    /// Serializes the header followed by the application payload.
    ///
    /// # Panics
    ///
    /// Panics if the status segment exceeds the 2-byte SSL range
    /// (65535 bytes) — server status is a few bytes by design.
    #[must_use]
    pub fn encode(&self, payload: &[u8]) -> Bytes {
        assert!(
            self.status.len() <= usize::from(u16::MAX),
            "server status too large for SSL"
        );
        let mut buf =
            BytesMut::with_capacity(RESPONSE_FIXED_LEN + self.status.len() + payload.len());
        buf.put_u16(self.rid.0);
        buf.put_slice(&self.magic.0);
        buf.put_u16(self.rv);
        buf.put_u16(self.sm.pod);
        buf.put_u16(self.sm.rack);
        buf.put_u16(self.status.len() as u16);
        buf.put_slice(&self.status);
        buf.put_slice(payload);
        buf.freeze()
    }

    /// Parses a response, returning the header and the application
    /// payload.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Truncated`] if the buffer is shorter than the
    /// fixed header plus the declared SS length.
    pub fn decode(buf: &[u8]) -> Result<(ResponseHeader, Bytes), WireError> {
        if buf.len() < RESPONSE_FIXED_LEN {
            return Err(WireError::Truncated {
                needed: RESPONSE_FIXED_LEN,
                got: buf.len(),
            });
        }
        let rid = RsnodeId(u16::from_be_bytes([buf[0], buf[1]]));
        let mut magic = [0u8; 6];
        magic.copy_from_slice(&buf[2..8]);
        let rv = u16::from_be_bytes([buf[8], buf[9]]);
        let sm = SourceMarker {
            pod: u16::from_be_bytes([buf[10], buf[11]]),
            rack: u16::from_be_bytes([buf[12], buf[13]]),
        };
        let ssl = usize::from(u16::from_be_bytes([buf[14], buf[15]]));
        let total = RESPONSE_FIXED_LEN + ssl;
        if buf.len() < total {
            return Err(WireError::Truncated {
                needed: total,
                got: buf.len(),
            });
        }
        Ok((
            ResponseHeader {
                rid,
                magic: MagicField(magic),
                rv,
                sm,
                status: Bytes::copy_from_slice(&buf[RESPONSE_FIXED_LEN..total]),
            },
            Bytes::copy_from_slice(&buf[total..]),
        ))
    }
}

/// A `SET` command as framed in the application payload of a request.
///
/// Writes ride the same NetRS request header as reads — the switch
/// pipeline classifies on the magic field and never inspects payloads —
/// so the `SET` frame is purely an end-host (and future emu/serving
/// path) contract:
///
/// ```text
/// SET frame: OP(1)=0x53 KEY(8) VLEN(4) VALUE(vlen) | trailing bytes
/// ```
///
/// The value is length-prefixed rather than delimiter-terminated so a
/// frame can be followed by further application data (e.g. a pipelined
/// command) without a schema break.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SetCommand {
    /// The 64-bit key hash being written.
    pub key: u64,
    /// The value bytes.
    pub value: Bytes,
}

impl SetCommand {
    /// Serializes the frame.
    ///
    /// # Panics
    ///
    /// Panics if the value exceeds the 4-byte VLEN range — a single
    /// key-value write is megabytes at most by design.
    #[must_use]
    pub fn encode(&self) -> Bytes {
        assert!(
            u32::try_from(self.value.len()).is_ok(),
            "SET value too large for VLEN"
        );
        let mut buf = BytesMut::with_capacity(SET_FIXED_LEN + self.value.len());
        buf.put_u8(OP_SET);
        buf.put_u64(self.key);
        buf.put_u32(self.value.len() as u32);
        buf.put_slice(&self.value);
        buf.freeze()
    }

    /// Parses a `SET` frame, returning the command and any trailing
    /// bytes after the value.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedOpcode`] if the first byte is not
    /// [`OP_SET`], or [`WireError::Truncated`] if the buffer is shorter
    /// than the fixed frame plus the declared value length.
    pub fn decode(buf: &[u8]) -> Result<(SetCommand, Bytes), WireError> {
        if buf.len() < SET_FIXED_LEN {
            return Err(WireError::Truncated {
                needed: SET_FIXED_LEN,
                got: buf.len(),
            });
        }
        if buf[0] != OP_SET {
            return Err(WireError::UnexpectedOpcode(buf[0]));
        }
        let key = u64::from_be_bytes(buf[1..9].try_into().expect("length checked"));
        let vlen = u32::from_be_bytes(buf[9..13].try_into().expect("length checked")) as usize;
        let total = SET_FIXED_LEN + vlen;
        if buf.len() < total {
            return Err(WireError::Truncated {
                needed: total,
                got: buf.len(),
            });
        }
        Ok((
            SetCommand {
                key,
                value: Bytes::copy_from_slice(&buf[SET_FIXED_LEN..total]),
            },
            Bytes::copy_from_slice(&buf[total..]),
        ))
    }
}

/// Reads only the magic field of a packet and classifies it, as the first
/// match stage of the switch pipeline does. Buffers too short to carry a
/// magic field classify as [`PacketKind::Other`].
#[must_use]
pub fn classify(buf: &[u8]) -> PacketKind {
    if buf.len() < MAGIC_OFFSET + 6 {
        return PacketKind::Other;
    }
    let mut magic = [0u8; 6];
    magic.copy_from_slice(&buf[MAGIC_OFFSET..MAGIC_OFFSET + 6]);
    MagicField(magic).kind()
}

/// Reads only the RID segment of a NetRS packet (both formats place it
/// first), as the second match stage of the switch pipeline does.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] on buffers shorter than 2 bytes.
pub fn peek_rid(buf: &[u8]) -> Result<RsnodeId, WireError> {
    if buf.len() < 2 {
        return Err(WireError::Truncated {
            needed: 2,
            got: buf.len(),
        });
    }
    Ok(RsnodeId(u16::from_be_bytes([buf[0], buf[1]])))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let hdr = RequestHeader {
            rid: RsnodeId(300),
            magic: MagicField::REQUEST,
            rv: 0xBEEF,
            rgid: Rgid::new(Rgid::MAX).unwrap(),
        };
        let wire = hdr.encode(b"payload bytes");
        assert_eq!(wire.len(), REQUEST_HEADER_LEN + 13);
        let (back, payload) = RequestHeader::decode(&wire).unwrap();
        assert_eq!(back, hdr);
        assert_eq!(&payload[..], b"payload bytes");
    }

    #[test]
    fn response_round_trip_with_status() {
        let hdr = ResponseHeader {
            rid: RsnodeId(7),
            magic: MagicField::RESPONSE,
            rv: 0x1234,
            sm: SourceMarker { pod: 3, rack: 25 },
            status: Bytes::from_static(&[1, 2, 3, 4, 5]),
        };
        let wire = hdr.encode(b"value!");
        let (back, payload) = ResponseHeader::decode(&wire).unwrap();
        assert_eq!(back, hdr);
        assert_eq!(&payload[..], b"value!");
    }

    #[test]
    fn response_round_trip_empty_status_and_payload() {
        let hdr = ResponseHeader {
            rid: RsnodeId(0),
            magic: MagicField::MONITORED,
            rv: 0,
            sm: SourceMarker::default(),
            status: Bytes::new(),
        };
        let wire = hdr.encode(b"");
        assert_eq!(wire.len(), RESPONSE_FIXED_LEN);
        let (back, payload) = ResponseHeader::decode(&wire).unwrap();
        assert_eq!(back, hdr);
        assert!(payload.is_empty());
    }

    #[test]
    fn truncated_buffers_are_rejected_with_sizes() {
        let err = RequestHeader::decode(&[0u8; 5]).unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                needed: REQUEST_HEADER_LEN,
                got: 5
            }
        );
        // A response whose SSL claims more status bytes than present.
        let hdr = ResponseHeader {
            rid: RsnodeId(1),
            magic: MagicField::RESPONSE,
            rv: 0,
            sm: SourceMarker { pod: 0, rack: 0 },
            status: Bytes::from_static(&[9; 10]),
        };
        let wire = hdr.encode(b"");
        let cut = &wire[..wire.len() - 3];
        let err = ResponseHeader::decode(cut).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
        assert!(err.to_string().contains("truncated"));
    }

    #[test]
    fn rgid_range_is_enforced() {
        assert!(Rgid::new(Rgid::MAX).is_ok());
        assert_eq!(
            Rgid::new(Rgid::MAX + 1),
            Err(WireError::RgidOutOfRange(Rgid::MAX + 1))
        );
    }

    #[test]
    fn magic_f_is_an_involution_with_required_separation() {
        for m in [
            MagicField::REQUEST,
            MagicField::RESPONSE,
            MagicField::MONITORED,
        ] {
            assert_eq!(m.f().f_inv(), m);
            assert_ne!(m.f(), m);
        }
        // §IV-C: f(M_resp) must differ from both M_req and M_resp.
        let f_resp = MagicField::RESPONSE.f();
        assert_ne!(f_resp, MagicField::REQUEST);
        assert_ne!(f_resp, MagicField::RESPONSE);
        assert_ne!(f_resp, MagicField::MONITORED);
        // And the transformed labels must all be "Other" to switches.
        assert_eq!(f_resp.kind(), PacketKind::Other);
        assert_eq!(MagicField::MONITORED.f().kind(), PacketKind::Other);
    }

    #[test]
    fn selector_server_handshake_recovers_labels() {
        // Selector rewrites a request's magic to f(M_resp); the server
        // answers with f⁻¹ of what it saw — which must be M_resp.
        let at_server = MagicField::RESPONSE.f();
        assert_eq!(at_server.f_inv(), MagicField::RESPONSE);
        // Under DRS the ToR stamps f(M_mon); the response surfaces M_mon.
        let drs = MagicField::MONITORED.f();
        assert_eq!(drs.f_inv(), MagicField::MONITORED);
    }

    #[test]
    fn classify_reads_only_the_magic() {
        let req = RequestHeader {
            rid: RsnodeId(9),
            magic: MagicField::REQUEST,
            rv: 1,
            rgid: Rgid::new(5).unwrap(),
        }
        .encode(b"x");
        assert_eq!(classify(&req), PacketKind::NetRsRequest);

        let resp = ResponseHeader {
            rid: RsnodeId(9),
            magic: MagicField::RESPONSE,
            rv: 1,
            sm: SourceMarker { pod: 1, rack: 2 },
            status: Bytes::new(),
        }
        .encode(b"y");
        assert_eq!(classify(&resp), PacketKind::NetRsResponse);

        assert_eq!(classify(b"tiny"), PacketKind::Other);
        assert_eq!(classify(&[0u8; 64]), PacketKind::Other);
    }

    #[test]
    fn peek_rid_matches_decode() {
        let hdr = RequestHeader {
            rid: RsnodeId(4242),
            magic: MagicField::REQUEST,
            rv: 0,
            rgid: Rgid::new(1).unwrap(),
        };
        let wire = hdr.encode(b"");
        assert_eq!(peek_rid(&wire).unwrap(), RsnodeId(4242));
        assert!(peek_rid(&[1]).is_err());
    }

    #[test]
    fn illegal_rid_round_trips() {
        let hdr = RequestHeader {
            rid: RsnodeId::ILLEGAL,
            magic: MagicField::REQUEST,
            rv: 0,
            rgid: Rgid::new(0).unwrap(),
        };
        let (back, _) = RequestHeader::decode(&hdr.encode(b"")).unwrap();
        assert!(!back.rid.is_legal());
        assert_eq!(RsnodeId::ILLEGAL.to_string(), "rsn-illegal");
    }

    #[test]
    fn source_marker_comparisons() {
        let a = SourceMarker { pod: 1, rack: 10 };
        let b = SourceMarker { pod: 1, rack: 11 };
        let c = SourceMarker { pod: 2, rack: 20 };
        assert!(a.same_pod(b) && !a.same_rack(b));
        assert!(!a.same_pod(c) && !a.same_rack(c));
        assert!(a.same_pod(a) && a.same_rack(a));
    }

    #[test]
    fn set_frame_round_trips_with_trailing_bytes() {
        let cmd = SetCommand {
            key: 0xDEAD_BEEF_CAFE_F00D,
            value: Bytes::from_static(b"hello"),
        };
        let mut wire = cmd.encode().to_vec();
        wire.extend_from_slice(b"next");
        let (back, rest) = SetCommand::decode(&wire).unwrap();
        assert_eq!(back, cmd);
        assert_eq!(&rest[..], b"next");
    }

    #[test]
    fn set_frame_is_byte_exact() {
        let cmd = SetCommand {
            key: 0x0102_0304_0506_0708,
            value: Bytes::from_static(&[0xAA, 0xBB]),
        };
        let wire = cmd.encode();
        assert_eq!(wire.len(), SET_FIXED_LEN + 2);
        assert_eq!(wire[0], OP_SET);
        assert_eq!(&wire[1..9], &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(&wire[9..13], &[0, 0, 0, 2], "VLEN is big-endian");
        assert_eq!(&wire[13..], &[0xAA, 0xBB]);
    }

    #[test]
    fn set_frame_rejects_bad_opcode_and_truncation() {
        let err = SetCommand::decode(&[0u8; 5]).unwrap_err();
        assert_eq!(
            err,
            WireError::Truncated {
                needed: SET_FIXED_LEN,
                got: 5
            }
        );
        let mut wire = SetCommand {
            key: 1,
            value: Bytes::from_static(b"v"),
        }
        .encode()
        .to_vec();
        wire[0] = 0x47;
        let err = SetCommand::decode(&wire).unwrap_err();
        assert_eq!(err, WireError::UnexpectedOpcode(0x47));
        assert!(err.to_string().contains("opcode"));
        // VLEN promises more value bytes than the buffer carries.
        let cut = SetCommand {
            key: 1,
            value: Bytes::from_static(&[7; 10]),
        }
        .encode();
        let err = SetCommand::decode(&cut[..cut.len() - 3]).unwrap_err();
        assert!(matches!(err, WireError::Truncated { .. }));
    }

    #[test]
    fn header_lengths_match_paper_segments() {
        // Request: 2 + 6 + 2 + 3 = 13 bytes of NetRS header.
        assert_eq!(REQUEST_HEADER_LEN, 13);
        // Response fixed part: 2 + 6 + 2 + 4 + 2 = 16 bytes.
        assert_eq!(RESPONSE_FIXED_LEN, 16);
    }
}
