//! Property-based tests for the NetRS wire formats.

use bytes::Bytes;
use netrs_wire::{
    classify, peek_rid, MagicField, PacketKind, RequestHeader, ResponseHeader, Rgid, RsnodeId,
    SetCommand, SourceMarker, WireError, OP_SET, SET_FIXED_LEN,
};
use proptest::prelude::*;

fn arb_magic() -> impl Strategy<Value = MagicField> {
    any::<[u8; 6]>().prop_map(MagicField)
}

proptest! {
    /// Any request header round-trips through the wire format.
    #[test]
    fn request_round_trips(
        rid in any::<u16>(),
        magic in arb_magic(),
        rv in any::<u16>(),
        rgid in 0u32..=Rgid::MAX,
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let hdr = RequestHeader {
            rid: RsnodeId(rid),
            magic,
            rv,
            rgid: Rgid::new(rgid).unwrap(),
        };
        let wire = hdr.encode(&payload);
        let (back, body) = RequestHeader::decode(&wire).unwrap();
        prop_assert_eq!(back, hdr);
        prop_assert_eq!(&body[..], &payload[..]);
    }

    /// Any response header round-trips through the wire format.
    #[test]
    fn response_round_trips(
        rid in any::<u16>(),
        magic in arb_magic(),
        rv in any::<u16>(),
        pod in any::<u16>(),
        rack in any::<u16>(),
        status in proptest::collection::vec(any::<u8>(), 0..64),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let hdr = ResponseHeader {
            rid: RsnodeId(rid),
            magic,
            rv,
            sm: SourceMarker { pod, rack },
            status: Bytes::from(status.clone()),
        };
        let wire = hdr.encode(&payload);
        let (back, body) = ResponseHeader::decode(&wire).unwrap();
        prop_assert_eq!(back, hdr);
        prop_assert_eq!(&body[..], &payload[..]);
    }

    /// Any SET frame round-trips byte-exactly, trailing bytes included.
    #[test]
    fn set_round_trips(
        key in any::<u64>(),
        value in proptest::collection::vec(any::<u8>(), 0..256),
        trailing in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let cmd = SetCommand { key, value: Bytes::from(value.clone()) };
        let mut wire = cmd.encode().to_vec();
        prop_assert_eq!(wire.len(), SET_FIXED_LEN + value.len());
        prop_assert_eq!(wire[0], OP_SET);
        wire.extend_from_slice(&trailing);
        let (back, rest) = SetCommand::decode(&wire).unwrap();
        prop_assert_eq!(back, cmd);
        prop_assert_eq!(&rest[..], &trailing[..]);
    }

    /// Decoding never panics on arbitrary bytes; it either parses or
    /// returns a structured error.
    #[test]
    fn decode_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        match RequestHeader::decode(&bytes) {
            Ok(_) => prop_assert!(bytes.len() >= netrs_wire::REQUEST_HEADER_LEN),
            Err(WireError::Truncated { got, .. }) => prop_assert_eq!(got, bytes.len()),
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
        let _ = ResponseHeader::decode(&bytes);
        let _ = classify(&bytes);
        let _ = peek_rid(&bytes);
        match SetCommand::decode(&bytes) {
            Ok((cmd, rest)) => {
                prop_assert_eq!(SET_FIXED_LEN + cmd.value.len() + rest.len(), bytes.len());
            }
            Err(WireError::Truncated { got, .. }) => prop_assert_eq!(got, bytes.len()),
            Err(WireError::UnexpectedOpcode(op)) => prop_assert_eq!(op, bytes[0]),
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    /// The magic-field transform is a self-inverse bijection.
    #[test]
    fn f_is_involution(magic in arb_magic()) {
        prop_assert_eq!(magic.f().f(), magic);
        prop_assert_ne!(magic.f(), magic); // key has no zero byte
    }

    /// classify agrees with full decoding for well-formed requests.
    #[test]
    fn classify_agrees_with_headers(rid in any::<u16>(), rgid in 0u32..=Rgid::MAX) {
        let req = RequestHeader {
            rid: RsnodeId(rid),
            magic: MagicField::REQUEST,
            rv: 0,
            rgid: Rgid::new(rgid).unwrap(),
        }.encode(b"k");
        prop_assert_eq!(classify(&req), PacketKind::NetRsRequest);
        prop_assert_eq!(peek_rid(&req).unwrap(), RsnodeId(rid));
    }
}
