//! End-to-end simulation benchmarks: one small cluster run per scheme,
//! so `cargo bench` exercises the full request pipeline of each figure's
//! series and tracks simulator throughput (events/second) over time.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use netrs_sim::{run, Scheme, SimConfig};

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_scheme_run");
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let mut cfg = SimConfig::small();
                    cfg.requests = 2_000;
                    cfg.scheme = scheme;
                    cfg.seed = 3;
                    black_box(run(cfg))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
