//! Criterion micro-benchmarks of every substrate on the request hot
//! path: event queue, key popularity sampling, wire codecs, routing,
//! consistent hashing, C3 scoring, accelerator bookkeeping, the latency
//! histogram and the placement solver.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use netrs::{PlacementProblem, PlanConstraints, PlanSolver, TrafficGroups, TrafficMatrix};
use netrs_kvstore::Ring;
use netrs_netdev::{Accelerator, AcceleratorConfig};
use netrs_selection::{C3Config, C3Selector, Feedback, ReplicaSelector};
use netrs_simcore::{EventQueue, Histogram, SimDuration, SimRng, SimTime, Zipf};
use netrs_topology::{FatTree, HostId};
use netrs_wire::{
    classify, MagicField, RequestHeader, ResponseHeader, Rgid, RsnodeId, SourceMarker,
};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_1k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule_at(SimTime::from_nanos((i * 7919) % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, ev)) = q.pop() {
                sum += ev;
            }
            black_box(sum)
        });
    });
}

fn bench_zipf(c: &mut Criterion) {
    let zipf = Zipf::new(100_000_000, 0.99);
    let mut rng = SimRng::from_seed(1);
    c.bench_function("zipf/sample_100M_keys", |b| {
        b.iter(|| black_box(zipf.sample(&mut rng)));
    });
}

fn bench_wire(c: &mut Criterion) {
    let req = RequestHeader {
        rid: RsnodeId(42),
        magic: MagicField::REQUEST,
        rv: 7,
        rgid: Rgid::new(123_456).unwrap(),
    };
    let payload = [0u8; 64];
    let wire = req.encode(&payload);
    c.bench_function("wire/encode_request_64B", |b| {
        b.iter(|| black_box(req.encode(black_box(&payload))));
    });
    c.bench_function("wire/decode_request", |b| {
        b.iter(|| black_box(RequestHeader::decode(black_box(&wire)).unwrap()));
    });
    c.bench_function("wire/classify", |b| {
        b.iter(|| black_box(classify(black_box(&wire))));
    });
    let resp = ResponseHeader {
        rid: RsnodeId(42),
        magic: MagicField::RESPONSE,
        rv: 7,
        sm: SourceMarker { pod: 3, rack: 25 },
        status: netrs_kvstore::ServerStatus {
            queue_len: 5,
            service_time_ns: 4_000_000,
        }
        .encode(),
    }
    .encode(&payload);
    c.bench_function("wire/decode_response_with_status", |b| {
        b.iter(|| black_box(ResponseHeader::decode(black_box(&resp)).unwrap()));
    });
}

fn bench_topology(c: &mut Criterion) {
    let topo = FatTree::new(16).unwrap();
    c.bench_function("topology/path_cross_pod", |b| {
        let mut h = 0u64;
        b.iter(|| {
            h = h.wrapping_add(1);
            black_box(topo.path(HostId(3), HostId(900), h))
        });
    });
    let core = topo.core(17);
    c.bench_function("topology/path_via_rsnode", |b| {
        let mut h = 0u64;
        b.iter(|| {
            h = h.wrapping_add(1);
            black_box(topo.path_via(HostId(3), core, HostId(900), h))
        });
    });
    // Closed-form hop counts — what the Fabric timing fast path uses
    // instead of materializing the paths above.
    c.bench_function("topology/hops_cross_pod", |b| {
        b.iter(|| black_box(topo.hops(black_box(HostId(3)), black_box(HostId(900)))));
    });
    c.bench_function("topology/hops_via_rsnode", |b| {
        b.iter(|| {
            black_box(topo.hops_via(
                black_box(HostId(3)),
                black_box(core),
                black_box(HostId(900)),
            ))
        });
    });
}

fn bench_ring(c: &mut Criterion) {
    let ring = Ring::new(100, 64, 3, 42).unwrap();
    c.bench_function("ring/replicas_for_key", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(1);
            black_box(ring.replicas_for_key(k))
        });
    });
}

fn bench_c3(c: &mut Criterion) {
    let mut sel = C3Selector::new(C3Config::default(), SimRng::from_seed(3));
    let now = SimTime::ZERO;
    // Warm state for 100 servers.
    for s in 0..100u32 {
        sel.on_response(
            &Feedback {
                server: netrs_kvstore::ServerId(s),
                queue_len: s % 7,
                service_time: SimDuration::from_millis(1 + u64::from(s % 4)),
                latency: SimDuration::from_millis(2 + u64::from(s % 9)),
            },
            now,
        );
    }
    let candidates = [
        netrs_kvstore::ServerId(11),
        netrs_kvstore::ServerId(47),
        netrs_kvstore::ServerId(93),
    ];
    c.bench_function("c3/select_among_3_replicas", |b| {
        b.iter(|| black_box(sel.select(black_box(&candidates), now)));
    });
}

fn bench_accelerator(c: &mut Criterion) {
    c.bench_function("accelerator/schedule_selection", |b| {
        let mut accel = Accelerator::new(AcceleratorConfig::default());
        let mut t = SimTime::ZERO;
        b.iter(|| {
            t += SimDuration::from_micros(10);
            black_box(accel.schedule_selection(t))
        });
    });
}

fn bench_histogram(c: &mut Criterion) {
    c.bench_function("histogram/record", |b| {
        let mut h = Histogram::new();
        let mut v = 1u64;
        b.iter(|| {
            v = (v.wrapping_mul(6364136223846793005)).wrapping_add(1);
            h.record_nanos(v % 100_000_000);
        });
    });
    let mut h = Histogram::new();
    for v in 0..100_000u64 {
        h.record_nanos(v * 997);
    }
    c.bench_function("histogram/p99", |b| {
        b.iter(|| black_box(h.percentile(99.0)));
    });
}

fn bench_placement(c: &mut Criterion) {
    let topo = FatTree::new(8).unwrap();
    let mut rng = SimRng::from_seed(5);
    let picks = rng.sample_indices(topo.num_hosts() as usize, 56);
    let hosts: Vec<HostId> = picks.into_iter().map(|h| HostId(h as u32)).collect();
    let (servers, clients) = hosts.split_at(24);
    let groups = TrafficGroups::rack_level(&topo, clients);
    let rates: Vec<(HostId, f64)> = clients.iter().map(|&h| (h, 400.0)).collect();
    let traffic = TrafficMatrix::oracle(&topo, &groups, &rates, servers);
    let cons = PlanConstraints::default();
    c.bench_function("placement/greedy_8ary", |b| {
        b.iter(|| {
            let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
            black_box(p.solve(PlanSolver::Greedy))
        });
    });
    c.bench_function("placement/auto_8ary", |b| {
        b.iter(|| {
            let p = PlacementProblem::new(&topo, &groups, &traffic, &cons);
            black_box(p.solve(PlanSolver::Auto { node_limit: 20 }))
        });
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_zipf,
    bench_wire,
    bench_topology,
    bench_ring,
    bench_c3,
    bench_accelerator,
    bench_histogram,
    bench_placement
);
criterion_main!(benches);
