//! The figure-reproduction harness.
//!
//! One [`FigureSpec`] per evaluation figure of the paper (Fig. 4–7), each
//! sweeping the same parameter over the same values, plus the §V-A RSP
//! worked example and the ablations called out in DESIGN.md. The `repro`
//! binary drives these; the library form keeps the sweep definitions
//! testable.
//!
//! Figures report, per scheme per sweep point, the same four statistics
//! as the paper's panels: average, 95th, 99th and 99.9th percentile
//! response latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use netrs::{PlacementProblem, PlanConstraints, PlanSolver, TrafficGroups, TrafficMatrix};
use netrs_selection::CubicConfig;
use netrs_sim::{
    run_observed, run_observed_sharded_parallel, run_seeds, HostMeta, HostProfile, MeanStats,
    ObsOptions, ParallelOptions, ParallelPerf, PerfArtifact, PerfOptions, QueueStats, RunStats,
    Scheme, SimConfig, PERF_SCHEMA_VERSION,
};
use netrs_simcore::{SimDuration, SimRng};
use netrs_topology::{FatTree, HostId};
use serde::{Serialize, Value};

pub use netrs_simcore::peak_rss_kb;

/// One sweep point: a label for the x-axis plus the configuration
/// overrides that realize it.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// X-axis label (e.g. `"500"` clients, `"70%"` skew).
    pub label: String,
    /// The fully materialized configuration of this point (scheme is
    /// filled in per row by the runner).
    pub config: SimConfig,
}

/// A figure to regenerate: an id, a caption and its sweep.
#[derive(Debug, Clone)]
pub struct FigureSpec {
    /// Identifier (`fig4` … `fig7`, `ablate-…`).
    pub id: &'static str,
    /// Human-readable caption (matches the paper's).
    pub title: &'static str,
    /// What the sweep varies.
    pub sweep: &'static str,
    /// The sweep points.
    pub points: Vec<SweepPoint>,
    /// The schemes compared at every point.
    pub schemes: Vec<Scheme>,
}

/// Results of one figure: `cells[point][scheme]`.
#[derive(Debug, Clone, Serialize)]
pub struct FigureResult {
    /// The figure id.
    pub id: String,
    /// The caption.
    pub title: String,
    /// Point labels (x axis).
    pub labels: Vec<String>,
    /// Scheme labels (series).
    pub schemes: Vec<String>,
    /// Seed-averaged statistics per `[point][scheme]`.
    pub cells: Vec<Vec<MeanStats>>,
    /// Raw per-seed statistics per `[point][scheme]`.
    pub raw: Vec<Vec<Vec<RunStats>>>,
}

/// The paper's base setup with a configurable request budget (the paper
/// uses 6 M; the default harness budget trades absolute smoothness for
/// wall-clock time and is set by the caller).
#[must_use]
pub fn paper_base(requests: u64) -> SimConfig {
    let mut cfg = SimConfig::paper();
    cfg.requests = requests;
    cfg
}

/// Fig. 4: impact of the number of clients (100–700), 90 % utilization,
/// no skew.
#[must_use]
pub fn fig4(base: &SimConfig) -> FigureSpec {
    let points = [100u32, 300, 500, 700]
        .into_iter()
        .map(|clients| {
            let mut cfg = base.clone();
            cfg.clients = clients;
            SweepPoint {
                label: clients.to_string(),
                config: cfg,
            }
        })
        .collect();
    FigureSpec {
        id: "fig4",
        title: "Impact of the number of clients (Fig. 4)",
        sweep: "clients",
        points,
        schemes: Scheme::ALL.to_vec(),
    }
}

/// Fig. 5: impact of demand skewness (top-20 % clients issue 70–95 % of
/// requests), 500 clients.
#[must_use]
pub fn fig5(base: &SimConfig) -> FigureSpec {
    let points = [0.70f64, 0.80, 0.90, 0.95]
        .into_iter()
        .map(|skew| {
            let mut cfg = base.clone();
            cfg.demand_skew = Some(skew);
            SweepPoint {
                label: format!("{:.0}%", skew * 100.0),
                config: cfg,
            }
        })
        .collect();
    FigureSpec {
        id: "fig5",
        title: "Impact of demand skewness (Fig. 5)",
        sweep: "demand skew",
        points,
        schemes: Scheme::ALL.to_vec(),
    }
}

/// Fig. 6: impact of system utilization (30–90 %).
#[must_use]
pub fn fig6(base: &SimConfig) -> FigureSpec {
    let points = [0.3f64, 0.5, 0.7, 0.9]
        .into_iter()
        .map(|util| {
            let mut cfg = base.clone();
            cfg.utilization = util;
            // E = 20%·A must track the changed arrival rate.
            cfg.plan.extra_hop_budget = f64::INFINITY;
            SweepPoint {
                label: format!("{:.0}%", util * 100.0),
                config: cfg,
            }
        })
        .collect();
    FigureSpec {
        id: "fig6",
        title: "Impact of system utilization (Fig. 6)",
        sweep: "utilization",
        points,
        schemes: Scheme::ALL.to_vec(),
    }
}

/// Fig. 7: impact of the mean service time (0.1–4 ms).
#[must_use]
pub fn fig7(base: &SimConfig) -> FigureSpec {
    let points = [100u64, 500, 1_000, 2_000, 4_000]
        .into_iter()
        .map(|micros| {
            let mut cfg = base.clone();
            cfg.server.base_service_time = SimDuration::from_micros(micros);
            cfg.plan.extra_hop_budget = f64::INFINITY; // re-derive 20%·A
            SweepPoint {
                label: format!("{:.1}", micros as f64 / 1_000.0),
                config: cfg,
            }
        })
        .collect();
    FigureSpec {
        id: "fig7",
        title: "Impact of the service time (Fig. 7)",
        sweep: "service time (ms)",
        points,
        schemes: Scheme::ALL.to_vec(),
    }
}

/// ABL-E: sweep the extra-hop budget E for NetRS-ILP.
#[must_use]
pub fn ablate_hops(base: &SimConfig) -> FigureSpec {
    let a = base.arrival_rate();
    let points = [0.0f64, 0.02, 0.2, 1.0]
        .into_iter()
        .map(|frac| {
            let mut cfg = base.clone();
            cfg.plan.extra_hop_budget = frac * a;
            SweepPoint {
                label: format!("{:.0}%A", frac * 100.0),
                config: cfg,
            }
        })
        .collect();
    FigureSpec {
        id: "ablate-hops",
        title: "Ablation: extra-hop budget E (NetRS-ILP)",
        sweep: "hop budget",
        points,
        schemes: vec![Scheme::NetRsIlp],
    }
}

/// ABL-U: sweep the accelerator utilization cap U for NetRS-ILP.
#[must_use]
pub fn ablate_cap(base: &SimConfig) -> FigureSpec {
    let points = [0.1f64, 0.25, 0.5, 0.9]
        .into_iter()
        .map(|u| {
            let mut cfg = base.clone();
            cfg.plan.max_utilization = u;
            SweepPoint {
                label: format!("U={:.0}%", u * 100.0),
                config: cfg,
            }
        })
        .collect();
    FigureSpec {
        id: "ablate-cap",
        title: "Ablation: accelerator utilization cap U (NetRS-ILP)",
        sweep: "capacity cap",
        points,
        schemes: vec![Scheme::NetRsIlp],
    }
}

/// ABL-G: traffic-group granularity for NetRS-ILP.
#[must_use]
pub fn ablate_group(base: &SimConfig) -> FigureSpec {
    use netrs::Granularity;
    let grans = [
        ("host", Granularity::Host),
        ("sub-rack(2)", Granularity::SubRack(2)),
        ("rack", Granularity::Rack),
    ];
    let points = grans
        .into_iter()
        .map(|(label, g)| {
            let mut cfg = base.clone();
            cfg.granularity = g;
            // Finer groups explode the exact model; greedy handles them
            // (the paper makes the same flexibility/effort trade-off).
            if !matches!(g, Granularity::Rack) {
                cfg.plan_solver = PlanSolver::Greedy;
            }
            SweepPoint {
                label: label.to_string(),
                config: cfg,
            }
        })
        .collect();
    FigureSpec {
        id: "ablate-group",
        title: "Ablation: traffic-group granularity (NetRS-ILP)",
        sweep: "granularity",
        points,
        schemes: vec![Scheme::NetRsIlp],
    }
}

/// ABL-B: C3 design knobs under CliRS — scoring exponent b and cubic
/// rate control.
#[must_use]
pub fn ablate_c3(base: &SimConfig) -> FigureSpec {
    let variants: Vec<(String, f64, bool)> = vec![
        ("b=1".into(), 1.0, false),
        ("b=2".into(), 2.0, false),
        ("b=3".into(), 3.0, false),
        ("b=3+CRC".into(), 3.0, true),
    ];
    let points = variants
        .into_iter()
        .map(|(label, b, crc)| {
            let mut cfg = base.clone();
            cfg.c3.exponent = b;
            // Make the token buckets actually bind: budget each
            // (client, server) lane at ~1/10th of a client's total rate,
            // so bursts toward one hot replica are spread out.
            cfg.rate_control = crc.then(|| CubicConfig {
                init_rate: cfg.arrival_rate() / f64::from(cfg.clients) / 10.0,
                smax: 20.0,
                ..CubicConfig::default()
            });
            SweepPoint { label, config: cfg }
        })
        .collect();
    FigureSpec {
        id: "ablate-c3",
        title: "Ablation: C3 scoring exponent and rate control (CliRS)",
        sweep: "C3 variant",
        points,
        schemes: vec![Scheme::CliRs],
    }
}

/// Runs one scheme on `cfg` with the host profiler attached and returns
/// its [`HostProfile`] relabeled to `label`.
///
/// The profiler's strided sampling costs a few percent of throughput, so
/// profiled events/s runs slightly below an unobserved run — consistent
/// across suites, which is what the before/after comparisons need. Peak
/// RSS is monotonic across the process lifetime, so later schemes in one
/// suite inherit earlier peaks; compare suites, not schemes, on that
/// column.
#[must_use]
pub fn run_perf_profile(cfg: &SimConfig, scheme: Scheme, label: &str) -> HostProfile {
    let mut cfg = cfg.clone();
    cfg.scheme = scheme;
    let obs = ObsOptions {
        perf: Some(PerfOptions::default()),
        ..ObsOptions::default()
    };
    let mut out = run_observed(cfg, obs);
    let mut profile = out.perf.take().expect("perf profiling was requested");
    profile.label = label.into();
    profile
}

/// Runs the perf suite — every scheme once on `cfg` with the host
/// profiler attached. `tag` prefixes each label (`"after/CliRS"`) so
/// successive suites coexist in one artifact.
#[must_use]
pub fn run_perf_suite(cfg: &SimConfig, tag: Option<&str>) -> Vec<HostProfile> {
    Scheme::ALL
        .iter()
        .map(|&scheme| {
            let label = match tag {
                Some(t) => format!("{t}/{}", scheme.label()),
                None => scheme.label().to_string(),
            };
            eprintln!("perf: running {label}...");
            run_perf_profile(cfg, scheme, &label)
        })
        .collect()
}

/// One measured cell of the sharded-parallel throughput grid. `shards ==
/// 0` runs the plain sequential engine (the `seq` baseline row); any
/// other value goes through [`run_observed_sharded_parallel`], so the
/// row measures exactly what `simulate --shards S --threads T` runs.
/// The fastest of `repeats` runs is kept — the simulation bytes are
/// identical across repeats, only the wall clock varies.
fn run_parallel_cell(cfg: &SimConfig, shards: u32, threads: usize, repeats: u32) -> HostProfile {
    let mut best: Option<netrs_sim::RunOutput> = None;
    for _ in 0..repeats.max(1) {
        let out = if shards == 0 {
            run_observed(cfg.clone(), ObsOptions::default())
        } else {
            run_observed_sharded_parallel(
                cfg.clone(),
                shards,
                ParallelOptions {
                    threads,
                    lookahead_mult: 1,
                },
                ObsOptions::default(),
            )
        };
        if best
            .as_ref()
            .is_none_or(|b| out.profile.wall_seconds < b.profile.wall_seconds)
        {
            best = Some(out);
        }
    }
    let out = best.expect("at least one repeat ran");
    let events = out.stats.events;
    // Max/mean per-shard busy time; 0.0 when the run had no worker pool
    // (sequential baseline or fallback path) — "not measured", not
    // "perfectly balanced".
    let busy_imbalance = out.busy_ns.as_ref().map_or(0.0, |busy| {
        let max = busy.iter().copied().max().unwrap_or(0) as f64;
        let mean = busy.iter().copied().sum::<u64>() as f64 / busy.len().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            0.0
        }
    });
    // A 1-shard parallel cell collapses to the sequential engine and so
    // carries no window accounting, but it is still a grid cell — the
    // check-bench gate keys on its `shards == 1 && threads == 1` marker
    // to compare dispatch overhead against the `/seq` baseline row.
    let parallel = out.stats.parallel.map_or_else(
        || {
            (shards > 0).then_some(ParallelPerf {
                shards: shards.max(1),
                threads: 1,
                windows: 0,
                events_per_window: 0.0,
                busy_imbalance,
            })
        },
        |p| {
            Some(ParallelPerf {
                shards: p.shards,
                threads: threads.clamp(1, p.shards as usize) as u32,
                windows: p.windows,
                events_per_window: p.events_per_window(events),
                busy_imbalance,
            })
        },
    );
    HostProfile {
        label: String::new(), // the suite runner fills this in
        schema_version: PERF_SCHEMA_VERSION,
        scheme: cfg.scheme.label().to_string(),
        seed: cfg.seed,
        requests: cfg.requests,
        events,
        wall_s: out.profile.wall_seconds,
        events_per_sec: out.profile.events_per_sec,
        peak_rss_kb: out.profile.peak_rss_kb,
        stride: 0,
        attributed_ns: 0,
        host: HostMeta::detect(),
        queue: QueueStats {
            pushes: out.profile.pushes,
            pops: out.profile.pops,
            high_water: out.profile.queue_high_water as u64,
            depth_hist: Vec::new(),
        },
        alloc: None,
        parallel,
        kinds: Vec::new(),
    }
}

/// Runs the sharded-parallel throughput suite: the sequential-engine
/// baseline (`seq`), then every (shards × threads) cell of the grid —
/// shards 1/2/4/8 (clamped to the topology's pods by the engine) ×
/// threads 1..=cores (powers of two). Labels are
/// `{tag}/sharded-parallel/{seq|sN-tM}`; the `s1-t1` row is what
/// `check-bench` gates against `seq`. Runs under CliRS — the replica
/// engine's home scheme — so multi-thread rows measure the real worker
/// pool, not the fallback.
#[must_use]
pub fn run_parallel_suite(cfg: &SimConfig, tag: Option<&str>, repeats: u32) -> Vec<HostProfile> {
    let mut cfg = cfg.clone();
    cfg.scheme = Scheme::CliRs;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut threads_list = vec![1usize, 2, 4, 8, cores];
    threads_list.retain(|&t| t <= cores);
    threads_list.sort_unstable();
    threads_list.dedup();
    let label = |name: &str| match tag {
        Some(t) => format!("{t}/sharded-parallel/{name}"),
        None => format!("sharded-parallel/{name}"),
    };
    let mut runs = Vec::new();
    eprintln!("perf: running {}...", label("seq"));
    let mut seq = run_parallel_cell(&cfg, 0, 1, repeats);
    seq.label = label("seq");
    runs.push(seq);
    for &shards in &[1u32, 2, 4, 8] {
        for &threads in &threads_list {
            let name = format!("s{shards}-t{threads}");
            eprintln!("perf: running {}...", label(&name));
            let mut cell = run_parallel_cell(&cfg, shards, threads, repeats);
            cell.label = label(&name);
            runs.push(cell);
        }
    }
    runs
}

/// Appends profiled runs to a perf artifact, returning the serialized
/// versioned artifact (`schema_version` + `runs`). `existing` may be a
/// versioned artifact, a bare `simulate --perf` profile, or the legacy
/// flat label → throughput map — legacy entries are upgraded in place
/// (see [`PerfArtifact::from_value`]), so history survives the schema
/// change. The result validates under `netrs-analyze check-bench`.
///
/// # Errors
///
/// Returns an error when `existing` is not valid JSON in any known
/// artifact shape.
pub fn append_perf_artifact(
    existing: Option<&str>,
    runs: Vec<HostProfile>,
) -> Result<String, String> {
    let mut artifact = match existing {
        Some(text) => {
            let v: Value =
                serde_json::from_str(text).map_err(|e| format!("existing artifact: {e}"))?;
            PerfArtifact::from_value(&v).map_err(|e| format!("existing artifact: {e}"))?
        }
        None => PerfArtifact::default(),
    };
    artifact.runs.extend(runs);
    serde_json::to_string_pretty(&artifact).map_err(|e| e.to_string())
}

/// Runs a figure across its sweep and schemes.
#[must_use]
pub fn run_figure(spec: &FigureSpec, seeds: &[u64]) -> FigureResult {
    let mut cells = Vec::new();
    let mut raw = Vec::new();
    for point in &spec.points {
        let mut row = Vec::new();
        let mut row_raw = Vec::new();
        for &scheme in &spec.schemes {
            let mut cfg = point.config.clone();
            cfg.scheme = scheme;
            let runs = run_seeds(&cfg, seeds);
            row.push(RunStats::mean_of(&runs));
            row_raw.push(runs);
        }
        cells.push(row);
        raw.push(row_raw);
    }
    FigureResult {
        id: spec.id.to_string(),
        title: spec.title.to_string(),
        labels: spec.points.iter().map(|p| p.label.clone()).collect(),
        schemes: spec.schemes.iter().map(|s| s.label().to_string()).collect(),
        cells,
        raw,
    }
}

/// Renders a figure result as the four text panels the paper plots
/// (Avg / 95th / 99th / 99.9th, all in milliseconds).
#[must_use]
pub fn render_tables(result: &FigureResult, sweep: &str) -> String {
    use std::fmt::Write;
    type Pick = fn(&MeanStats) -> f64;
    let mut out = String::new();
    let panels: [(&str, Pick); 4] = [
        ("Avg.", |m| m.mean_ms),
        ("95th Percentile", |m| m.p95_ms),
        ("99th Percentile", |m| m.p99_ms),
        ("99.9th Percentile", |m| m.p999_ms),
    ];
    let _ = writeln!(out, "== {} ==", result.title);
    for (panel, pick) in panels {
        let _ = writeln!(out, "\n-- {panel} latency (ms) --");
        let _ = write!(out, "{:<14}", sweep);
        for scheme in &result.schemes {
            let _ = write!(out, "{scheme:>12}");
        }
        let _ = writeln!(out);
        for (label, row) in result.labels.iter().zip(&result.cells) {
            let _ = write!(out, "{label:<14}");
            for cell in row {
                let _ = write!(out, "{:>12.3}", pick(cell));
            }
            let _ = writeln!(out);
        }
    }
    // Plan shape / duplicates context row.
    let _ = writeln!(out, "\n-- RSNodes (mean) / duplicates (mean) --");
    for (label, row) in result.labels.iter().zip(&result.cells) {
        let _ = write!(out, "{label:<14}");
        for cell in row {
            let _ = write!(out, "{:>7.1}/{:<5.0}", cell.rsnodes, cell.duplicates);
        }
        let _ = writeln!(out);
    }
    out
}

/// The §V-A worked RSP example: solve the placement at paper scale under
/// several constraint settings and report the plan shapes.
#[must_use]
pub fn rsp_experiment(seed: u64) -> String {
    use std::fmt::Write;
    let topo = FatTree::new(16).expect("even arity");
    let mut rng = SimRng::from_seed(seed);
    let picks = rng.sample_indices(topo.num_hosts() as usize, 600);
    let hosts: Vec<HostId> = picks.into_iter().map(|h| HostId(h as u32)).collect();
    let (servers, clients) = hosts.split_at(100);
    let groups = TrafficGroups::rack_level(&topo, clients);
    let a = 90_000.0;
    let rates: Vec<(HostId, f64)> = clients
        .iter()
        .map(|&h| (h, a / clients.len() as f64))
        .collect();
    let traffic = TrafficMatrix::oracle(&topo, &groups, &rates, servers);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== RSP worked example (paper: \"6 RSNodes on aggregation switches and 1 on a core switch\") =="
    );
    let _ = writeln!(
        out,
        "16-ary fat-tree, {} groups, A = {:.0} req/s, seed {}\n",
        groups.len(),
        a,
        seed
    );

    let mut shared = PlanConstraints {
        extra_hop_budget: 0.2 * a,
        ..PlanConstraints::default()
    };
    for sw in topo.switches() {
        shared.capacity_overrides.insert(sw.0, 15_000.0);
    }
    let scenarios: Vec<(&str, PlanConstraints)> = vec![
        (
            "paper constants: U=50%, E=20%A, dedicated accelerators",
            PlanConstraints {
                extra_hop_budget: 0.2 * a,
                ..PlanConstraints::default()
            },
        ),
        (
            "tight hop budget: U=50%, E=2%A (reproduces the agg-heavy shape)",
            PlanConstraints {
                extra_hop_budget: 0.02 * a,
                ..PlanConstraints::default()
            },
        ),
        ("shared accelerators (15k tasks/s each), E=20%A", shared),
    ];
    for (name, cons) in scenarios {
        let problem = PlacementProblem::new(&topo, &groups, &traffic, &cons);
        let rsp = problem.solve(PlanSolver::Auto { node_limit: 50 });
        let census = rsp.tier_census(&topo);
        let _ = writeln!(
            out,
            "{name}\n  -> {} RSNodes: {} core, {} agg, {} tor; DRS groups: {}\n",
            rsp.rsnodes().len(),
            census[0],
            census[1],
            census[2],
            rsp.drs.len()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_specs_cover_paper_sweeps() {
        let base = paper_base(1_000);
        assert_eq!(fig4(&base).points.len(), 4);
        assert_eq!(fig5(&base).points.len(), 4);
        assert_eq!(fig6(&base).points.len(), 4);
        assert_eq!(fig7(&base).points.len(), 5);
        assert_eq!(fig4(&base).schemes.len(), 4);
        // Fig. 4 sweeps clients, holding the rest at §V-A defaults.
        let f4 = fig4(&base);
        assert_eq!(f4.points[2].config.clients, 500);
        assert_eq!(f4.points[0].config.clients, 100);
        // Fig. 7's service-time labels are in ms.
        let f7 = fig7(&base);
        assert_eq!(f7.points[0].label, "0.1");
        assert_eq!(f7.points[4].label, "4.0");
    }

    #[test]
    fn run_figure_produces_full_grid() {
        let mut base = SimConfig::small();
        base.requests = 300;
        let spec = FigureSpec {
            id: "test",
            title: "tiny",
            sweep: "x",
            points: vec![
                SweepPoint {
                    label: "a".into(),
                    config: base.clone(),
                },
                SweepPoint {
                    label: "b".into(),
                    config: base,
                },
            ],
            schemes: vec![Scheme::CliRs, Scheme::NetRsToR],
        };
        let result = run_figure(&spec, &[1, 2]);
        assert_eq!(result.cells.len(), 2);
        assert_eq!(result.cells[0].len(), 2);
        assert_eq!(result.raw[0][0].len(), 2);
        let table = render_tables(&result, "x");
        assert!(table.contains("Avg."));
        assert!(table.contains("99.9th"));
        assert!(table.contains("CliRS"));
    }

    #[test]
    fn perf_suite_profiles_every_scheme() {
        let mut cfg = SimConfig::small();
        cfg.requests = 300;
        cfg.seed = 1;
        let runs = run_perf_suite(&cfg, Some("t"));
        assert_eq!(runs.len(), Scheme::ALL.len());
        for run in &runs {
            assert!(run.label.starts_with("t/"), "{}", run.label);
            assert_eq!(run.kind_count_sum(), run.events, "{}", run.label);
            assert!(run.events_per_sec > 0.0);
            assert!(run.stride > 0);
        }
    }

    #[test]
    fn perf_artifact_appends_and_upgrades_legacy_history() {
        let legacy = r#"{
            "before/CliRS": {"events": 100, "events_per_sec": 50.0,
                             "peak_rss_kb": 640, "wall_clock_s": 2.0}
        }"#;
        let run = HostProfile::from_legacy("after/CliRS", 200, 99.0, 512, 2.0);
        let text = append_perf_artifact(Some(legacy), vec![run]).expect("upgrade + append");
        assert!(text.contains("\"schema_version\": 1"), "{text}");
        let v: Value = serde_json::from_str(&text).unwrap();
        let art = PerfArtifact::from_value(&v).unwrap();
        assert_eq!(art.runs.len(), 2);
        assert_eq!(art.runs[0].label, "before/CliRS");
        assert_eq!(art.runs[1].label, "after/CliRS");
        // Appending over the result is idempotent in shape: still v1.
        let again = append_perf_artifact(Some(&text), Vec::new()).expect("v1 round-trip");
        let v: Value = serde_json::from_str(&again).unwrap();
        assert_eq!(PerfArtifact::from_value(&v).unwrap().runs.len(), 2);
        // Unrecognizable existing text is rejected, not clobbered.
        assert!(append_perf_artifact(Some("[1,2]"), Vec::new()).is_err());
    }

    #[test]
    fn ablations_target_single_schemes() {
        let base = paper_base(1_000);
        assert_eq!(ablate_hops(&base).schemes, vec![Scheme::NetRsIlp]);
        assert_eq!(ablate_cap(&base).schemes, vec![Scheme::NetRsIlp]);
        assert_eq!(ablate_c3(&base).schemes, vec![Scheme::CliRs]);
        let g = ablate_group(&base);
        assert_eq!(g.points.len(), 3);
    }
}
