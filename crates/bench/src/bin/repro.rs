//! `repro` — regenerate the NetRS paper's evaluation figures.
//!
//! ```text
//! cargo run --release -p netrs-bench --bin repro -- fig4
//! cargo run --release -p netrs-bench --bin repro -- all --requests 100000 --seeds 1,2
//! cargo run --release -p netrs-bench --bin repro -- rsp
//! cargo run --release -p netrs-bench --bin repro -- fig6 --paper-scale
//! ```
//!
//! Results print as the four text panels of each figure and are also
//! written as JSON under `target/repro/`.

use std::io::Write as _;

use netrs_bench::{
    ablate_c3, ablate_cap, ablate_group, ablate_hops, fig4, fig5, fig6, fig7, paper_base,
    render_tables, rsp_experiment, run_figure, FigureSpec,
};

struct Options {
    requests: u64,
    seeds: Vec<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <fig4|fig5|fig6|fig7|rsp|ablate-hops|ablate-cap|ablate-group|ablate-c3|all> \
         [--requests N] [--seeds a,b,c] [--paper-scale]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].clone();
    let mut opts = Options {
        requests: 200_000,
        seeds: vec![1, 2, 3],
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--requests" => {
                i += 1;
                opts.requests = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seeds" => {
                i += 1;
                opts.seeds = args
                    .get(i)
                    .map(|v| {
                        v.split(',')
                            .map(|s| s.parse().unwrap_or_else(|_| usage()))
                            .collect()
                    })
                    .unwrap_or_else(|| usage());
            }
            "--paper-scale" => {
                opts.requests = 6_000_000;
            }
            _ => usage(),
        }
        i += 1;
    }

    let base = paper_base(opts.requests);
    let figures: Vec<FigureSpec> = match command.as_str() {
        "fig4" => vec![fig4(&base)],
        "fig5" => vec![fig5(&base)],
        "fig6" => vec![fig6(&base)],
        "fig7" => vec![fig7(&base)],
        "ablate-hops" => vec![ablate_hops(&base)],
        "ablate-cap" => vec![ablate_cap(&base)],
        "ablate-group" => vec![ablate_group(&base)],
        "ablate-c3" => vec![ablate_c3(&base)],
        "all" => vec![
            fig4(&base),
            fig5(&base),
            fig6(&base),
            fig7(&base),
            ablate_hops(&base),
            ablate_cap(&base),
            ablate_group(&base),
            ablate_c3(&base),
        ],
        "rsp" => {
            println!("{}", rsp_experiment(2018));
            return;
        }
        _ => usage(),
    };

    std::fs::create_dir_all("target/repro").ok();
    for spec in figures {
        let started = std::time::Instant::now();
        eprintln!(
            "running {} ({} points x {} schemes x {} seeds, {} requests each)...",
            spec.id,
            spec.points.len(),
            spec.schemes.len(),
            opts.seeds.len(),
            opts.requests
        );
        let result = run_figure(&spec, &opts.seeds);
        println!("{}", render_tables(&result, spec.sweep));
        let path = format!("target/repro/{}.json", spec.id);
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&result).expect("serializable result")
            );
            eprintln!("wrote {path}");
        }
        eprintln!(
            "{} finished in {:.1}s\n",
            spec.id,
            started.elapsed().as_secs_f64()
        );
    }
}
