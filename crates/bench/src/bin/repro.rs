//! `repro` — regenerate the NetRS paper's evaluation figures.
//!
//! ```text
//! cargo run --release -p netrs-bench --bin repro -- fig4
//! cargo run --release -p netrs-bench --bin repro -- all --requests 100000 --seeds 1,2
//! cargo run --release -p netrs-bench --bin repro -- rsp
//! cargo run --release -p netrs-bench --bin repro -- fig6 --paper-scale
//! cargo run --release -p netrs-bench --bin repro -- perf --tag after
//! ```
//!
//! Results print as the four text panels of each figure and are also
//! written as JSON under `target/repro/`; a run log accumulates in
//! `target/repro/repro.log`.

use std::io::Write as _;

use netrs_bench::{
    ablate_c3, ablate_cap, ablate_group, ablate_hops, append_perf_artifact, fig4, fig5, fig6, fig7,
    paper_base, render_tables, rsp_experiment, run_figure, run_parallel_suite, run_perf_suite,
    FigureSpec,
};
use netrs_sim::SimConfig;

struct Options {
    requests: u64,
    seeds: Vec<u64>,
    /// `perf`: shrink the fixed perf config to the tiny test scale (CI
    /// schema smoke, not a meaningful measurement).
    small: bool,
    /// `perf`: label prefix distinguishing suites in one artifact.
    tag: Option<String>,
    /// `perf`: artifact path (default `target/repro/BENCH_PERF.json`).
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: repro <fig4|fig5|fig6|fig7|rsp|perf|ablate-hops|ablate-cap|ablate-group|ablate-c3|all> \
         [--requests N] [--seeds a,b,c] [--paper-scale] [--small] [--tag NAME] [--out FILE]"
    );
    std::process::exit(2);
}

/// Logs a progress line to stderr and to the persistent run log under
/// `target/repro/` (best-effort: a read-only tree only loses the file
/// copy).
fn log_line(msg: &str) {
    eprintln!("{msg}");
    std::fs::create_dir_all("target/repro").ok();
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open("target/repro/repro.log")
    {
        let _ = writeln!(f, "{msg}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let command = args[0].clone();
    let mut opts = Options {
        requests: 200_000,
        seeds: vec![1, 2, 3],
        small: false,
        tag: None,
        out: None,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--requests" => {
                i += 1;
                opts.requests = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seeds" => {
                i += 1;
                opts.seeds = args
                    .get(i)
                    .map(|v| {
                        v.split(',')
                            .map(|s| s.parse().unwrap_or_else(|_| usage()))
                            .collect()
                    })
                    .unwrap_or_else(|| usage());
            }
            "--paper-scale" => {
                opts.requests = 6_000_000;
            }
            "--small" => opts.small = true,
            "--tag" => {
                i += 1;
                opts.tag = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--out" => {
                i += 1;
                opts.out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }

    if command == "perf" {
        run_perf(&opts);
        return;
    }

    let base = paper_base(opts.requests);
    let figures: Vec<FigureSpec> = match command.as_str() {
        "fig4" => vec![fig4(&base)],
        "fig5" => vec![fig5(&base)],
        "fig6" => vec![fig6(&base)],
        "fig7" => vec![fig7(&base)],
        "ablate-hops" => vec![ablate_hops(&base)],
        "ablate-cap" => vec![ablate_cap(&base)],
        "ablate-group" => vec![ablate_group(&base)],
        "ablate-c3" => vec![ablate_c3(&base)],
        "all" => vec![
            fig4(&base),
            fig5(&base),
            fig6(&base),
            fig7(&base),
            ablate_hops(&base),
            ablate_cap(&base),
            ablate_group(&base),
            ablate_c3(&base),
        ],
        "rsp" => {
            println!("{}", rsp_experiment(2018));
            return;
        }
        _ => usage(),
    };

    std::fs::create_dir_all("target/repro").ok();
    for spec in figures {
        let started = std::time::Instant::now();
        log_line(&format!(
            "running {} ({} points x {} schemes x {} seeds, {} requests each)...",
            spec.id,
            spec.points.len(),
            spec.schemes.len(),
            opts.seeds.len(),
            opts.requests
        ));
        let result = run_figure(&spec, &opts.seeds);
        println!("{}", render_tables(&result, spec.sweep));
        let path = format!("target/repro/{}.json", spec.id);
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(
                f,
                "{}",
                serde_json::to_string_pretty(&result).expect("serializable result")
            );
            log_line(&format!("wrote {path}"));
        }
        log_line(&format!(
            "{} finished in {:.1}s",
            spec.id,
            started.elapsed().as_secs_f64()
        ));
    }
}

/// The `perf` subcommand: run every scheme on the fixed perf config with
/// the host profiler attached and append the run records to the bench
/// artifact (`--out`, default `target/repro/BENCH_PERF.json`). A legacy
/// flat-map artifact is upgraded to the versioned schema in the same
/// pass. `--tag before|after` prefixes the run labels so successive
/// suites coexist; `--small` substitutes the tiny test config for CI
/// schema smoke.
fn run_perf(opts: &Options) {
    let mut cfg = if opts.small {
        let mut c = SimConfig::small();
        c.requests = 2_000;
        c
    } else {
        SimConfig::perf()
    };
    cfg.seed = 1;
    let out = opts
        .out
        .clone()
        .unwrap_or_else(|| "target/repro/BENCH_PERF.json".to_string());
    let mut runs = run_perf_suite(&cfg, opts.tag.as_deref());
    // The sharded-parallel throughput grid rides the same artifact; the
    // fastest of `repeats` walls is kept per cell (tiny --small cells
    // are pure noise on one run).
    runs.extend(run_parallel_suite(
        &cfg,
        opts.tag.as_deref(),
        if opts.small { 2 } else { 1 },
    ));
    for r in &runs {
        match r.parallel.as_ref() {
            Some(p) => log_line(&format!(
                "perf: {}: {:.3}s wall, {} events, {:.0} events/s, {} shards x {} threads, \
                 {} windows ({:.1} events/window), busy imbalance {:.2}x",
                r.label,
                r.wall_s,
                r.events,
                r.events_per_sec,
                p.shards,
                p.threads,
                p.windows,
                p.events_per_window,
                p.busy_imbalance,
            )),
            None => log_line(&format!(
                "perf: {}: {:.3}s wall, {} events, {:.0} events/s, {:.1}% attributed, peak RSS {} kB",
                r.label,
                r.wall_s,
                r.events,
                r.events_per_sec,
                if r.wall_s > 0.0 {
                    r.attributed_ns as f64 / (r.wall_s * 1e9) * 100.0
                } else {
                    0.0
                },
                r.peak_rss_kb
            )),
        }
    }
    let existing = std::fs::read_to_string(&out).ok();
    let artifact = append_perf_artifact(existing.as_deref(), runs).unwrap_or_else(|e| {
        eprintln!("cannot append into {out}: {e}");
        std::process::exit(1);
    });
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).ok();
    }
    std::fs::write(&out, artifact + "\n").unwrap_or_else(|e| {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    });
    log_line(&format!("wrote {out}"));
}
