//! The storage-server queueing model of §V-A.
//!
//! Each server processes up to `Np` requests in parallel (slots); further
//! arrivals wait in a FIFO queue. Service times are exponential with a
//! mean that fluctuates bimodally between `tkv` and `tkv/d` at a fixed
//! interval — the paper's model of multi-tenant cloud performance
//! variability (after Schad et al.).
//!
//! The server is a passive state machine driven by the simulation's event
//! loop: `arrive` either starts a request (returning its completion time
//! for the caller to schedule) or queues it; `complete` retires the
//! finished slot and dispatches the next queued request, if any.

use std::collections::VecDeque;

use netrs_simcore::{Bimodal, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

use crate::{ServerId, ServerStatus};

/// Static configuration of a server (paper defaults in [`Default`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Parallel service slots (`Np`, paper default 4).
    pub slots: u32,
    /// Base mean service time (`tkv`, paper default 4 ms).
    pub base_service_time: SimDuration,
    /// Bimodal fluctuation range parameter (`d`, paper default 3).
    pub fluctuation_range: f64,
    /// Fluctuation interval (paper default 50 ms).
    pub fluctuation_interval: SimDuration,
    /// Smoothing factor for the piggybacked service-time estimate
    /// (weight of the old value; C3 uses 0.9).
    pub status_ewma_alpha: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            slots: 4,
            base_service_time: SimDuration::from_millis(4),
            fluctuation_range: 3.0,
            fluctuation_interval: SimDuration::from_millis(50),
            status_ewma_alpha: 0.9,
        }
    }
}

/// Outcome of [`Server::arrive`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// A slot was free; the request is in service and will finish at the
    /// given time (the caller must schedule its completion event).
    Started {
        /// Completion time to schedule.
        finish_at: SimTime,
    },
    /// All slots busy; the request was appended to the FIFO queue.
    Queued,
}

/// Outcome of [`Server::complete`]: the next dispatched request, if the
/// queue was non-empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion<T> {
    /// The request just dispatched from the queue, with its completion
    /// time (the caller must schedule it), or `None` if the queue was
    /// empty.
    pub next: Option<(T, SimTime)>,
}

/// Aggregate counters for one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests that arrived.
    pub arrived: u64,
    /// Requests that completed service.
    pub completed: u64,
    /// Largest queue length observed (waiting + in service).
    pub max_queue: u32,
    /// Integral of busy slots over time, in slot-nanoseconds; divide by
    /// `slots × elapsed` for utilization.
    pub busy_slot_ns: u128,
}

/// One storage server. `T` is the caller's request token type.
#[derive(Debug)]
pub struct Server<T> {
    id: ServerId,
    cfg: ServerConfig,
    fluct: Bimodal,
    current_mean: SimDuration,
    in_service: u32,
    queue: VecDeque<T>,
    svc_ewma_ns: f64,
    stats: ServerStats,
    last_change: SimTime,
    rng: SimRng,
    /// False after a fail-stop ([`Server::crash`]) until recovery.
    up: bool,
    /// Service-rate multiplier from fault injection (1.0 = nominal).
    rate_factor: f64,
}

impl<T> Server<T> {
    /// Creates a server with its own random stream.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.slots` is zero or the EWMA weight is outside
    /// `[0, 1)`.
    #[must_use]
    pub fn new(id: ServerId, cfg: ServerConfig, rng: SimRng) -> Self {
        assert!(cfg.slots > 0, "server needs at least one slot");
        assert!(
            (0.0..1.0).contains(&cfg.status_ewma_alpha),
            "EWMA weight must be in [0, 1)"
        );
        let fluct = Bimodal::new(cfg.base_service_time, cfg.fluctuation_range);
        let svc_ewma_ns = cfg.base_service_time.as_nanos() as f64;
        Server {
            id,
            current_mean: fluct.slow(),
            fluct,
            cfg,
            in_service: 0,
            queue: VecDeque::new(),
            svc_ewma_ns,
            stats: ServerStats::default(),
            last_change: SimTime::ZERO,
            rng,
            up: true,
            rate_factor: 1.0,
        }
    }

    /// This server's ID.
    #[must_use]
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The configuration the server was built with.
    #[must_use]
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Current mean service time (fluctuates between `tkv` and `tkv/d`).
    #[must_use]
    pub fn current_mean(&self) -> SimDuration {
        self.current_mean
    }

    /// Pending requests: waiting plus in service (the "queue size" metric
    /// C3 piggybacks).
    #[must_use]
    pub fn queue_len(&self) -> u32 {
        self.in_service + self.queue.len() as u32
    }

    /// Number of requests currently being served.
    #[must_use]
    pub fn in_service(&self) -> u32 {
        self.in_service
    }

    /// Requests waiting for a slot, *excluding* those in service — the
    /// head-of-line depth device telemetry tracks (a request in service
    /// occupies a slot, not the queue).
    #[must_use]
    pub fn waiting(&self) -> u32 {
        self.queue.len() as u32
    }

    /// Instantaneous fraction of service slots occupied, in `[0, 1]` —
    /// the quantity the observability sampler tracks over virtual time.
    #[must_use]
    pub fn slot_occupancy(&self) -> f64 {
        f64::from(self.in_service) / f64::from(self.cfg.slots)
    }

    /// Aggregate counters.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Mean slot utilization in `[0, 1]` over `[SimTime::ZERO, now]`.
    #[must_use]
    pub fn utilization(&self, now: SimTime) -> f64 {
        let elapsed = now.as_nanos();
        if elapsed == 0 {
            return 0.0;
        }
        let busy = self.stats.busy_slot_ns
            + u128::from(self.in_service)
                * u128::from(now.saturating_since(self.last_change).as_nanos());
        busy as f64 / (f64::from(self.cfg.slots) * elapsed as f64)
    }

    /// The status piggybacked on responses (SS segment).
    #[must_use]
    pub fn status(&self) -> ServerStatus {
        ServerStatus {
            queue_len: self.queue_len(),
            service_time_ns: self.svc_ewma_ns.round() as u64,
        }
    }

    fn account(&mut self, now: SimTime) {
        let dt = now.saturating_since(self.last_change).as_nanos();
        self.stats.busy_slot_ns += u128::from(self.in_service) * u128::from(dt);
        self.last_change = now;
    }

    fn draw_service(&mut self) -> SimDuration {
        // Gate on the nominal rate so fault-free runs stay bit-identical.
        let mean = if self.rate_factor == 1.0 {
            self.current_mean
        } else {
            self.current_mean.mul_f64(1.0 / self.rate_factor)
        };
        let sample = self.rng.exp_duration(mean);
        let a = self.cfg.status_ewma_alpha;
        self.svc_ewma_ns = a * self.svc_ewma_ns + (1.0 - a) * sample.as_nanos() as f64;
        sample
    }

    /// A request arrives at `now`. If a slot is free it enters service and
    /// the caller must schedule its completion at the returned time;
    /// otherwise the token is queued and will be returned by a later
    /// [`Server::complete`].
    pub fn arrive(&mut self, token: T, now: SimTime) -> Arrival {
        debug_assert!(self.up, "arrival at a crashed server must be gated");
        self.account(now);
        self.stats.arrived += 1;
        let arrival = if self.in_service < self.cfg.slots {
            self.in_service += 1;
            let finish_at = now + self.draw_service();
            Arrival::Started { finish_at }
        } else {
            self.queue.push_back(token);
            Arrival::Queued
        };
        self.stats.max_queue = self.stats.max_queue.max(self.queue_len());
        arrival
    }

    /// A previously started request finishes at `now`. Returns the next
    /// request dispatched from the queue (the caller must schedule its
    /// completion), if any.
    ///
    /// # Panics
    ///
    /// Panics if no request is in service — a completion without a start
    /// indicates an event-bookkeeping bug in the caller.
    pub fn complete(&mut self, now: SimTime) -> Completion<T> {
        assert!(
            self.in_service > 0,
            "completion without a request in service"
        );
        self.account(now);
        self.stats.completed += 1;
        self.in_service -= 1;
        let next = self.queue.pop_front().map(|token| {
            self.in_service += 1;
            (token, now + self.draw_service())
        });
        Completion { next }
    }

    /// Redraws the mean service time for the next fluctuation interval
    /// (call every [`ServerConfig::fluctuation_interval`]).
    pub fn fluctuate(&mut self) {
        self.current_mean = self.fluct.draw(&mut self.rng);
    }

    /// Whether the server is up (it is until [`Server::crash`]).
    #[must_use]
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// The current service-rate multiplier (1.0 = nominal).
    #[must_use]
    pub fn rate_factor(&self) -> f64 {
        self.rate_factor
    }

    /// Sets the service-rate multiplier: 0.5 halves the service rate
    /// (doubling mean service time), 2.0 doubles it. Applies to services
    /// drawn from now on.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    pub fn set_rate_factor(&mut self, factor: f64) {
        assert!(factor > 0.0, "service-rate factor must be positive");
        self.rate_factor = factor;
    }

    /// The server fail-stops: every queued token is returned to the
    /// caller (to be dropped and accounted), the count of in-service
    /// requests is reported (their already-scheduled completion events
    /// must be absorbed by the caller), and the service slots reset. The
    /// rate factor returns to nominal — a rebooted server starts fresh.
    pub fn crash(&mut self, now: SimTime) -> (Vec<T>, u32) {
        self.account(now);
        self.up = false;
        self.rate_factor = 1.0;
        let lost_in_service = self.in_service;
        self.in_service = 0;
        (self.queue.drain(..).collect(), lost_in_service)
    }

    /// A crashed server comes back empty and ready for arrivals.
    pub fn recover(&mut self, now: SimTime) {
        self.account(now);
        self.up = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> Server<u32> {
        Server::new(ServerId(0), ServerConfig::default(), SimRng::from_seed(1))
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn starts_up_to_slots_then_queues() {
        let mut s = server();
        for i in 0..4 {
            assert!(
                matches!(s.arrive(i, t(0)), Arrival::Started { .. }),
                "request {i} should start"
            );
        }
        assert_eq!(s.arrive(4, t(0)), Arrival::Queued);
        assert_eq!(s.arrive(5, t(0)), Arrival::Queued);
        assert_eq!(s.queue_len(), 6);
        assert_eq!(s.in_service(), 4);
        assert!((s.slot_occupancy() - 1.0).abs() < 1e-12, "all slots busy");
    }

    #[test]
    fn waiting_excludes_in_service() {
        let mut s = server();
        for i in 0..6 {
            let _ = s.arrive(i, t(0));
        }
        assert_eq!(s.waiting(), 2, "four in slots, two behind them");
        assert_eq!(s.queue_len(), s.waiting() + s.in_service());
        let _ = s.complete(t(1)); // dispatches one waiter into the slot
        assert_eq!(s.waiting(), 1);
    }

    #[test]
    fn slot_occupancy_tracks_in_service() {
        let mut s = server();
        assert_eq!(s.slot_occupancy(), 0.0);
        let _ = s.arrive(0, t(0));
        assert!((s.slot_occupancy() - 0.25).abs() < 1e-12);
        let _ = s.arrive(1, t(0));
        assert!((s.slot_occupancy() - 0.5).abs() < 1e-12);
        let _ = s.complete(t(1));
        assert!((s.slot_occupancy() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn completion_dispatches_fifo() {
        let mut s = server();
        for i in 0..6 {
            let _ = s.arrive(i, t(0));
        }
        let c = s.complete(t(1));
        let (tok, finish) = c.next.expect("queue should dispatch");
        assert_eq!(tok, 4, "FIFO order");
        assert!(finish > t(1));
        let c = s.complete(t(2));
        assert_eq!(c.next.unwrap().0, 5);
        // Queue now empty: further completions dispatch nothing.
        for _ in 0..4 {
            assert_eq!(s.complete(t(3)).next, None);
        }
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.stats().completed, 6);
        assert_eq!(s.stats().arrived, 6);
        assert_eq!(s.stats().max_queue, 6);
    }

    #[test]
    #[should_panic(expected = "completion without a request")]
    fn completion_on_idle_server_panics() {
        let mut s = server();
        let _ = s.complete(t(0));
    }

    #[test]
    fn service_times_follow_current_mean() {
        let cfg = ServerConfig {
            slots: 1,
            ..ServerConfig::default()
        };
        let mut s: Server<u32> = Server::new(ServerId(1), cfg, SimRng::from_seed(3));
        let mut total = 0.0;
        let n = 20_000;
        let mut now = SimTime::ZERO;
        for i in 0..n {
            let Arrival::Started { finish_at } = s.arrive(i, now) else {
                panic!("single-slot server should start when idle");
            };
            total += (finish_at - now).as_millis_f64();
            now = finish_at;
            let _ = s.complete(now);
        }
        let mean = total / f64::from(n);
        assert!(
            (mean - 4.0).abs() < 0.15,
            "observed mean {mean} ms, expected ~4"
        );
    }

    #[test]
    fn fluctuation_switches_between_two_means() {
        let mut s = server();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            s.fluctuate();
            seen.insert(s.current_mean());
        }
        assert_eq!(seen.len(), 2);
        assert!(seen.contains(&SimDuration::from_millis(4)));
        let fast = SimDuration::from_millis(4).mul_f64(1.0 / 3.0);
        assert!(seen.contains(&fast));
    }

    #[test]
    fn status_tracks_queue_and_service_estimate() {
        let mut s = server();
        assert_eq!(s.status().queue_len, 0);
        // Initial estimate equals the configured base service time.
        assert_eq!(s.status().service_time_ns, 4_000_000);
        for i in 0..5 {
            let _ = s.arrive(i, t(0));
        }
        assert_eq!(s.status().queue_len, 5);
        // After dispatches the estimate moves away from the prior.
        assert_ne!(s.status().service_time_ns, 4_000_000);
    }

    #[test]
    fn utilization_integrates_busy_slots() {
        let cfg = ServerConfig {
            slots: 2,
            ..ServerConfig::default()
        };
        let mut s: Server<u32> = Server::new(ServerId(2), cfg, SimRng::from_seed(5));
        // Two requests in service from t=0; complete both at t=10ms.
        let _ = s.arrive(0, t(0));
        let _ = s.arrive(1, t(0));
        let _ = s.complete(t(10));
        let _ = s.complete(t(10));
        // Busy integral: 2 slots * 10ms over 2 slots * 20ms elapsed = 0.5.
        let u = s.utilization(t(20));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
        // Before any elapsed time utilization is defined as zero.
        let fresh = server();
        assert_eq!(fresh.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn crash_drains_queue_and_reports_in_flight() {
        let mut s = server();
        for i in 0..6 {
            let _ = s.arrive(i, t(0));
        }
        assert!(s.is_up());
        let (queued, in_flight) = s.crash(t(1));
        assert_eq!(queued, vec![4, 5], "FIFO order preserved");
        assert_eq!(in_flight, 4);
        assert!(!s.is_up());
        assert_eq!(s.queue_len(), 0);
        assert_eq!(s.in_service(), 0);
        // Recovery brings the server back empty.
        s.recover(t(2));
        assert!(s.is_up());
        assert!(matches!(s.arrive(9, t(2)), Arrival::Started { .. }));
    }

    #[test]
    fn crash_accounts_busy_time_up_to_the_crash() {
        let cfg = ServerConfig {
            slots: 2,
            ..ServerConfig::default()
        };
        let mut s: Server<u32> = Server::new(ServerId(3), cfg, SimRng::from_seed(5));
        let _ = s.arrive(0, t(0));
        let _ = s.arrive(1, t(0));
        let (_, lost) = s.crash(t(10));
        assert_eq!(lost, 2);
        // Busy: 2 slots × 10ms over 2 slots × 20ms = 0.5.
        let u = s.utilization(t(20));
        assert!((u - 0.5).abs() < 1e-9, "utilization {u}");
    }

    #[test]
    fn rate_factor_scales_mean_service_time() {
        let run = |factor: f64| {
            let cfg = ServerConfig {
                slots: 1,
                ..ServerConfig::default()
            };
            let mut s: Server<u32> = Server::new(ServerId(1), cfg, SimRng::from_seed(3));
            s.set_rate_factor(factor);
            let mut total = 0.0;
            let n = 10_000;
            let mut now = SimTime::ZERO;
            for i in 0..n {
                let Arrival::Started { finish_at } = s.arrive(i, now) else {
                    panic!("idle single-slot server starts immediately");
                };
                total += (finish_at - now).as_millis_f64();
                now = finish_at;
                let _ = s.complete(now);
            }
            total / f64::from(n)
        };
        let nominal = run(1.0);
        let half_rate = run(0.5);
        assert!(
            (half_rate / nominal - 2.0).abs() < 1e-3,
            "half rate doubles service time: {nominal} vs {half_rate}"
        );
        // Same seed, same draws: factor 1.0 never perturbs the stream.
        assert!((nominal - run(1.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn zero_rate_factor_rejected() {
        let mut s = server();
        s.set_rate_factor(0.0);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_slots_rejected() {
        let cfg = ServerConfig {
            slots: 0,
            ..ServerConfig::default()
        };
        let _: Server<u32> = Server::new(ServerId(0), cfg, SimRng::from_seed(0));
    }
}
