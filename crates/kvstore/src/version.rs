//! Per-key version counters for the write path.
//!
//! Every acknowledged `SET` bumps the key's version; a cached value is
//! stale exactly when the version it was captured at is older than the
//! committed version. The table is the store-side source of truth the
//! in-switch hot-key caches are compared against for stale-read
//! accounting.
//!
//! Storage is a bounded open-addressed map keyed by the 64-bit key hash:
//! the write path touches it on every `SET` and every cache hit check,
//! so it reuses the ring-slab idea of the simulator's dense tables
//! rather than a `HashMap`. Unversioned keys implicitly sit at version
//! 0, so only written keys occupy slots.

use crate::hash64;

/// Per-key version counters: key `→` number of committed writes.
///
/// Keys that were never written report version 0 without occupying a
/// slot, so memory is proportional to the *written* key population.
#[derive(Debug, Clone, Default)]
pub struct VersionTable {
    slots: Vec<Option<(u64, u64)>>,
    mask: u64,
    len: usize,
    writes: u64,
}

impl VersionTable {
    /// An empty table sized for at least `cap` written keys.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(16).next_power_of_two();
        VersionTable {
            slots: vec![None; cap],
            mask: cap as u64 - 1,
            len: 0,
            writes: 0,
        }
    }

    #[inline]
    fn probe(&self, key: u64) -> usize {
        (hash64(key) & self.mask) as usize
    }

    /// The committed version of `key` (0 when never written).
    #[must_use]
    pub fn get(&self, key: u64) -> u64 {
        if self.slots.is_empty() {
            return 0;
        }
        let mut i = self.probe(key);
        loop {
            match self.slots[i] {
                Some((k, v)) if k == key => return v,
                Some(_) => i = (i + 1) & self.mask as usize,
                None => return 0,
            }
        }
    }

    /// Commits one write to `key`, returning the new version (≥ 1).
    pub fn bump(&mut self, key: u64) -> u64 {
        if self.slots.is_empty() {
            *self = VersionTable::with_capacity(16);
        }
        self.writes += 1;
        let mut i = self.probe(key);
        loop {
            match &mut self.slots[i] {
                Some((k, v)) if *k == key => {
                    *v += 1;
                    return *v;
                }
                Some(_) => i = (i + 1) & self.mask as usize,
                None => break,
            }
        }
        // Keep the load factor under 1/2 so probes stay short.
        if (self.len + 1) * 2 > self.slots.len() {
            self.grow();
            i = self.probe(key);
            while self.slots[i].is_some() {
                i = (i + 1) & self.mask as usize;
            }
        }
        self.slots[i] = Some((key, 1));
        self.len += 1;
        1
    }

    /// Number of distinct keys ever written.
    #[must_use]
    pub fn keys_written(&self) -> usize {
        self.len
    }

    /// Total writes committed across all keys.
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.writes
    }

    fn grow(&mut self) {
        let cap = (self.slots.len() * 2).max(16);
        let old = std::mem::replace(&mut self.slots, vec![None; cap]);
        self.mask = cap as u64 - 1;
        for entry in old.into_iter().flatten() {
            let mut i = (hash64(entry.0) & self.mask) as usize;
            while self.slots[i].is_some() {
                i = (i + 1) & self.mask as usize;
            }
            self.slots[i] = Some(entry);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_keys_are_version_zero() {
        let t = VersionTable::default();
        assert_eq!(t.get(42), 0);
        assert_eq!(t.keys_written(), 0);
        assert_eq!(t.total_writes(), 0);
    }

    #[test]
    fn bump_is_a_per_key_counter() {
        let mut t = VersionTable::with_capacity(4);
        assert_eq!(t.bump(7), 1);
        assert_eq!(t.bump(7), 2);
        assert_eq!(t.bump(9), 1);
        assert_eq!(t.get(7), 2);
        assert_eq!(t.get(9), 1);
        assert_eq!(t.get(8), 0);
        assert_eq!(t.keys_written(), 2);
        assert_eq!(t.total_writes(), 3);
    }

    #[test]
    fn grows_past_initial_capacity_without_losing_versions() {
        let mut t = VersionTable::with_capacity(4);
        for key in 0..1000u64 {
            assert_eq!(t.bump(key), 1);
        }
        for key in 0..1000u64 {
            assert_eq!(t.get(key), 1, "key {key} lost in growth");
        }
        assert_eq!(t.keys_written(), 1000);
        // Second round: versions advance independently.
        for key in (0..1000u64).step_by(3) {
            assert_eq!(t.bump(key), 2);
        }
        assert_eq!(t.get(998), 1);
        assert_eq!(t.get(3), 2);
    }
}
