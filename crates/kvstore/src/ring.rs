//! Consistent hashing and the replica-group database.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{hash64, hash64_pair, ServerId};

/// Errors building a [`Ring`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RingError {
    /// Fewer servers than the replication factor.
    TooFewServers {
        /// Number of servers supplied.
        servers: u32,
        /// Requested replication factor.
        replication: u32,
    },
    /// A parameter was zero.
    ZeroParameter(&'static str),
}

impl fmt::Display for RingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingError::TooFewServers {
                servers,
                replication,
            } => write!(
                f,
                "need at least {replication} servers for replication factor {replication}, got {servers}"
            ),
            RingError::ZeroParameter(name) => write!(f, "{name} must be positive"),
        }
    }
}

impl std::error::Error for RingError {}

/// The replica-group database of §IV-A: maps a small group ID (the RGID
/// carried in request headers) to the concrete replica set. NetRS
/// selectors hold a copy of this database on each network accelerator —
/// it is small because consistent hashing yields at most
/// `servers × vnodes` distinct replica sets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaGroups {
    groups: Vec<Vec<ServerId>>,
}

impl ReplicaGroups {
    /// Number of distinct replica groups.
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether the database is empty (never true for a built ring).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The replica set of a group.
    ///
    /// # Panics
    ///
    /// Panics if `gid` is out of range.
    #[must_use]
    pub fn replicas(&self, gid: u32) -> &[ServerId] {
        &self.groups[gid as usize]
    }

    /// The replica set of a group, or `None` if `gid` is unknown — used by
    /// selectors to reject corrupted RGIDs.
    #[must_use]
    pub fn get(&self, gid: u32) -> Option<&[ServerId]> {
        self.groups.get(gid as usize).map(Vec::as_slice)
    }

    /// Iterates over `(gid, replica set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &[ServerId])> {
        self.groups
            .iter()
            .enumerate()
            .map(|(i, g)| (i as u32, g.as_slice()))
    }
}

/// A consistent-hash ring with virtual nodes.
///
/// Each server contributes `vnodes` points on a 64-bit ring; a key is
/// served by the first `replication` *distinct* servers clockwise from the
/// key's hash — the standard Dynamo/Cassandra placement the paper assumes.
#[derive(Debug, Clone)]
pub struct Ring {
    points: Vec<(u64, ServerId)>,
    replication: u32,
    /// Group id of the ring segment ending at `points[i]`.
    segment_group: Vec<u32>,
    groups: ReplicaGroups,
}

impl Ring {
    /// Builds a ring of `servers` servers with `vnodes` virtual nodes each
    /// and the given replication factor. `seed` perturbs vnode placement
    /// so different deployments get different (but reproducible) rings.
    ///
    /// # Errors
    ///
    /// Returns an error if any parameter is zero or if there are fewer
    /// servers than the replication factor.
    pub fn new(servers: u32, vnodes: u32, replication: u32, seed: u64) -> Result<Self, RingError> {
        if servers == 0 {
            return Err(RingError::ZeroParameter("servers"));
        }
        if vnodes == 0 {
            return Err(RingError::ZeroParameter("vnodes"));
        }
        if replication == 0 {
            return Err(RingError::ZeroParameter("replication"));
        }
        if servers < replication {
            return Err(RingError::TooFewServers {
                servers,
                replication,
            });
        }

        let mut points = Vec::with_capacity((servers * vnodes) as usize);
        for s in 0..servers {
            for v in 0..vnodes {
                let h = hash64_pair(hash64(seed ^ u64::from(s)), u64::from(v));
                points.push((h, ServerId(s)));
            }
        }
        points.sort_unstable();
        points.dedup_by_key(|p| p.0);

        // Precompute the replica set of every ring segment and dedup the
        // distinct sets into the group database.
        let n = points.len();
        let mut group_ids: HashMap<Vec<ServerId>, u32> = HashMap::new();
        let mut groups: Vec<Vec<ServerId>> = Vec::new();
        let mut segment_group = Vec::with_capacity(n);
        for i in 0..n {
            let mut set = Vec::with_capacity(replication as usize);
            let mut j = i;
            while set.len() < replication as usize {
                let candidate = points[j % n].1;
                if !set.contains(&candidate) {
                    set.push(candidate);
                }
                j += 1;
                debug_assert!(j < i + n + 1, "ring walk must terminate");
            }
            let next_id = groups.len() as u32;
            let gid = *group_ids.entry(set.clone()).or_insert_with(|| {
                groups.push(set);
                next_id
            });
            segment_group.push(gid);
        }

        Ok(Ring {
            points,
            replication,
            segment_group,
            groups: ReplicaGroups { groups },
        })
    }

    /// The replication factor.
    #[must_use]
    pub fn replication(&self) -> u32 {
        self.replication
    }

    /// The replica-group database (clone it onto each selector).
    #[must_use]
    pub fn groups(&self) -> &ReplicaGroups {
        &self.groups
    }

    /// Index of the ring segment owning `key`'s hash: the first point at
    /// or after `hash64(key)`, wrapping around.
    fn segment_of_key(&self, key: u64) -> usize {
        let h = hash64(key);
        match self.points.binary_search_by_key(&h, |p| p.0) {
            Ok(i) => i,
            Err(i) => i % self.points.len(),
        }
    }

    /// The replica-group ID a key belongs to (the RGID a client stamps on
    /// its requests).
    #[must_use]
    pub fn group_of_key(&self, key: u64) -> u32 {
        self.segment_group[self.segment_of_key(key)]
    }

    /// The ordered replica set of a key (primary first).
    #[must_use]
    pub fn replicas_for_key(&self, key: u64) -> &[ServerId] {
        self.groups.replicas(self.group_of_key(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> Ring {
        Ring::new(100, 64, 3, 42).unwrap()
    }

    #[test]
    fn parameter_validation() {
        assert_eq!(
            Ring::new(2, 8, 3, 0).unwrap_err(),
            RingError::TooFewServers {
                servers: 2,
                replication: 3
            }
        );
        assert_eq!(
            Ring::new(0, 8, 3, 0).unwrap_err(),
            RingError::ZeroParameter("servers")
        );
        assert_eq!(
            Ring::new(5, 0, 3, 0).unwrap_err(),
            RingError::ZeroParameter("vnodes")
        );
        assert_eq!(
            Ring::new(5, 8, 0, 0).unwrap_err(),
            RingError::ZeroParameter("replication")
        );
        assert!(Ring::new(3, 1, 3, 0).is_ok());
    }

    #[test]
    fn replica_sets_are_distinct_and_sized() {
        let r = ring();
        for key in 0..5_000u64 {
            let reps = r.replicas_for_key(key);
            assert_eq!(reps.len(), 3);
            let mut sorted = reps.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicate replica for key {key}");
            assert!(reps.iter().all(|s| s.0 < 100));
        }
    }

    #[test]
    fn group_db_is_consistent_with_lookup() {
        let r = ring();
        for key in 0..2_000u64 {
            let gid = r.group_of_key(key);
            assert_eq!(r.groups().replicas(gid), r.replicas_for_key(key));
        }
    }

    #[test]
    fn group_db_is_small_enough_for_rgid() {
        // §IV-A: "The size of the database should be small" — and it must
        // fit the 3-byte RGID.
        let r = ring();
        assert!(r.groups().len() <= 100 * 64);
        assert!((r.groups().len() as u32) < 0x00FF_FFFF);
        assert!(!r.groups().is_empty());
    }

    #[test]
    fn placement_is_reasonably_balanced() {
        let r = Ring::new(10, 128, 3, 7).unwrap();
        let mut primary_counts = [0u32; 10];
        for key in 0..30_000u64 {
            primary_counts[r.replicas_for_key(key)[0].0 as usize] += 1;
        }
        let expected = 3_000.0;
        for (s, &c) in primary_counts.iter().enumerate() {
            assert!(
                (f64::from(c) - expected).abs() / expected < 0.5,
                "server {s} owns {c} of 30000 keys"
            );
        }
    }

    #[test]
    fn rings_are_deterministic_per_seed() {
        let a = Ring::new(20, 16, 3, 9).unwrap();
        let b = Ring::new(20, 16, 3, 9).unwrap();
        let c = Ring::new(20, 16, 3, 10).unwrap();
        for key in 0..500u64 {
            assert_eq!(a.replicas_for_key(key), b.replicas_for_key(key));
        }
        assert!(
            (0..500u64).any(|k| a.replicas_for_key(k) != c.replicas_for_key(k)),
            "different seeds should differ somewhere"
        );
    }

    #[test]
    fn all_servers_appear_somewhere() {
        let r = Ring::new(10, 64, 3, 3);
        let r = r.unwrap();
        let mut seen = [false; 10];
        for (_, reps) in r.groups().iter() {
            for s in reps {
                seen[s.0 as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn get_rejects_unknown_gid() {
        let r = ring();
        assert!(r.groups().get(u32::MAX).is_none());
        assert!(r.groups().get(0).is_some());
    }

    #[test]
    fn replication_factor_one_works() {
        let r = Ring::new(5, 16, 1, 0).unwrap();
        for key in 0..100u64 {
            assert_eq!(r.replicas_for_key(key).len(), 1);
        }
    }
}
