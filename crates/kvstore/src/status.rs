//! The piggybacked server status carried in the SS segment of NetRS
//! responses.
//!
//! C3 (the selector the paper uses throughout) needs two numbers from each
//! server: its pending-request count ("queue size") and its service-time
//! estimate. The paper's packet format reserves the variable-length SS
//! segment for exactly this; our canonical encoding is 12 bytes.

use bytes::{BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Server status piggybacked on every response (§IV-A, SS segment).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct ServerStatus {
    /// Pending requests at the server: waiting plus in service.
    pub queue_len: u32,
    /// The server's smoothed estimate of its own service time, in
    /// nanoseconds.
    pub service_time_ns: u64,
}

/// Encoded length of [`ServerStatus`] on the wire.
pub const STATUS_WIRE_LEN: usize = 12;

impl ServerStatus {
    /// The service-time estimate as a duration.
    #[must_use]
    pub fn service_time(&self) -> netrs_simcore::SimDuration {
        netrs_simcore::SimDuration::from_nanos(self.service_time_ns)
    }

    /// Encodes the status into the SS byte layout (big-endian `queue_len`
    /// then `service_time_ns`).
    #[must_use]
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(STATUS_WIRE_LEN);
        buf.put_u32(self.queue_len);
        buf.put_u64(self.service_time_ns);
        buf.freeze()
    }

    /// Decodes a status from an SS segment.
    ///
    /// # Errors
    ///
    /// Returns an error when the segment is not exactly
    /// [`STATUS_WIRE_LEN`] bytes.
    pub fn decode(buf: &[u8]) -> Result<Self, StatusError> {
        if buf.len() != STATUS_WIRE_LEN {
            return Err(StatusError::BadLength(buf.len()));
        }
        Ok(ServerStatus {
            queue_len: u32::from_be_bytes(buf[0..4].try_into().expect("length checked")),
            service_time_ns: u64::from_be_bytes(buf[4..12].try_into().expect("length checked")),
        })
    }
}

/// Errors decoding a [`ServerStatus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusError {
    /// The SS segment had the wrong length.
    BadLength(usize),
}

impl std::fmt::Display for StatusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatusError::BadLength(n) => {
                write!(f, "server status must be {STATUS_WIRE_LEN} bytes, got {n}")
            }
        }
    }
}

impl std::error::Error for StatusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_round_trips() {
        let s = ServerStatus {
            queue_len: 17,
            service_time_ns: 3_987_654,
        };
        let wire = s.encode();
        assert_eq!(wire.len(), STATUS_WIRE_LEN);
        assert_eq!(ServerStatus::decode(&wire).unwrap(), s);
    }

    #[test]
    fn wrong_length_is_rejected() {
        assert_eq!(
            ServerStatus::decode(&[0u8; 5]).unwrap_err(),
            StatusError::BadLength(5)
        );
        assert_eq!(
            ServerStatus::decode(&[0u8; 16]).unwrap_err(),
            StatusError::BadLength(16)
        );
        assert!(StatusError::BadLength(5).to_string().contains("12"));
    }

    #[test]
    fn extreme_values_round_trip() {
        let s = ServerStatus {
            queue_len: u32::MAX,
            service_time_ns: u64::MAX,
        };
        assert_eq!(ServerStatus::decode(&s.encode()).unwrap(), s);
        let zero = ServerStatus::default();
        assert_eq!(ServerStatus::decode(&zero.encode()).unwrap(), zero);
    }
}
