//! The distributed key-value store substrate of the NetRS reproduction.
//!
//! NetRS sits in front of a Dynamo-style replicated key-value store
//! (§V-A): keys are placed on `Ns = 100` servers by consistent hashing
//! with a replication factor of 3, each server processes `Np = 4` requests
//! in parallel with exponentially distributed service times, and server
//! performance fluctuates bimodally every 50 ms. Servers piggyback their
//! status (queue length and a service-time estimate) on responses for the
//! replica-selection algorithm.
//!
//! This crate provides those pieces:
//!
//! * [`Ring`] — a consistent-hash ring with virtual nodes, plus the
//!   replica-group database ([`ReplicaGroups`]) that maps the 3-byte RGID
//!   of the wire format to a concrete replica set,
//! * [`Server`] — the queueing model of one storage server, driven by the
//!   simulation's event loop, and
//! * [`ServerStatus`] — the byte-encoded piggyback payload carried in the
//!   SS segment of NetRS responses.
//!
//! # Examples
//!
//! ```
//! use netrs_kvstore::{Ring, ServerId};
//!
//! let ring = Ring::new(100, 64, 3, 42)?;
//! let replicas = ring.replicas_for_key(0xDEAD_BEEF);
//! assert_eq!(replicas.len(), 3);
//! let gid = ring.group_of_key(0xDEAD_BEEF);
//! assert_eq!(ring.groups().replicas(gid), replicas);
//! # Ok::<(), netrs_kvstore::RingError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ring;
mod server;
mod status;
mod version;

pub use ring::{ReplicaGroups, Ring, RingError};
pub use server::{Arrival, Completion, Server, ServerConfig, ServerStats};
pub use status::{ServerStatus, StatusError, STATUS_WIRE_LEN};
pub use version::VersionTable;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a storage server (`0..Ns`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ServerId(pub u32);

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "srv{}", self.0)
    }
}

/// 64-bit key/placement hash (SplitMix64 finalizer — fast, well mixed, and
/// dependency-free).
#[must_use]
pub fn hash64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Combines two hash streams (e.g. server id and vnode index).
#[must_use]
pub fn hash64_pair(a: u64, b: u64) -> u64 {
    hash64(a ^ hash64(b).rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash64_is_deterministic_and_spread() {
        assert_eq!(hash64(1), hash64(1));
        assert_ne!(hash64(1), hash64(2));
        // Low bits should vary even for sequential inputs.
        let mut low_bits = std::collections::HashSet::new();
        for i in 0..64u64 {
            low_bits.insert(hash64(i) & 0xFF);
        }
        assert!(low_bits.len() > 40);
    }

    #[test]
    fn hash64_pair_is_order_sensitive() {
        assert_ne!(hash64_pair(1, 2), hash64_pair(2, 1));
    }
}
