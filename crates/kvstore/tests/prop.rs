//! Property-based tests of the key-value substrate.

use netrs_kvstore::{Arrival, Ring, Server, ServerConfig, ServerId, ServerStatus};
use netrs_simcore::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Consistent hashing: replica sets always have exactly RF distinct
    /// members, and the group database agrees with direct lookup.
    #[test]
    fn ring_invariants(
        servers in 3u32..40,
        vnodes in 1u32..32,
        rf in 1u32..=3,
        seed in any::<u64>(),
        keys in proptest::collection::vec(any::<u64>(), 1..50),
    ) {
        let ring = Ring::new(servers, vnodes, rf, seed).unwrap();
        for key in keys {
            let reps = ring.replicas_for_key(key);
            prop_assert_eq!(reps.len(), rf as usize);
            let mut sorted = reps.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), rf as usize, "duplicate replicas");
            prop_assert!(reps.iter().all(|s| s.0 < servers));
            let gid = ring.group_of_key(key);
            prop_assert_eq!(ring.groups().replicas(gid), reps);
        }
    }

    /// The server model conserves requests: arrivals = completions +
    /// in-service + queued, in any interleaving of arrivals and
    /// completions; and the queue-length report always matches.
    #[test]
    fn server_conserves_requests(
        seed in any::<u64>(),
        slots in 1u32..6,
        ops in proptest::collection::vec(any::<bool>(), 1..200),
    ) {
        let cfg = ServerConfig { slots, ..ServerConfig::default() };
        let mut server: Server<u32> = Server::new(ServerId(0), cfg, SimRng::from_seed(seed));
        let mut now = SimTime::ZERO;
        let mut arrived = 0u32;
        let mut completed = 0u32;
        let mut scheduled: u32 = 0; // copies currently in service
        for (i, arrive) in ops.into_iter().enumerate() {
            now += SimDuration::from_micros(10);
            if arrive {
                match server.arrive(i as u32, now) {
                    Arrival::Started { finish_at } => {
                        prop_assert!(finish_at >= now);
                        scheduled += 1;
                    }
                    Arrival::Queued => {}
                }
                arrived += 1;
            } else if scheduled > 0 {
                let comp = server.complete(now);
                completed += 1;
                scheduled -= 1;
                if let Some((_, finish_at)) = comp.next {
                    prop_assert!(finish_at >= now);
                    scheduled += 1;
                }
            }
            prop_assert_eq!(server.in_service(), scheduled);
            prop_assert!(server.in_service() <= slots);
            prop_assert_eq!(
                server.queue_len(),
                arrived - completed,
                "queue_len must count waiting + in-service"
            );
        }
        prop_assert_eq!(server.stats().arrived, u64::from(arrived));
        prop_assert_eq!(server.stats().completed, u64::from(completed));
    }

    /// Status piggyback round-trips through its wire encoding for any
    /// value.
    #[test]
    fn status_roundtrip(queue_len in any::<u32>(), service in any::<u64>()) {
        let s = ServerStatus { queue_len, service_time_ns: service };
        prop_assert_eq!(ServerStatus::decode(&s.encode()).unwrap(), s);
    }

    /// Fluctuation only ever produces the two configured modes.
    #[test]
    fn fluctuation_is_bimodal(seed in any::<u64>(), d in 1.0f64..8.0) {
        let cfg = ServerConfig { fluctuation_range: d, ..ServerConfig::default() };
        let base = cfg.base_service_time;
        let fast = base.mul_f64(1.0 / d);
        let mut server: Server<u32> = Server::new(ServerId(1), cfg, SimRng::from_seed(seed));
        for _ in 0..50 {
            server.fluctuate();
            let m = server.current_mean();
            prop_assert!(m == base || m == fast, "unexpected mode {m:?}");
        }
    }
}
