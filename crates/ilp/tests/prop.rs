//! Property-based verification of the ILP stack against brute force.
//!
//! These tests are the correctness anchor for the whole solver: random
//! small binary programs are solved both by exhaustive enumeration and by
//! LP-relaxation branch-and-bound, and the answers must agree. Any bug in
//! the simplex (wrong pivots, broken phase 1, bad bound handling) shows up
//! as a disagreement here.

use netrs_ilp::{solve_lp, BranchAndBound, IlpError, LpStatus, Problem, Sense};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomIlp {
    costs: Vec<i32>,
    rows: Vec<(Vec<i32>, u8, i32)>, // coeffs, sense tag, rhs
}

fn arb_ilp() -> impl Strategy<Value = RandomIlp> {
    (1usize..8).prop_flat_map(|n| {
        let costs = proptest::collection::vec(-5i32..=5, n);
        let row = (proptest::collection::vec(-3i32..=3, n), 0u8..3, -4i32..=6);
        let rows = proptest::collection::vec(row, 0..5);
        (costs, rows).prop_map(|(costs, rows)| RandomIlp { costs, rows })
    })
}

fn build(ilp: &RandomIlp) -> Problem {
    let mut p = Problem::minimize();
    let vars: Vec<_> = ilp
        .costs
        .iter()
        .map(|&c| p.add_binary(f64::from(c)))
        .collect();
    for (coeffs, sense, rhs) in &ilp.rows {
        let sense = match sense {
            0 => Sense::Le,
            1 => Sense::Ge,
            _ => Sense::Eq,
        };
        p.add_constraint(
            coeffs
                .iter()
                .enumerate()
                .filter(|&(_, &a)| a != 0)
                .map(|(j, &a)| (vars[j], f64::from(a))),
            sense,
            f64::from(*rhs),
        );
    }
    p
}

fn brute_force(p: &Problem) -> Option<f64> {
    let n = p.num_vars();
    let mut best: Option<f64> = None;
    for mask in 0u32..(1u32 << n) {
        let x: Vec<f64> = (0..n).map(|j| f64::from((mask >> j) & 1)).collect();
        if p.is_feasible(&x, 1e-9) {
            let obj = p.objective_value(&x);
            if best.is_none_or(|b| obj < b - 1e-12) {
                best = Some(obj);
            }
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Branch-and-bound agrees exactly with exhaustive enumeration.
    #[test]
    fn bnb_matches_brute_force(ilp in arb_ilp()) {
        let p = build(&ilp);
        let reference = brute_force(&p);
        let result = BranchAndBound::default().solve(&p);
        match (reference, result) {
            (Some(best), Ok(sol)) => {
                prop_assert!(p.is_feasible(&sol.values, 1e-6),
                    "solver returned infeasible point {:?}", sol.values);
                prop_assert!((sol.objective - best).abs() < 1e-6,
                    "objective {} vs brute force {}", sol.objective, best);
                prop_assert!(sol.bound <= sol.objective + 1e-9);
            }
            (None, Err(IlpError::Infeasible)) => {}
            (r, s) => prop_assert!(false, "disagreement: brute={r:?} solver={s:?}"),
        }
    }

    /// The LP relaxation is always a valid lower bound on the ILP optimum
    /// and never reports a spurious status.
    #[test]
    fn lp_bounds_the_ilp(ilp in arb_ilp()) {
        let p = build(&ilp);
        let lp = solve_lp(&p);
        match lp.status {
            LpStatus::Optimal => {
                if let Some(best) = brute_force(&p) {
                    prop_assert!(lp.objective <= best + 1e-6,
                        "LP bound {} above ILP optimum {}", lp.objective, best);
                }
                // The LP point satisfies the *relaxed* constraints.
                for (j, &v) in lp.values.iter().enumerate() {
                    prop_assert!(v >= p.lower_bounds()[j] - 1e-6);
                    prop_assert!(v <= p.upper_bounds()[j] + 1e-6);
                }
            }
            LpStatus::Infeasible => {
                prop_assert_eq!(brute_force(&p), None,
                    "LP infeasible but an integer point exists");
            }
            LpStatus::Unbounded => {
                // Impossible: binaries are boxed in [0, 1].
                prop_assert!(false, "boxed LP cannot be unbounded");
            }
            LpStatus::IterationLimit => {
                // Tolerated (tiny problems should never hit it, though).
                prop_assert!(false, "iteration limit on a tiny LP");
            }
        }
    }

    /// Anytime mode (small node budgets) never fabricates infeasibility
    /// or returns an infeasible "solution".
    #[test]
    fn anytime_is_sound(ilp in arb_ilp(), budget in 1u64..6) {
        let p = build(&ilp);
        let reference = brute_force(&p);
        let bb = BranchAndBound { node_limit: budget, ..BranchAndBound::default() };
        match bb.solve(&p) {
            Ok(sol) => {
                prop_assert!(p.is_feasible(&sol.values, 1e-6));
                let best = reference.expect("solver found a point so one exists");
                prop_assert!(sol.objective >= best - 1e-6);
            }
            Err(IlpError::Infeasible) => prop_assert_eq!(reference, None),
            Err(IlpError::BudgetExhausted) => {}
            Err(IlpError::Unbounded) => prop_assert!(false, "boxed ILP cannot be unbounded"),
        }
    }
}
