//! A dense, bounded-variable, two-phase primal simplex.
//!
//! Variables live in boxes `[lo, hi]` (possibly `hi = ∞`), which lets the
//! branch-and-bound layer fix binaries by shrinking bounds instead of
//! adding rows. Phase 1 drives a full artificial basis to zero; phase 2
//! optimizes the real objective. Dantzig pricing with a Bland's-rule
//! fallback guards against cycling.

use crate::{Problem, Sense};

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
    /// No point satisfies all constraints and bounds.
    Infeasible,
    /// The objective decreases without bound.
    Unbounded,
    /// The iteration budget ran out before convergence.
    IterationLimit,
}

/// An LP solution (values are meaningful for [`LpStatus::Optimal`] only).
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Solver status.
    pub status: LpStatus,
    /// Variable values (structural variables only).
    pub values: Vec<f64>,
    /// Objective value at `values`.
    pub objective: f64,
    /// Simplex iterations used across both phases.
    pub iterations: u64,
}

const FEAS_TOL: f64 = 1e-7;
const PIVOT_TOL: f64 = 1e-9;
const COST_TOL: f64 = 1e-9;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarStatus {
    Basic(usize),
    AtLower,
    AtUpper,
}

struct Tableau {
    m: usize,
    ncols: usize,

    art_start: usize,
    t: Vec<f64>, // row-major m x ncols: current B^{-1} A
    lo: Vec<f64>,
    hi: Vec<f64>,
    xval: Vec<f64>,
    basis: Vec<usize>,
    status: Vec<VarStatus>,
    d: Vec<f64>, // reduced costs
    iterations: u64,
    iter_limit: u64,
}

impl Tableau {
    fn at(&self, i: usize, j: usize) -> f64 {
        self.t[i * self.ncols + j]
    }

    fn build(p: &Problem, lower: &[f64], upper: &[f64], iter_limit: u64) -> Tableau {
        let n = p.num_vars();
        let m = p.num_constraints();
        let nslack = p
            .constraints()
            .iter()
            .filter(|c| c.sense != Sense::Eq)
            .count();
        let art_start = n + nslack;
        let ncols = art_start + m;

        let mut t = vec![0.0; m * ncols];
        let mut b = vec![0.0; m];
        let mut lo = Vec::with_capacity(ncols);
        let mut hi = Vec::with_capacity(ncols);
        lo.extend_from_slice(lower);
        hi.extend_from_slice(upper);
        for _ in 0..nslack + m {
            lo.push(0.0);
            hi.push(f64::INFINITY);
        }

        let mut slack = n;
        for (i, c) in p.constraints().iter().enumerate() {
            for &(v, a) in &c.terms {
                t[i * ncols + v] += a;
            }
            b[i] = c.rhs;
            match c.sense {
                Sense::Le => {
                    t[i * ncols + slack] = 1.0;
                    slack += 1;
                }
                Sense::Ge => {
                    t[i * ncols + slack] = -1.0;
                    slack += 1;
                }
                Sense::Eq => {}
            }
        }

        // Nonbasic variables start at their lower bound.
        let mut xval = vec![0.0; ncols];
        let mut status = vec![VarStatus::AtLower; ncols];
        xval[..art_start].copy_from_slice(&lo[..art_start]);

        // Scale rows so residuals are non-negative, then seed an
        // artificial identity basis carrying the residuals.
        let mut basis = Vec::with_capacity(m);
        for i in 0..m {
            let mut residual = b[i];
            for j in 0..art_start {
                residual -= t[i * ncols + j] * xval[j];
            }
            if residual < 0.0 {
                for j in 0..art_start {
                    t[i * ncols + j] = -t[i * ncols + j];
                }
                residual = -residual;
            }
            let art = art_start + i;
            t[i * ncols + art] = 1.0;
            xval[art] = residual;
            status[art] = VarStatus::Basic(i);
            basis.push(art);
        }

        Tableau {
            m,
            ncols,

            art_start,
            t,
            lo,
            hi,
            xval,
            basis,
            status,
            d: vec![0.0; ncols],
            iterations: 0,
            iter_limit,
        }
    }

    /// Recomputes reduced costs `d = c − c_B^T B⁻¹A` for a cost vector
    /// over all columns.
    fn price(&mut self, cost: &[f64]) {
        self.d[..self.ncols].copy_from_slice(&cost[..self.ncols]);
        for i in 0..self.m {
            let cb = cost[self.basis[i]];
            if cb != 0.0 {
                let row = &self.t[i * self.ncols..(i + 1) * self.ncols];
                for (dj, &a) in self.d.iter_mut().zip(row) {
                    *dj -= cb * a;
                }
            }
        }
    }

    fn span(&self, j: usize) -> f64 {
        self.hi[j] - self.lo[j]
    }

    /// One phase of the simplex. Returns `Ok(())` on (phase-)optimality.
    fn optimize(&mut self) -> Result<(), LpStatus> {
        let bland_after = 2_000 + 20 * (self.m as u64 + self.ncols as u64);
        loop {
            self.iterations += 1;
            if self.iterations > self.iter_limit {
                return Err(LpStatus::IterationLimit);
            }
            let bland = self.iterations > bland_after;

            // Entering variable.
            let mut enter: Option<(usize, f64, f64)> = None; // (col, dir, violation)
            for j in 0..self.ncols {
                let (dir, viol) = match self.status[j] {
                    VarStatus::Basic(_) => continue,
                    VarStatus::AtLower => (1.0, -self.d[j]),
                    VarStatus::AtUpper => (-1.0, self.d[j]),
                };
                if viol <= COST_TOL || self.span(j) <= PIVOT_TOL {
                    continue;
                }
                if bland {
                    enter = Some((j, dir, viol));
                    break;
                }
                if enter.is_none_or(|(_, _, best)| viol > best) {
                    enter = Some((j, dir, viol));
                }
            }
            let Some((j, dir, _)) = enter else {
                return Ok(());
            };

            // Ratio test.
            let mut t_best = self.span(j); // bound-flip limit (may be inf)
            let mut leave: Option<(usize, bool)> = None; // (row, hits_upper)
            for i in 0..self.m {
                let delta = -dir * self.at(i, j);
                let bv = self.basis[i];
                let cap = if delta < -PIVOT_TOL {
                    (self.xval[bv] - self.lo[bv]) / -delta
                } else if delta > PIVOT_TOL {
                    if self.hi[bv].is_infinite() {
                        continue;
                    }
                    (self.hi[bv] - self.xval[bv]) / delta
                } else {
                    continue;
                };
                let cap = cap.max(0.0);
                let better = match leave {
                    _ if cap < t_best - 1e-10 => true,
                    // Near-ties: prefer the larger pivot element for
                    // stability (or the smaller variable id under Bland).
                    Some((r, _)) if (cap - t_best).abs() <= 1e-10 => {
                        if bland {
                            bv < self.basis[r]
                        } else {
                            self.at(i, j).abs() > self.at(r, j).abs()
                        }
                    }
                    None if cap <= t_best => true,
                    _ => false,
                };
                if better {
                    t_best = cap.min(t_best);
                    leave = Some((i, delta > 0.0));
                }
            }

            if t_best.is_infinite() {
                return Err(LpStatus::Unbounded);
            }
            let step = t_best.max(0.0);

            // Move the entering variable and all basics.
            for i in 0..self.m {
                let delta = -dir * self.at(i, j);
                if delta != 0.0 {
                    let bv = self.basis[i];
                    self.xval[bv] += delta * step;
                }
            }
            self.xval[j] += dir * step;

            match leave {
                None => {
                    // Bound flip: no basis change.
                    self.status[j] = if dir > 0.0 {
                        self.xval[j] = self.hi[j];
                        VarStatus::AtUpper
                    } else {
                        self.xval[j] = self.lo[j];
                        VarStatus::AtLower
                    };
                }
                Some((r, hits_upper)) => {
                    let lv = self.basis[r];
                    self.status[lv] = if hits_upper {
                        self.xval[lv] = self.hi[lv];
                        VarStatus::AtUpper
                    } else {
                        self.xval[lv] = self.lo[lv];
                        VarStatus::AtLower
                    };
                    self.pivot(r, j);
                }
            }
        }
    }

    /// Gaussian elimination pivot making column `j` basic in row `r`.
    fn pivot(&mut self, r: usize, j: usize) {
        let ncols = self.ncols;
        let piv = self.at(r, j);
        debug_assert!(piv.abs() > PIVOT_TOL, "pivot on a zero element");
        let inv = 1.0 / piv;
        for v in &mut self.t[r * ncols..(r + 1) * ncols] {
            *v *= inv;
        }
        // Copy the pivot row once to keep the borrow checker happy.
        let prow: Vec<f64> = self.t[r * ncols..(r + 1) * ncols].to_vec();
        for i in 0..self.m {
            if i == r {
                continue;
            }
            let factor = self.at(i, j);
            if factor != 0.0 {
                let row = &mut self.t[i * ncols..(i + 1) * ncols];
                for (v, &pv) in row.iter_mut().zip(&prow) {
                    *v -= factor * pv;
                }
            }
        }
        let dfac = self.d[j];
        if dfac != 0.0 {
            for (v, &pv) in self.d.iter_mut().zip(&prow) {
                *v -= dfac * pv;
            }
        }
        self.basis[r] = j;
        self.status[j] = VarStatus::Basic(r);
    }

    /// Sum of artificial-variable values (phase-1 objective).
    fn infeasibility(&self) -> f64 {
        self.xval[self.art_start..].iter().sum()
    }

    /// After phase 1: pin artificials to zero and pivot basic ones out
    /// where possible.
    fn retire_artificials(&mut self) {
        for a in self.art_start..self.ncols {
            self.lo[a] = 0.0;
            self.hi[a] = 0.0;
        }
        for r in 0..self.m {
            if self.basis[r] >= self.art_start {
                // Degenerate pivot onto any usable structural/slack column.
                let target = (0..self.art_start).find(|&j| {
                    !matches!(self.status[j], VarStatus::Basic(_)) && self.at(r, j).abs() > 1e-7
                });
                if let Some(j) = target {
                    let art = self.basis[r];
                    // The artificial sits at zero, so this pivot is
                    // degenerate: the basis changes, values do not.
                    self.pivot(r, j);
                    self.status[art] = VarStatus::AtLower;
                    self.xval[art] = 0.0;
                }
            }
        }
    }
}

/// Solves the LP relaxation of `p` (integrality dropped; declared bounds
/// kept) with default limits.
///
/// # Examples
///
/// ```
/// use netrs_ilp::{solve_lp, LpStatus, Problem, Sense};
///
/// let mut p = Problem::minimize();
/// let x = p.add_continuous(-1.0, 0.0, 10.0); // maximize x
/// p.add_constraint([(x, 2.0)], Sense::Le, 10.0);
/// let sol = solve_lp(&p);
/// assert_eq!(sol.status, LpStatus::Optimal);
/// assert!((sol.values[0] - 5.0).abs() < 1e-6);
/// ```
#[must_use]
pub fn solve_lp(p: &Problem) -> LpSolution {
    solve_lp_with_bounds(p, p.lower_bounds(), p.upper_bounds(), 200_000)
}

/// Solves the LP relaxation with overridden variable bounds (used by
/// branch-and-bound to fix binaries) and an iteration cap.
pub(crate) fn solve_lp_with_bounds(
    p: &Problem,
    lower: &[f64],
    upper: &[f64],
    iter_limit: u64,
) -> LpSolution {
    debug_assert_eq!(lower.len(), p.num_vars());
    debug_assert_eq!(upper.len(), p.num_vars());
    // Fast infeasibility: crossed bounds.
    if lower.iter().zip(upper).any(|(l, u)| l > u) {
        return LpSolution {
            status: LpStatus::Infeasible,
            values: Vec::new(),
            objective: f64::INFINITY,
            iterations: 0,
        };
    }

    let mut tab = Tableau::build(p, lower, upper, iter_limit);

    // Phase 1: minimize the sum of artificials.
    let mut phase1_cost = vec![0.0; tab.ncols];
    for c in &mut phase1_cost[tab.art_start..] {
        *c = 1.0;
    }
    tab.price(&phase1_cost);
    match tab.optimize() {
        Ok(()) => {}
        Err(LpStatus::Unbounded) => unreachable!("phase 1 objective is bounded below by 0"),
        Err(status) => {
            return LpSolution {
                status,
                values: Vec::new(),
                objective: f64::INFINITY,
                iterations: tab.iterations,
            }
        }
    }
    if tab.infeasibility() > FEAS_TOL {
        return LpSolution {
            status: LpStatus::Infeasible,
            values: Vec::new(),
            objective: f64::INFINITY,
            iterations: tab.iterations,
        };
    }
    tab.retire_artificials();

    // Phase 2: the real objective.
    let mut cost = vec![0.0; tab.ncols];
    cost[..p.num_vars()].copy_from_slice(p.objective());
    tab.price(&cost);
    let status = match tab.optimize() {
        Ok(()) => LpStatus::Optimal,
        Err(s) => s,
    };
    if status != LpStatus::Optimal {
        return LpSolution {
            status,
            values: Vec::new(),
            objective: f64::INFINITY,
            iterations: tab.iterations,
        };
    }

    let mut values: Vec<f64> = tab.xval[..p.num_vars()].to_vec();
    for (j, v) in values.iter_mut().enumerate() {
        *v = v.clamp(lower[j], upper[j].min(f64::MAX));
        if v.abs() < 1e-11 {
            *v = 0.0;
        }
    }
    let objective = p.objective_value(&values);
    LpSolution {
        status: LpStatus::Optimal,
        values,
        objective,
        iterations: tab.iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_bounds_only() {
        // min x + 2y with x in [1, 4], y in [0.5, 3]: optimum at lows.
        let mut p = Problem::minimize();
        let x = p.add_continuous(1.0, 1.0, 4.0);
        let y = p.add_continuous(2.0, 0.5, 3.0);
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[x] - 1.0).abs() < 1e-7);
        assert!((sol.values[y] - 0.5).abs() < 1e-7);
        assert!((sol.objective - 2.0).abs() < 1e-7);
    }

    #[test]
    fn classic_two_var_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (Hillier).
        // Optimum (2, 6) with value 36.
        let mut p = Problem::minimize();
        let x = p.add_continuous(-3.0, 0.0, f64::INFINITY);
        let y = p.add_continuous(-5.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0)], Sense::Le, 4.0);
        p.add_constraint([(y, 2.0)], Sense::Le, 12.0);
        p.add_constraint([(x, 3.0), (y, 2.0)], Sense::Le, 18.0);
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            (sol.objective + 36.0).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
        assert!((sol.values[x] - 2.0).abs() < 1e-6);
        assert!((sol.values[y] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraints_need_phase_one() {
        // min x + y s.t. x + y = 5, x - y = 1 → (3, 2), objective 5.
        let mut p = Problem::minimize();
        let x = p.add_continuous(1.0, 0.0, f64::INFINITY);
        let y = p.add_continuous(1.0, 0.0, f64::INFINITY);
        p.add_constraint([(x, 1.0), (y, 1.0)], Sense::Eq, 5.0);
        p.add_constraint([(x, 1.0), (y, -1.0)], Sense::Eq, 1.0);
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[x] - 3.0).abs() < 1e-6);
        assert!((sol.values[y] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 0.0, 1.0);
        p.add_constraint([(x, 1.0)], Sense::Ge, 2.0);
        assert_eq!(solve_lp(&p).status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut p = Problem::minimize();
        let _x = p.add_continuous(-1.0, 0.0, f64::INFINITY);
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_bind_without_rows() {
        // max x + y, x,y <= 1 via bounds only, x + y <= 1.5 via a row.
        let mut p = Problem::minimize();
        let x = p.add_continuous(-1.0, 0.0, 1.0);
        let y = p.add_continuous(-1.0, 0.0, 1.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Sense::Le, 1.5);
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 1.5).abs() < 1e-6);
        assert!(sol.values[x] <= 1.0 + 1e-9 && sol.values[y] <= 1.0 + 1e-9);
    }

    #[test]
    fn negative_rhs_rows_are_scaled() {
        // x >= -3 written as -x <= 3 with negative coefficients; and a
        // constraint with negative rhs: x - y <= -1 → y >= x + 1.
        let mut p = Problem::minimize();
        let x = p.add_continuous(0.0, 0.0, 10.0);
        let y = p.add_continuous(1.0, 0.0, 10.0);
        p.add_constraint([(x, 1.0), (y, -1.0)], Sense::Le, -1.0);
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[y] - 1.0).abs() < 1e-6, "y = {}", sol.values[y]);
    }

    #[test]
    fn lp_relaxation_of_binary_problem_is_fractional() {
        // min -(x + y) s.t. x + y <= 1.5, x,y binary: LP gives 1.5.
        let mut p = Problem::minimize();
        let x = p.add_binary(-1.0);
        let y = p.add_binary(-1.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Sense::Le, 1.5);
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective + 1.5).abs() < 1e-6);
    }

    #[test]
    fn degenerate_ties_do_not_cycle() {
        // A classically degenerate LP (multiple constraints active at the
        // origin). Beale's cycling example adapted: ensure termination.
        let mut p = Problem::minimize();
        let x1 = p.add_continuous(-0.75, 0.0, f64::INFINITY);
        let x2 = p.add_continuous(150.0, 0.0, f64::INFINITY);
        let x3 = p.add_continuous(-0.02, 0.0, f64::INFINITY);
        let x4 = p.add_continuous(6.0, 0.0, f64::INFINITY);
        p.add_constraint(
            [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint(
            [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
            Sense::Le,
            0.0,
        );
        p.add_constraint([(x3, 1.0)], Sense::Le, 1.0);
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!(
            (sol.objective + 0.05).abs() < 1e-6,
            "objective {}",
            sol.objective
        );
    }

    #[test]
    fn fixed_variables_via_bounds() {
        let mut p = Problem::minimize();
        let x = p.add_binary(1.0);
        let y = p.add_binary(1.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Sense::Ge, 1.0);
        // Fix x = 1 through bounds (as branch-and-bound does).
        let sol = solve_lp_with_bounds(&p, &[1.0, 0.0], &[1.0, 1.0], 10_000);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[x] - 1.0).abs() < 1e-9);
        assert!(sol.values[y].abs() < 1e-9);
        // Crossed bounds short-circuit to infeasible.
        let sol = solve_lp_with_bounds(&p, &[1.0, 0.0], &[0.0, 1.0], 10_000);
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn redundant_equality_rows_are_tolerated() {
        // Duplicate equality rows leave an artificial basic at zero.
        let mut p = Problem::minimize();
        let x = p.add_continuous(1.0, 0.0, 10.0);
        let y = p.add_continuous(2.0, 0.0, 10.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Sense::Eq, 4.0);
        p.add_constraint([(x, 1.0), (y, 1.0)], Sense::Eq, 4.0);
        p.add_constraint([(x, 2.0), (y, 2.0)], Sense::Eq, 8.0);
        let sol = solve_lp(&p);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.values[x] - 4.0).abs() < 1e-6);
        assert!((sol.objective - 4.0).abs() < 1e-6);
    }
}
