//! Integer linear programming for the NetRS controller.
//!
//! §III-B of the NetRS paper formalizes RSNode placement as an ILP and
//! solves it "with an optimizer (e.g. Gurobi, CPLEX)", noting that a
//! suboptimal plan obtained "by terminating the solving process early" is
//! acceptable. Neither commercial solver can be a dependency of an
//! open-source reproduction, so this crate implements the required solver
//! stack from scratch:
//!
//! * [`Problem`] — a mixed 0/1 + continuous linear program with per
//!   variable bounds and `≤ / ≥ / =` constraints,
//! * [`solve_lp`] — a dense, bounded-variable, two-phase primal simplex
//!   for the LP relaxation, and
//! * [`BranchAndBound`] — best-first branch-and-bound on the binary
//!   variables with an *anytime* node budget: when the budget runs out it
//!   returns the best incumbent found so far plus the proven bound, which
//!   is exactly the early-termination trade-off the paper describes.
//!
//! # Examples
//!
//! Minimal facility-location flavour (one of two "operators" must open to
//! cover a demand):
//!
//! ```
//! use netrs_ilp::{BranchAndBound, Problem, Sense};
//!
//! let mut p = Problem::minimize();
//! let open_a = p.add_binary(3.0); // opening cost 3
//! let open_b = p.add_binary(1.0); // opening cost 1
//! // Cover the demand: open_a + open_b >= 1.
//! p.add_constraint([(open_a, 1.0), (open_b, 1.0)], Sense::Ge, 1.0);
//!
//! let sol = BranchAndBound::default().solve(&p).expect("feasible");
//! assert_eq!(sol.objective.round(), 1.0);
//! assert_eq!(sol.values[open_b].round(), 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod simplex;

pub use branch::{BranchAndBound, IlpError, IlpSolution, IlpStatus};
pub use simplex::{solve_lp, LpSolution, LpStatus};

use serde::{Deserialize, Serialize};

/// Index of a decision variable within a [`Problem`].
pub type VarId = usize;

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Sense {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// One linear constraint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Sparse left-hand side as `(variable, coefficient)` pairs.
    pub terms: Vec<(VarId, f64)>,
    /// Relation between the left- and right-hand sides.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program / 0-1 integer program in minimization form.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    objective: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    integer: Vec<bool>,
    constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty minimization problem.
    #[must_use]
    pub fn minimize() -> Self {
        Problem::default()
    }

    /// Adds a binary (0/1) variable with the given objective coefficient,
    /// returning its id.
    pub fn add_binary(&mut self, cost: f64) -> VarId {
        self.objective.push(cost);
        self.lower.push(0.0);
        self.upper.push(1.0);
        self.integer.push(true);
        self.objective.len() - 1
    }

    /// Adds a continuous variable with bounds `[lower, upper]` (use
    /// `f64::INFINITY` for an unbounded top) and the given objective
    /// coefficient.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or `lower` is not finite.
    pub fn add_continuous(&mut self, cost: f64, lower: f64, upper: f64) -> VarId {
        assert!(lower.is_finite(), "lower bound must be finite");
        assert!(lower <= upper, "lower bound above upper bound");
        self.objective.push(cost);
        self.lower.push(lower);
        self.upper.push(upper);
        self.integer.push(false);
        self.objective.len() - 1
    }

    /// Adds a constraint.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not exist or a coefficient
    /// is not finite.
    pub fn add_constraint(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        sense: Sense,
        rhs: f64,
    ) {
        let terms: Vec<(VarId, f64)> = terms.into_iter().collect();
        for &(v, a) in &terms {
            assert!(
                v < self.num_vars(),
                "constraint references unknown variable {v}"
            );
            assert!(a.is_finite(), "constraint coefficient must be finite");
        }
        assert!(rhs.is_finite(), "constraint rhs must be finite");
        self.constraints.push(Constraint { terms, sense, rhs });
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Objective coefficients.
    #[must_use]
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Per-variable lower bounds.
    #[must_use]
    pub fn lower_bounds(&self) -> &[f64] {
        &self.lower
    }

    /// Per-variable upper bounds.
    #[must_use]
    pub fn upper_bounds(&self) -> &[f64] {
        &self.upper
    }

    /// Which variables are 0/1-integer.
    #[must_use]
    pub fn integrality(&self) -> &[bool] {
        &self.integer
    }

    /// The constraint list.
    #[must_use]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the objective at a point.
    #[must_use]
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks a point against every constraint and bound, within `tol`.
    #[must_use]
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (j, &v) in x.iter().enumerate() {
            if v < self.lower[j] - tol || v > self.upper[j] + tol {
                return false;
            }
            if self.integer[j] && (v - v.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v]).sum();
            match c.sense {
                Sense::Le => lhs <= c.rhs + tol,
                Sense::Ge => lhs >= c.rhs - tol,
                Sense::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn problem_builder_tracks_shapes() {
        let mut p = Problem::minimize();
        let a = p.add_binary(1.0);
        let b = p.add_continuous(0.5, 0.0, 10.0);
        p.add_constraint([(a, 1.0), (b, 2.0)], Sense::Le, 5.0);
        assert_eq!(p.num_vars(), 2);
        assert_eq!(p.num_constraints(), 1);
        assert_eq!(p.integrality(), &[true, false]);
        assert_eq!(p.upper_bounds(), &[1.0, 10.0]);
        assert_eq!(p.objective_value(&[1.0, 2.0]), 2.0);
    }

    #[test]
    fn feasibility_checker_honours_all_rules() {
        let mut p = Problem::minimize();
        let a = p.add_binary(1.0);
        let b = p.add_continuous(0.0, 1.0, 3.0);
        p.add_constraint([(a, 1.0), (b, 1.0)], Sense::Ge, 2.0);
        assert!(p.is_feasible(&[1.0, 1.0], 1e-9));
        assert!(!p.is_feasible(&[0.5, 1.5], 1e-9), "fractional binary");
        assert!(!p.is_feasible(&[1.0, 0.5], 1e-9), "below lower bound");
        assert!(!p.is_feasible(&[0.0, 1.5], 1e-9), "constraint violated");
        assert!(!p.is_feasible(&[1.0], 1e-9), "wrong arity");
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn constraints_validate_variables() {
        let mut p = Problem::minimize();
        p.add_constraint([(0, 1.0)], Sense::Le, 1.0);
    }

    #[test]
    #[should_panic(expected = "lower bound above upper")]
    fn bounds_validated() {
        let mut p = Problem::minimize();
        let _ = p.add_continuous(0.0, 2.0, 1.0);
    }
}
