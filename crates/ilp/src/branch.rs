//! Best-first branch-and-bound over the binary variables.
//!
//! Each node fixes a subset of binaries through *bound changes* (the
//! bounded-variable simplex makes fixing free — no extra rows) and solves
//! the LP relaxation for a lower bound. Nodes explore best-bound-first so
//! the proven bound tightens as fast as possible; an optional node budget
//! turns the solver into the *anytime* optimizer the NetRS paper asks for
//! ("we could get a suboptimal solution to the ILP problem by terminating
//! the solving process early").

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::simplex::{solve_lp_with_bounds, LpStatus};
use crate::Problem;

/// How a branch-and-bound run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IlpStatus {
    /// The returned solution is proven optimal.
    Optimal,
    /// The budget ran out; the returned solution is feasible but possibly
    /// suboptimal (the paper's early-termination mode).
    Feasible,
}

/// Why a branch-and-bound run produced no solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IlpError {
    /// No assignment satisfies the constraints.
    Infeasible,
    /// The relaxation is unbounded (the integer problem is ill-posed).
    Unbounded,
    /// The budget ran out before *any* integer-feasible node was found.
    BudgetExhausted,
}

impl std::fmt::Display for IlpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IlpError::Infeasible => write!(f, "no integer-feasible solution exists"),
            IlpError::Unbounded => write!(f, "relaxation is unbounded"),
            IlpError::BudgetExhausted => {
                write!(
                    f,
                    "node budget exhausted before finding a feasible solution"
                )
            }
        }
    }
}

impl std::error::Error for IlpError {}

/// An integer solution.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Optimal or budget-limited feasible.
    pub status: IlpStatus,
    /// Variable values (binaries are exactly 0.0 or 1.0).
    pub values: Vec<f64>,
    /// Objective at `values`.
    pub objective: f64,
    /// Best proven lower bound on the optimum (equals `objective` when
    /// `status` is [`IlpStatus::Optimal`]).
    pub bound: f64,
    /// Branch-and-bound nodes expanded.
    pub nodes: u64,
    /// Simplex iterations summed across the root and every node LP.
    pub lp_iterations: u64,
}

impl IlpSolution {
    /// Relative optimality gap: `(objective − bound) / max(1, |objective|)`.
    #[must_use]
    pub fn gap(&self) -> f64 {
        (self.objective - self.bound).max(0.0) / self.objective.abs().max(1.0)
    }
}

/// Branch-and-bound configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchAndBound {
    /// Maximum nodes to expand before returning the incumbent
    /// (anytime mode). `u64::MAX` means run to optimality.
    pub node_limit: u64,
    /// Simplex iteration cap per node LP.
    pub lp_iteration_limit: u64,
    /// Integrality tolerance.
    pub int_tol: f64,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            node_limit: 200_000,
            lp_iteration_limit: 200_000,
            int_tol: 1e-6,
        }
    }
}

struct Node {
    bound: f64,
    depth: u32,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound && self.depth == other.depth
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: prefer the smallest bound, then the
        // deepest node (cheap incumbents from dives).
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then(self.depth.cmp(&other.depth))
    }
}

impl BranchAndBound {
    /// Solves the 0/1 program.
    ///
    /// # Errors
    ///
    /// * [`IlpError::Infeasible`] — no integer point satisfies the model.
    /// * [`IlpError::Unbounded`] — the LP relaxation is unbounded below.
    /// * [`IlpError::BudgetExhausted`] — node budget hit with no incumbent.
    pub fn solve(&self, p: &Problem) -> Result<IlpSolution, IlpError> {
        self.solve_from(p, None)
    }

    /// Like [`BranchAndBound::solve`], but warm-started with a known
    /// feasible point (e.g. from a heuristic). The incumbent immediately
    /// prunes every subtree that cannot beat it, which is what makes tiny
    /// node budgets useful on large placement models. An infeasible warm
    /// start is ignored.
    ///
    /// # Errors
    ///
    /// As for [`BranchAndBound::solve`]; with a valid warm start,
    /// [`IlpError::BudgetExhausted`] cannot occur.
    pub fn solve_from(
        &self,
        p: &Problem,
        warm_start: Option<&[f64]>,
    ) -> Result<IlpSolution, IlpError> {
        let root_lp = solve_lp_with_bounds(
            p,
            p.lower_bounds(),
            p.upper_bounds(),
            self.lp_iteration_limit,
        );
        match root_lp.status {
            LpStatus::Infeasible => return Err(IlpError::Infeasible),
            LpStatus::Unbounded => return Err(IlpError::Unbounded),
            LpStatus::IterationLimit => return Err(IlpError::BudgetExhausted),
            LpStatus::Optimal => {}
        }
        let mut lp_iterations = root_lp.iterations;

        let mut heap = BinaryHeap::new();
        heap.push(Node {
            bound: root_lp.objective,
            depth: 0,
            lower: p.lower_bounds().to_vec(),
            upper: p.upper_bounds().to_vec(),
        });

        let mut incumbent: Option<(f64, Vec<f64>)> = warm_start
            .filter(|x| p.is_feasible(x, self.int_tol))
            .map(|x| (p.objective_value(x), x.to_vec()));
        let mut nodes = 0u64;

        loop {
            if nodes >= self.node_limit && !heap.is_empty() {
                break; // budget exhausted with open nodes left
            }
            let Some(node) = heap.pop() else { break };
            if let Some((obj, _)) = &incumbent {
                if node.bound >= *obj - 1e-9 {
                    // The heap is bound-ordered: every remaining node is at
                    // least as bad as the incumbent, so we are done.
                    heap.clear();
                    break;
                }
            }
            nodes += 1;

            let lp = solve_lp_with_bounds(p, &node.lower, &node.upper, self.lp_iteration_limit);
            lp_iterations += lp.iterations;
            if lp.status != LpStatus::Optimal {
                continue; // infeasible (or stalled) subtree
            }
            if let Some((obj, _)) = &incumbent {
                if lp.objective >= *obj - 1e-9 {
                    continue;
                }
            }

            // Most fractional binary.
            let frac = p
                .integrality()
                .iter()
                .enumerate()
                .filter(|&(_, &is_int)| is_int)
                .map(|(j, _)| (j, (lp.values[j] - lp.values[j].round()).abs()))
                .filter(|&(_, f)| f > self.int_tol)
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));

            match frac {
                None => {
                    // Integer-feasible: round binaries exactly.
                    let mut values = lp.values.clone();
                    for (j, v) in values.iter_mut().enumerate() {
                        if p.integrality()[j] {
                            *v = v.round();
                        }
                    }
                    let objective = p.objective_value(&values);
                    let better = incumbent
                        .as_ref()
                        .is_none_or(|(obj, _)| objective < *obj - 1e-9);
                    if better {
                        incumbent = Some((objective, values));
                    }
                }
                Some((j, _)) => {
                    // Branch j = floor side first, then ceil side; push
                    // the side nearest the LP value last so the heap's
                    // depth tie-break dives toward it.
                    let v = lp.values[j];
                    for &fix in &[v.round(), 1.0 - v.round()] {
                        let mut lower = node.lower.clone();
                        let mut upper = node.upper.clone();
                        lower[j] = fix;
                        upper[j] = fix;
                        heap.push(Node {
                            bound: lp.objective,
                            depth: node.depth + 1,
                            lower,
                            upper,
                        });
                    }
                }
            }
        }

        let open_bound = heap.peek().map(|n| n.bound);
        match incumbent {
            Some((objective, values)) => {
                let proven_optimal = open_bound.is_none_or(|b| b >= objective - 1e-9);
                Ok(IlpSolution {
                    status: if proven_optimal {
                        IlpStatus::Optimal
                    } else {
                        IlpStatus::Feasible
                    },
                    values,
                    objective,
                    bound: open_bound.map_or(objective, |b| b.min(objective)),
                    nodes,
                    lp_iterations,
                })
            }
            None => {
                if open_bound.is_some() {
                    Err(IlpError::BudgetExhausted)
                } else {
                    Err(IlpError::Infeasible)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sense;

    /// Exhaustive reference solver for small binary problems.
    fn brute_force(p: &Problem) -> Option<f64> {
        let n = p.num_vars();
        assert!(n <= 20, "brute force only for small problems");
        assert!(p.integrality().iter().all(|&b| b), "binaries only");
        let mut best: Option<f64> = None;
        for mask in 0u32..(1 << n) {
            let x: Vec<f64> = (0..n).map(|j| f64::from((mask >> j) & 1)).collect();
            if p.is_feasible(&x, 1e-9) {
                let obj = p.objective_value(&x);
                if best.is_none_or(|b| obj < b) {
                    best = Some(obj);
                }
            }
        }
        best
    }

    #[test]
    fn knapsack_like_cover() {
        // min 3a + 2b + 4c s.t. a + b >= 1, b + c >= 1, a + c >= 1.
        // Vertex cover of a triangle with weights: optimum 2 + 3 = 5
        // (a and b) vs 2 + 4 = 6 vs 3 + 4 = 7 → 5.
        let mut p = Problem::minimize();
        let a = p.add_binary(3.0);
        let b = p.add_binary(2.0);
        let c = p.add_binary(4.0);
        p.add_constraint([(a, 1.0), (b, 1.0)], Sense::Ge, 1.0);
        p.add_constraint([(b, 1.0), (c, 1.0)], Sense::Ge, 1.0);
        p.add_constraint([(a, 1.0), (c, 1.0)], Sense::Ge, 1.0);
        let sol = BranchAndBound::default().solve(&p).unwrap();
        assert_eq!(sol.status, IlpStatus::Optimal);
        assert!((sol.objective - 5.0).abs() < 1e-6);
        assert_eq!(brute_force(&p), Some(5.0));
        assert!(sol.gap() < 1e-9);
    }

    #[test]
    fn set_cover_matches_brute_force() {
        // Facility-location flavour like the RSP: groups must each pick
        // an open operator; minimize open operators.
        // 3 operators, 4 groups; operator capacity 2 groups.
        let mut p = Problem::minimize();
        let d: Vec<_> = (0..3).map(|_| p.add_binary(1.0)).collect();
        let mut assign = vec![];
        for _g in 0..4 {
            let row: Vec<_> = (0..3).map(|_| p.add_binary(0.0)).collect();
            p.add_constraint(row.iter().map(|&v| (v, 1.0)), Sense::Eq, 1.0);
            assign.push(row);
        }
        for (j, &dj) in d.iter().enumerate() {
            // Linking: sum_g P_gj <= 4 * D_j; capacity: sum_g P_gj <= 2.
            let terms: Vec<_> = assign.iter().map(|row| (row[j], 1.0)).collect();
            let mut link = terms.clone();
            link.push((dj, -4.0));
            p.add_constraint(link, Sense::Le, 0.0);
            p.add_constraint(terms, Sense::Le, 2.0);
        }
        let sol = BranchAndBound::default().solve(&p).unwrap();
        assert_eq!(sol.status, IlpStatus::Optimal);
        // 4 groups / capacity 2 → at least 2 operators.
        assert!((sol.objective - 2.0).abs() < 1e-6);
        assert!(p.is_feasible(&sol.values, 1e-6));
    }

    #[test]
    fn infeasible_binary_program() {
        let mut p = Problem::minimize();
        let a = p.add_binary(1.0);
        let b = p.add_binary(1.0);
        p.add_constraint([(a, 1.0), (b, 1.0)], Sense::Ge, 3.0);
        assert_eq!(
            BranchAndBound::default().solve(&p).unwrap_err(),
            IlpError::Infeasible
        );
    }

    #[test]
    fn budget_of_zero_nodes_reports_exhaustion() {
        let mut p = Problem::minimize();
        let a = p.add_binary(-1.0);
        let b = p.add_binary(-1.0);
        p.add_constraint([(a, 1.0), (b, 1.0)], Sense::Le, 1.0);
        let bb = BranchAndBound {
            node_limit: 0,
            ..BranchAndBound::default()
        };
        assert_eq!(bb.solve(&p).unwrap_err(), IlpError::BudgetExhausted);
    }

    #[test]
    fn anytime_mode_returns_feasible_incumbent() {
        // A problem where the root LP is fractional; with a tiny node
        // budget we should still get *some* feasible answer or a clean
        // budget error — never a wrong "optimal" claim that brute force
        // contradicts.
        let mut p = Problem::minimize();
        let vars: Vec<_> = (0..8).map(|i| p.add_binary(1.0 + 0.1 * i as f64)).collect();
        for w in vars.windows(2) {
            p.add_constraint([(w[0], 1.0), (w[1], 1.0)], Sense::Ge, 1.0);
        }
        let full = BranchAndBound::default().solve(&p).unwrap();
        let reference = brute_force(&p).unwrap();
        assert!((full.objective - reference).abs() < 1e-6);
        let tiny = BranchAndBound {
            node_limit: 3,
            ..BranchAndBound::default()
        };
        match tiny.solve(&p) {
            Ok(sol) => {
                assert!(p.is_feasible(&sol.values, 1e-6));
                assert!(sol.objective >= reference - 1e-6);
                assert!(sol.bound <= sol.objective + 1e-9);
            }
            Err(IlpError::BudgetExhausted) => {}
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn negative_costs_push_variables_up() {
        // max 2a + b - c == min -2a - b + c, a + b + c <= 2.
        let mut p = Problem::minimize();
        let a = p.add_binary(-2.0);
        let b = p.add_binary(-1.0);
        let c = p.add_binary(1.0);
        p.add_constraint([(a, 1.0), (b, 1.0), (c, 1.0)], Sense::Le, 2.0);
        let sol = BranchAndBound::default().solve(&p).unwrap();
        assert_eq!(sol.status, IlpStatus::Optimal);
        assert!((sol.objective + 3.0).abs() < 1e-6);
        assert_eq!(sol.values, vec![1.0, 1.0, 0.0]);
        assert_eq!(brute_force(&p), Some(-3.0));
    }

    #[test]
    fn equality_partition() {
        // Pick exactly 2 of 4 items, minimize weight.
        let mut p = Problem::minimize();
        let w = [5.0, 1.0, 3.0, 2.0];
        let vars: Vec<_> = w.iter().map(|&c| p.add_binary(c)).collect();
        p.add_constraint(vars.iter().map(|&v| (v, 1.0)), Sense::Eq, 2.0);
        let sol = BranchAndBound::default().solve(&p).unwrap();
        assert!((sol.objective - 3.0).abs() < 1e-6); // items 1 and 3
        assert_eq!(brute_force(&p), Some(3.0));
    }

    #[test]
    fn warm_start_bounds_and_survives_zero_budget() {
        let mut p = Problem::minimize();
        let a = p.add_binary(3.0);
        let b = p.add_binary(2.0);
        p.add_constraint([(a, 1.0), (b, 1.0)], Sense::Ge, 1.0);
        // Suboptimal but feasible warm start: open both.
        let warm = vec![1.0, 1.0];
        let bb = BranchAndBound {
            node_limit: 0,
            ..BranchAndBound::default()
        };
        let sol = bb.solve_from(&p, Some(&warm)).unwrap();
        assert_eq!(sol.status, IlpStatus::Feasible);
        assert!((sol.objective - 5.0).abs() < 1e-9);
        // With budget, the warm start is improved to the optimum.
        let sol = BranchAndBound::default()
            .solve_from(&p, Some(&warm))
            .unwrap();
        assert_eq!(sol.status, IlpStatus::Optimal);
        assert!((sol.objective - 2.0).abs() < 1e-9);
        // An infeasible warm start is ignored rather than trusted.
        let sol = BranchAndBound::default()
            .solve_from(&p, Some(&[0.0, 0.0]))
            .unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mixed_integer_continuous() {
        // One binary gate y, one continuous flow x <= 10y, maximize x - 3y.
        let mut p = Problem::minimize();
        let y = p.add_binary(3.0);
        let x = p.add_continuous(-1.0, 0.0, 10.0);
        p.add_constraint([(x, 1.0), (y, -10.0)], Sense::Le, 0.0);
        let sol = BranchAndBound::default().solve(&p).unwrap();
        assert_eq!(sol.status, IlpStatus::Optimal);
        // Open the gate: -10 + 3 = -7 beats 0.
        assert!((sol.objective + 7.0).abs() < 1e-6);
        assert!((sol.values[x] - 10.0).abs() < 1e-6);
        assert!((sol.values[y] - 1.0).abs() < 1e-9);
    }
}
