//! Offline analysis of NetRS simulation artifacts.
//!
//! The `simulate` binary emits three JSONL artifact kinds: per-request
//! traces (`--trace`, one [`TraceRecord`] per copy), virtual-time series
//! (`--timeseries`, one [`SamplePoint`] per tick) and end-of-run device
//! telemetry (`--devices`, one [`DeviceRecord`] per device). This crate —
//! and its `netrs-analyze` CLI — turns those files into the reports the
//! paper's evaluation is built from:
//!
//! * **scheme comparison** — mean / median / p95 / p99 per latency phase,
//!   side by side across labeled traces (CliRS vs NetRS-ILP, …);
//! * **tail attribution** — which phases and which servers the slowest
//!   1% of requests spend their time in;
//! * **hotspot tables** — the busiest devices per kind, per-tier traffic
//!   totals, and ECMP path skew from per-link packet counts;
//! * **bench artifact** — a small JSON regression file
//!   (`label → {mean_ns, p50_ns, p95_ns, p99_ns, …}`) that CI can diff;
//! * **availability tables** — timeout rate, retries and time-to-recover
//!   per scheme from `simulate --faults … --json` stats files.

use std::fmt::{self, Write as _};
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

use netrs_sim::{
    ControlRecord, DeviceRecord, HostProfile, KindRecord, PerfArtifact, RunStats, SamplePoint,
    Scheme, SnapshotRecord, SweepReport, TraceRecord, SWEEP_SCHEMA_VERSION,
};
use netrs_simcore::{Histogram, SimDuration, SimTime, Summary};
use serde::Value;

/// One labeled trace: a scheme (or experiment) name plus its records.
#[derive(Debug, Clone)]
pub struct LabeledTrace {
    /// Column label in comparison tables and the bench artifact.
    pub label: String,
    /// Every record of the trace file, in file order.
    pub records: Vec<TraceRecord>,
}

/// Pulls one phase duration (ns) out of a trace record.
pub type PhaseExtractor = fn(&TraceRecord) -> u64;

/// The six phases of the request-latency decomposition, in causal order,
/// each paired with its extractor. `e2e` is reported separately.
pub const PHASES: [(&str, PhaseExtractor); 6] = [
    ("steer", |r| r.steer_ns),
    ("selection", |r| r.selection_ns),
    ("to-server", |r| r.to_server_ns),
    ("server-queue", |r| r.server_queue_ns),
    ("service", |r| r.service_ns),
    ("reply", |r| r.reply_ns),
];

/// Parses a `[LABEL=]PATH` trace argument: an explicit label before the
/// first `=`, otherwise the file stem. Labels naming one of the four
/// schemes (in any case) are canonicalized to the paper spelling, so
/// `clirs=a.jsonl` and `netrs-ilp.jsonl` line up with `CliRS` /
/// `NetRS-ILP` columns from other runs.
#[must_use]
pub fn split_label(arg: &str) -> (String, &str) {
    if let Some((label, path)) = arg.split_once('=') {
        if !label.is_empty() && !label.contains(['/', '\\']) {
            return (canonical_label(label), path);
        }
    }
    let stem = Path::new(arg)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(arg);
    (canonical_label(stem), arg)
}

/// Rewrites scheme-name labels to their paper spelling; anything that is
/// not a scheme name passes through untouched.
fn canonical_label(label: &str) -> String {
    label
        .parse::<Scheme>()
        .map_or_else(|_| label.to_string(), |s| s.label().to_string())
}

fn parse_jsonl<T: serde::Deserialize>(path: &str) -> io::Result<Vec<T>> {
    let file = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for (i, line) in file.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let item = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{path}:{}: {e}", i + 1))
        })?;
        out.push(item);
    }
    Ok(out)
}

/// Loads a `--trace` JSONL file.
///
/// # Errors
///
/// Returns the underlying I/O error, or [`io::ErrorKind::InvalidData`]
/// naming the offending line when a line fails to parse.
pub fn load_trace(path: &str) -> io::Result<Vec<TraceRecord>> {
    parse_jsonl(path)
}

/// Loads a `--devices` JSONL file (same error contract as
/// [`load_trace`]).
///
/// # Errors
///
/// See [`load_trace`].
pub fn load_devices(path: &str) -> io::Result<Vec<DeviceRecord>> {
    parse_jsonl(path)
}

/// Loads a `--timeseries` JSONL file (same error contract as
/// [`load_trace`]).
///
/// # Errors
///
/// See [`load_trace`].
pub fn load_timeseries(path: &str) -> io::Result<Vec<SamplePoint>> {
    parse_jsonl(path)
}

/// The records the latency analysis is over: winning read copies — the
/// same population as `RunStats::latency`.
#[must_use]
pub fn winning_reads(records: &[TraceRecord]) -> Vec<&TraceRecord> {
    records.iter().filter(|r| r.first && !r.write).collect()
}

fn summarize(records: &[&TraceRecord], extract: fn(&TraceRecord) -> u64) -> Summary {
    let mut h = Histogram::new();
    for r in records {
        h.record_nanos(extract(r));
    }
    h.summary()
}

fn fmt_dur(ns: SimDuration) -> String {
    ns.to_string()
}

/// Renders the side-by-side per-phase comparison: one table per
/// statistic (mean, median, p95, p99), phases as rows, labels as
/// columns. Statistics are over winning reads.
#[must_use]
pub fn comparison_report(traces: &[LabeledTrace]) -> String {
    let per_label: Vec<(String, Vec<Summary>, Summary)> = traces
        .iter()
        .map(|t| {
            let reads = winning_reads(&t.records);
            let phases = PHASES.iter().map(|&(_, f)| summarize(&reads, f)).collect();
            (t.label.clone(), phases, summarize(&reads, |r| r.e2e_ns))
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "## Per-phase latency comparison (winning reads)");
    for (label, _, e2e) in &per_label {
        let _ = writeln!(out, "   {label}: {} requests", e2e.count);
    }
    type StatPick = fn(&Summary) -> SimDuration;
    let stats: [(&str, StatPick); 4] = [
        ("mean", |s| s.mean),
        ("median", |s| s.p50),
        ("p95", |s| s.p95),
        ("p99", |s| s.p99),
    ];
    for (stat_name, pick) in stats {
        let _ = writeln!(out);
        let _ = write!(out, "{:<14}", stat_name);
        for (label, _, _) in &per_label {
            let _ = write!(out, " {:>14}", label);
        }
        let _ = writeln!(out);
        for (pi, &(phase, _)) in PHASES.iter().enumerate() {
            let _ = write!(out, "{:<14}", phase);
            for (_, phases, _) in &per_label {
                let _ = write!(out, " {:>14}", fmt_dur(pick(&phases[pi])));
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<14}", "e2e");
        for (_, _, e2e) in &per_label {
            let _ = write!(out, " {:>14}", fmt_dur(pick(e2e)));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the tail attribution for one trace: over the winning reads at
/// or above the e2e 99th percentile, the share of tail time each phase
/// accounts for, plus the servers that serve the most tail requests.
#[must_use]
pub fn tail_report(label: &str, records: &[TraceRecord], top: usize) -> String {
    let reads = winning_reads(records);
    let mut out = String::new();
    let _ = writeln!(out, "## Tail attribution: {label}");
    if reads.is_empty() {
        let _ = writeln!(out, "   (no winning reads in trace)");
        return out;
    }
    let mut h = Histogram::new();
    for r in &reads {
        h.record_nanos(r.e2e_ns);
    }
    let p99 = h.percentile(99.0).as_nanos();
    let tail: Vec<&&TraceRecord> = reads.iter().filter(|r| r.e2e_ns >= p99).collect();
    let _ = writeln!(
        out,
        "   p99 = {} · {} requests at or above it",
        fmt_dur(SimDuration::from_nanos(p99)),
        tail.len()
    );
    let tail_e2e: u128 = tail.iter().map(|r| u128::from(r.e2e_ns)).sum();
    if tail_e2e > 0 {
        let _ = writeln!(out, "   phase shares of tail time:");
        for (phase, extract) in PHASES {
            let spent: u128 = tail.iter().map(|r| u128::from(extract(r))).sum();
            let share = spent as f64 / tail_e2e as f64 * 100.0;
            let _ = writeln!(out, "     {phase:<14} {share:5.1}%");
        }
    }
    let mut by_server: Vec<(u32, u64)> = Vec::new();
    for r in &tail {
        match by_server.iter_mut().find(|(s, _)| *s == r.server) {
            Some((_, n)) => *n += 1,
            None => by_server.push((r.server, 1)),
        }
    }
    by_server.sort_by_key(|&(s, n)| (std::cmp::Reverse(n), s));
    let _ = writeln!(out, "   top tail servers (server · tail requests):");
    for (server, n) in by_server.iter().take(top) {
        let _ = writeln!(out, "     server:{server:<8} {n}");
    }
    out
}

fn link_source(dev: &str) -> Option<&str> {
    dev.strip_prefix("link:")?.split('>').next()
}

/// Renders the device hotspot tables: busiest devices per kind, per-tier
/// traffic totals, and ECMP skew (how unevenly an endpoint's outgoing
/// links are loaded).
#[must_use]
pub fn hotspot_report(devices: &[DeviceRecord], top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Device hotspots");

    // Per-tier traffic totals across all devices that forward traffic.
    let mut tier_packets = [0u64; 3];
    let mut tier_bytes = [0u64; 3];
    for d in devices.iter().filter(|d| d.kind == "link") {
        for t in 0..3 {
            tier_packets[t] += d.packets[t];
            tier_bytes[t] += d.bytes[t];
        }
    }
    let _ = writeln!(out, "   link traffic per tier (packets · bytes):");
    for t in 0..3 {
        let _ = writeln!(
            out,
            "     Tier-{t}          {:>12} · {:>12}",
            tier_packets[t], tier_bytes[t]
        );
    }

    for (kind, plural) in [
        ("switch", "switches"),
        ("accel", "accelerators"),
        ("server", "servers"),
        ("link", "links"),
    ] {
        let mut of_kind: Vec<&DeviceRecord> = devices.iter().filter(|d| d.kind == kind).collect();
        if of_kind.is_empty() {
            continue;
        }
        of_kind.sort_by(|a, b| {
            b.utilization
                .total_cmp(&a.utilization)
                .then_with(|| b.total_packets().cmp(&a.total_packets()))
                .then_with(|| a.dev.cmp(&b.dev))
        });
        let _ = writeln!(
            out,
            "   top {plural} (device · util · packets · ops/selections · max queue):"
        );
        for d in of_kind.iter().take(top) {
            let work = if kind == "accel" { d.selections } else { d.ops };
            let _ = writeln!(
                out,
                "     {:<14} {:6.2}% {:>10} {:>8} {:>6}",
                d.dev,
                d.utilization * 100.0,
                d.total_packets(),
                work,
                d.max_queue_depth
            );
        }
    }

    // ECMP skew: group directed links by source endpoint; endpoints with
    // several outgoing links (hosts have one) show hash imbalance as
    // max/mean packet ratio.
    let mut groups: Vec<(&str, Vec<u64>)> = Vec::new();
    for d in devices.iter().filter(|d| d.kind == "link") {
        if let Some(src) = link_source(&d.dev) {
            match groups.iter_mut().find(|(s, _)| *s == src) {
                Some((_, counts)) => counts.push(d.total_packets()),
                None => groups.push((src, vec![d.total_packets()])),
            }
        }
    }
    let mut skews: Vec<(&str, usize, f64)> = groups
        .iter()
        .filter(|(_, c)| c.len() > 1 && c.iter().sum::<u64>() > 0)
        .map(|(src, counts)| {
            let max = *counts.iter().max().unwrap() as f64;
            let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
            (*src, counts.len(), max / mean)
        })
        .collect();
    skews.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(b.0)));
    let _ = writeln!(
        out,
        "   ECMP skew (endpoint · outgoing links · max/mean packets):"
    );
    for (src, fanout, skew) in skews.iter().take(top) {
        let _ = writeln!(out, "     {src:<8} {fanout:>3} {skew:8.3}");
    }
    out
}

/// Renders a short summary of a `--timeseries` file: sample count, span,
/// and the peak / mean of each sampled series.
#[must_use]
pub fn timeseries_report(points: &[SamplePoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Time series");
    if points.is_empty() {
        let _ = writeln!(out, "   (no samples)");
        return out;
    }
    let span = points.last().unwrap().t_ns - points.first().unwrap().t_ns;
    let _ = writeln!(
        out,
        "   {} samples over {}",
        points.len(),
        fmt_dur(SimDuration::from_nanos(span))
    );
    type SeriesPick = fn(&SamplePoint) -> f64;
    let series: [(&str, SeriesPick); 4] = [
        ("accel util", |p| p.accel_util),
        ("server occupancy", |p| p.server_occupancy),
        ("outstanding", |p| p.outstanding),
        ("DRS groups", |p| p.drs_groups),
    ];
    for (name, pick) in series {
        let mean = points.iter().map(pick).sum::<f64>() / points.len() as f64;
        let peak = points.iter().map(pick).fold(f64::MIN, f64::max);
        let _ = writeln!(out, "   {name:<18} mean {mean:8.3} · peak {peak:8.3}");
    }
    out
}

/// Loads a `simulate --json` stats file (one [`RunStats`] JSON object).
///
/// # Errors
///
/// Returns the underlying I/O error, or [`io::ErrorKind::InvalidData`]
/// when the file is not a stats JSON.
pub fn load_stats(path: &str) -> io::Result<RunStats> {
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path}: {e}")))
}

/// Renders the per-run availability table: timeout rate, retries,
/// dropped copies, the p99 of the failed window and the time back to the
/// steady-state latency band, one row per labeled stats file. Runs
/// without a fault plan report as fault-free.
#[must_use]
pub fn availability_report(entries: &[(String, RunStats)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Availability under faults");
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>9} {:>12} {:>8} {:>9} {:>12} {:>12}",
        "label",
        "issued",
        "timeouts",
        "timeout-rate",
        "retries",
        "dropped",
        "failed-p99",
        "recover"
    );
    for (label, stats) in entries {
        match stats.availability.as_ref() {
            Some(a) => {
                let rate = if stats.issued > 0 {
                    a.timeouts as f64 / stats.issued as f64 * 100.0
                } else {
                    0.0
                };
                let recover = a
                    .time_to_recover
                    .map_or_else(|| "never".to_string(), |t| t.to_string());
                let _ = writeln!(
                    out,
                    "{label:<14} {:>8} {:>9} {:>11.3}% {:>8} {:>9} {:>12} {:>12}",
                    stats.issued,
                    a.timeouts,
                    rate,
                    a.retries,
                    a.copies_dropped,
                    fmt_dur(a.failed_window_p99),
                    recover
                );
            }
            None => {
                let _ = writeln!(out, "{label:<14} {:>8} (fault-free run)", stats.issued);
            }
        }
    }
    out
}

/// Renders the read/write-mix report: per-label read vs write latency
/// percentiles, the hot-key-cache hit ratio and the stale-read count.
/// Labels without an `rw` stats block (read-only runs, or legacy
/// all-replica writes with no cache) render as a read-only row. When
/// `devices` is non-empty a per-operator cache table follows, one row
/// per switch that recorded cache traffic, in file order.
#[must_use]
pub fn rw_report(entries: &[(String, RunStats)], devices: &[DeviceRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Read/write mix");
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>12} {:>12} {:>8} {:>12} {:>12} {:>10} {:>8}",
        "label", "reads", "r-mean", "r-p99", "writes", "w-mean", "w-p99", "hit-ratio", "stale"
    );
    for (label, stats) in entries {
        let reads = stats.issued - stats.writes_issued;
        let _ = write!(
            out,
            "{label:<14} {reads:>8} {:>12} {:>12}",
            fmt_dur(stats.latency.mean),
            fmt_dur(stats.latency.p99)
        );
        if stats.writes_issued == 0 {
            let _ = writeln!(out, " {:>8} (read-only run)", 0);
            continue;
        }
        let _ = write!(
            out,
            " {:>8} {:>12} {:>12}",
            stats.writes_issued,
            fmt_dur(stats.write_latency.mean),
            fmt_dur(stats.write_latency.p99)
        );
        match stats.rw.as_ref() {
            Some(rw) => {
                let gets = rw.cache_hits + rw.cache_misses;
                let ratio = if gets > 0 {
                    format!("{:.1}%", rw.cache_hits as f64 / gets as f64 * 100.0)
                } else {
                    "-".to_string()
                };
                let _ = writeln!(out, " {ratio:>10} {:>8}", rw.stale_reads);
            }
            None => {
                let _ = writeln!(out, " {:>10} {:>8}", "-", "-");
            }
        }
    }
    let cached: Vec<&DeviceRecord> = devices
        .iter()
        .filter(|d| d.cache_hits + d.cache_misses + d.cache_invalidations > 0)
        .collect();
    if !cached.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Per-operator cache");
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>8} {:>10} {:>8} {:>9} {:>13}",
            "operator", "hits", "misses", "hit-ratio", "stale", "evicted", "invalidated"
        );
        for d in cached {
            let gets = d.cache_hits + d.cache_misses;
            let ratio = if gets > 0 {
                format!("{:.1}%", d.cache_hits as f64 / gets as f64 * 100.0)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{:<12} {:>8} {:>8} {ratio:>10} {:>8} {:>9} {:>13}",
                d.dev,
                d.cache_hits,
                d.cache_misses,
                d.cache_stale_hits,
                d.cache_evictions,
                d.cache_invalidations
            );
        }
    }
    out
}

/// Loads a `--control` JSONL file (same error contract as
/// [`load_trace`]).
///
/// # Errors
///
/// See [`load_trace`].
pub fn load_control(path: &str) -> io::Result<Vec<ControlRecord>> {
    parse_jsonl(path)
}

fn fmt_time(ns: u64) -> String {
    SimTime::from_nanos(ns).to_string()
}

/// One batch of monitor windows consumed by the plan decision that
/// follows it in the stream: window count, reporting ToRs, and the
/// summed response rates per tier (exactly what the controller's
/// `TrafficMatrix` aggregation sums them into).
struct SnapshotBatch {
    windows: usize,
    tors: usize,
    tier_rates: [f64; 3],
}

fn batch_of(snaps: &[&SnapshotRecord]) -> SnapshotBatch {
    let mut tors: Vec<u32> = snaps.iter().map(|s| s.tor).collect();
    tors.sort_unstable();
    tors.dedup();
    let mut tier_rates = [0.0f64; 3];
    for s in snaps {
        for g in &s.groups {
            for (t, r) in g.rates.iter().enumerate() {
                tier_rates[t] += r;
            }
        }
    }
    SnapshotBatch {
        windows: snaps.len(),
        tors: tors.len(),
        tier_rates,
    }
}

/// Renders the control-plane report for labeled `--control` streams:
/// the traffic-matrix evolution (one row per snapshot batch), the plan
/// churn table (one row per controller decision, with solver effort),
/// and the DRS span timeline. With more than one label, a side-by-side
/// summary table closes the report.
#[must_use]
pub fn control_report(entries: &[(String, Vec<ControlRecord>)]) -> String {
    let mut out = String::new();
    for (i, (label, records)) in entries.iter().enumerate() {
        if i > 0 {
            let _ = writeln!(out);
        }
        let snapshots = records
            .iter()
            .filter(|r| matches!(r, ControlRecord::Snapshot(_)))
            .count();
        let plans = records
            .iter()
            .filter(|r| matches!(r, ControlRecord::Plan(_)))
            .count();
        let spans = records
            .iter()
            .filter(|r| matches!(r, ControlRecord::DrsSpan(_)))
            .count();
        let _ = writeln!(out, "## Control plane: {label}");
        let _ = writeln!(
            out,
            "   {} records: {snapshots} snapshots · {plans} plan events · {spans} DRS spans",
            records.len()
        );

        // Traffic-matrix evolution: consecutive snapshots form a batch;
        // the plan decision that follows consumed exactly that batch.
        let mut batches: Vec<SnapshotBatch> = Vec::new();
        let mut pending: Vec<&SnapshotRecord> = Vec::new();
        for rec in records {
            match rec {
                ControlRecord::Snapshot(s) => pending.push(s),
                ControlRecord::Plan(_) if !pending.is_empty() => {
                    batches.push(batch_of(&pending));
                    pending.clear();
                }
                _ => {}
            }
        }
        if !pending.is_empty() {
            batches.push(batch_of(&pending));
        }
        if !batches.is_empty() {
            let _ = writeln!(
                out,
                "   traffic evolution (batch · windows · ToRs · resp/s by tier):"
            );
            for (bi, b) in batches.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "     {:<5} {:>7} {:>5} {:>10.1} {:>10.1} {:>10.1}",
                    bi + 1,
                    b.windows,
                    b.tors,
                    b.tier_rates[0],
                    b.tier_rates[1],
                    b.tier_rates[2]
                );
            }
        }

        let _ = writeln!(
            out,
            "   plan churn (t · trigger · groups re/new/un · RSNodes +/- · DRS · rules · solve):"
        );
        for rec in records {
            let ControlRecord::Plan(p) = rec else {
                continue;
            };
            let trigger = match p.switch {
                Some(sw) => format!("{}(sw{sw})", p.trigger),
                None => p.trigger.clone(),
            };
            let solve = match &p.solve {
                Some(s) if s.greedy => "greedy".to_string(),
                Some(s) => format!(
                    "ilp {} it · {} nodes · obj {}",
                    s.lp_iterations, s.branch_nodes, s.objective
                ),
                None => "-".to_string(),
            };
            let _ = writeln!(
                out,
                "     {:<11} {:<20} {:>3}/{:>3}/{:>3}  {:>3} (+{}/-{}) {:>4} {:>6}  {solve}",
                fmt_time(p.t_ns),
                trigger,
                p.reassigned.len(),
                p.newly_assigned.len(),
                p.unassigned.len(),
                p.rsnodes,
                p.rsnodes_added.len(),
                p.rsnodes_removed.len(),
                p.drs_groups,
                p.rules_recompiled
            );
        }

        if spans > 0 {
            let _ = writeln!(
                out,
                "   DRS spans (switch · fail · detect-lag · recover · groups · displaced):"
            );
            for rec in records {
                let ControlRecord::DrsSpan(s) = rec else {
                    continue;
                };
                let detect = s.detect_ns.map_or_else(
                    || "-".to_string(),
                    |d| format!("+{}", fmt_dur(SimDuration::from_nanos(d - s.fail_ns))),
                );
                let recover = s.recover_ns.map_or_else(|| "open".to_string(), fmt_time);
                let _ = writeln!(
                    out,
                    "     sw{:<4} {:>11} {:>11} {:>11} {:>3} {:>11}",
                    s.switch,
                    fmt_time(s.fail_ns),
                    detect,
                    recover,
                    s.groups.len(),
                    fmt_dur(SimDuration::from_nanos(s.total_displaced_ns()))
                );
            }
        }

        // Hot-key cache audits, only present when a cache was configured
        // (cache-off reports are byte-identical to the pre-cache format).
        let caches = records
            .iter()
            .filter(|r| matches!(r, ControlRecord::Cache(_)))
            .count();
        if caches > 0 {
            let _ = writeln!(
                out,
                "   cache audits (operator · resident · hits/misses · stale · evicted · invalidated):"
            );
            for rec in records {
                let ControlRecord::Cache(c) = rec else {
                    continue;
                };
                let operator = c
                    .switch
                    .map_or_else(|| "retired".to_string(), |sw| format!("sw{sw}"));
                let _ = writeln!(
                    out,
                    "     {operator:<8} {:>8} {:>8}/{:<8} {:>5} {:>7} {:>11}",
                    c.len, c.hits, c.misses, c.stale_hits, c.evictions, c.invalidations
                );
            }
        }
    }

    // Side-by-side: how much the control plane worked per run.
    if entries.len() > 1 {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Control plane comparison");
        let _ = writeln!(
            out,
            "{:<14} {:>6} {:>8} {:>7} {:>12} {:>10} {:>6} {:>12}",
            "label", "plans", "replans", "solves", "lp-it/solve", "snapshots", "spans", "displaced"
        );
        for (label, records) in entries {
            let mut plans = 0usize;
            let mut replans = 0usize;
            let mut solves = 0usize;
            let mut lp_iterations = 0u64;
            let mut snapshots = 0usize;
            let mut spans = 0usize;
            let mut displaced = 0u64;
            for rec in records {
                match rec {
                    ControlRecord::Snapshot(_) => snapshots += 1,
                    ControlRecord::Plan(p) => {
                        plans += 1;
                        if p.trigger == "replan" {
                            replans += 1;
                        }
                        if let Some(s) = &p.solve {
                            if !s.greedy {
                                solves += 1;
                                lp_iterations += s.lp_iterations;
                            }
                        }
                    }
                    ControlRecord::DrsSpan(s) => {
                        spans += 1;
                        displaced += s.total_displaced_ns();
                    }
                    // Cache audits have their own table in `rw_report`;
                    // the control comparison stays cache-agnostic.
                    ControlRecord::Cache(_) => {}
                }
            }
            let mean_it = if solves > 0 {
                format!("{:.1}", lp_iterations as f64 / solves as f64)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "{label:<14} {plans:>6} {replans:>8} {solves:>7} {mean_it:>12} {snapshots:>10} \
                 {spans:>6} {:>12}",
                fmt_dur(SimDuration::from_nanos(displaced))
            );
        }
    }
    out
}

/// The keys every per-label bench entry must carry, in artifact order.
pub const BENCH_KEYS: [&str; 7] = [
    "mean_ns",
    "p50_ns",
    "p95_ns",
    "p99_ns",
    "requests",
    "sim_seconds",
    "requests_per_sim_sec",
];

/// The keys every per-label *perf* entry must carry (wall-clock runs of
/// the `repro perf` subcommand, as opposed to sim-time latency entries).
/// An entry is classified as perf by the presence of `"wall_clock_s"`.
pub const PERF_KEYS: [&str; 4] = ["events", "events_per_sec", "peak_rss_kb", "wall_clock_s"];

/// Optional extension keys a bench entry *may* carry without failing
/// validation: the read/write-mix statistics added with the write path
/// and the in-switch hot-key cache. Present values must still be
/// numbers, but artifacts generated before (or without) the RW
/// subsystem simply omit them.
pub const BENCH_OPTIONAL_KEYS: [&str; 5] = [
    "writes",
    "write_mean_ns",
    "write_p99_ns",
    "cache_hit_ratio",
    "stale_reads",
];

/// Builds the bench regression artifact: one entry per labeled trace
/// with the e2e latency statistics over winning reads plus throughput
/// derived from the trace's time span.
#[must_use]
pub fn bench_artifact(traces: &[LabeledTrace]) -> Value {
    let entries = traces
        .iter()
        .map(|t| {
            let reads = winning_reads(&t.records);
            let s = summarize(&reads, |r| r.e2e_ns);
            let end_ns = t.records.iter().map(|r| r.received_ns).max().unwrap_or(0);
            let sim_seconds = end_ns as f64 / 1e9;
            let rps = if sim_seconds > 0.0 {
                s.count as f64 / sim_seconds
            } else {
                0.0
            };
            let entry = Value::Obj(vec![
                ("mean_ns".into(), Value::U(u128::from(s.mean.as_nanos()))),
                ("p50_ns".into(), Value::U(u128::from(s.p50.as_nanos()))),
                ("p95_ns".into(), Value::U(u128::from(s.p95.as_nanos()))),
                ("p99_ns".into(), Value::U(u128::from(s.p99.as_nanos()))),
                ("requests".into(), Value::U(u128::from(s.count))),
                ("sim_seconds".into(), Value::F(sim_seconds)),
                ("requests_per_sim_sec".into(), Value::F(rps)),
            ]);
            (t.label.clone(), entry)
        })
        .collect();
    Value::Obj(entries)
}

/// Which of the two bench-artifact schemas a file turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchSchema {
    /// The pre-versioned shape: a flat `label → entry` JSON object whose
    /// entries carry [`BENCH_KEYS`] or [`PERF_KEYS`].
    Legacy,
    /// The versioned perf-artifact shape (`schema_version: 1` + `runs`,
    /// or a bare `simulate --perf` profile).
    V1,
}

impl fmt::Display for BenchSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BenchSchema::Legacy => "legacy flat map",
            BenchSchema::V1 => "versioned v1",
        })
    }
}

/// Validates a bench artifact and reports which schema it is.
///
/// A `schema_version` key marks the versioned shape: it must parse as a
/// [`PerfArtifact`], carry at least one run, and every profiled run's
/// kind-table counts must sum exactly to its event total (runs upgraded
/// from the legacy schema have no kind table and are exempt). Without
/// the key, the artifact must be the legacy non-empty `label → entry`
/// object whose every entry carries all of [`BENCH_KEYS`] (sim-time
/// latency entries) or all of [`PERF_KEYS`] (wall-clock perf entries,
/// recognized by the presence of `"wall_clock_s"`) as numbers. The two
/// legacy kinds may be mixed within one artifact, but an entry must be
/// exactly one of them. Entries may additionally carry any of the
/// [`BENCH_OPTIONAL_KEYS`] RW extension fields (numbers when present);
/// unknown keys beyond those still fail.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn check_bench(artifact: &Value) -> Result<BenchSchema, String> {
    if artifact.get("schema_version").is_some() {
        let art = PerfArtifact::from_value(artifact)?;
        if art.runs.is_empty() {
            return Err("versioned perf artifact has no runs".to_string());
        }
        for run in &art.runs {
            if !run.kinds.is_empty() && run.kind_count_sum() != run.events {
                return Err(format!(
                    "run {:?}: kind counts sum to {} but events is {}",
                    run.label,
                    run.kind_count_sum(),
                    run.events
                ));
            }
        }
        return Ok(BenchSchema::V1);
    }
    let entries = artifact
        .as_obj()
        .ok_or_else(|| "bench artifact must be a JSON object".to_string())?;
    if entries.is_empty() {
        return Err("bench artifact has no entries".to_string());
    }
    for (label, entry) in entries {
        let fields = entry
            .as_obj()
            .ok_or_else(|| format!("entry {label:?} must be an object"))?;
        let keys: &[&str] = if entry.get("wall_clock_s").is_some() {
            &PERF_KEYS
        } else {
            &BENCH_KEYS
        };
        for &key in keys {
            match entry.get(key) {
                Some(Value::U(_) | Value::I(_) | Value::F(_)) => {}
                Some(other) => {
                    return Err(format!(
                        "entry {label:?} key {key:?} is not a number: {other:?}"
                    ))
                }
                None => return Err(format!("entry {label:?} is missing key {key:?}")),
            }
        }
        // RW extension keys are optional but must be numbers if present.
        for &key in &BENCH_OPTIONAL_KEYS {
            if let Some(v) = entry.get(key) {
                if as_f64(v).is_none() {
                    return Err(format!(
                        "entry {label:?} optional key {key:?} is not a number: {v:?}"
                    ));
                }
            }
        }
        for (key, _) in fields {
            if !keys.contains(&key.as_str()) && !BENCH_OPTIONAL_KEYS.contains(&key.as_str()) {
                return Err(format!("entry {label:?} has unknown key {key:?}"));
            }
        }
    }
    Ok(BenchSchema::Legacy)
}

/// The outcome of a two-artifact bench comparison: the rendered table
/// plus the labels that regressed beyond the threshold (empty → pass).
#[derive(Debug)]
pub struct BenchComparison {
    /// The comparison table, one row per label present in both artifacts.
    pub report: String,
    /// `label: old → new (−x%)` lines for throughput drops beyond the
    /// threshold.
    pub regressions: Vec<String>,
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::U(u) => Some(*u as f64),
        Value::I(i) => Some(*i as f64),
        Value::F(f) => Some(*f),
        _ => None,
    }
}

/// One label's throughput metric, normalized out of either schema.
struct MetricRow {
    label: String,
    metric: &'static str,
    value: f64,
}

/// Normalizes an artifact of either schema into `label → throughput`
/// rows. Versioned artifacts report `events_per_sec` with the *latest*
/// run per label winning (the artifact is an append-only history);
/// legacy perf entries report `events_per_sec`, legacy sim-time latency
/// entries `requests_per_sim_sec`.
fn bench_metrics(artifact: &Value) -> Result<Vec<MetricRow>, String> {
    let rows = match check_bench(artifact)? {
        BenchSchema::V1 => {
            let art = PerfArtifact::from_value(artifact)?;
            let mut rows: Vec<MetricRow> = Vec::new();
            for run in &art.runs {
                match rows.iter_mut().find(|r| r.label == run.label) {
                    Some(row) => row.value = run.events_per_sec,
                    None => rows.push(MetricRow {
                        label: run.label.clone(),
                        metric: "events_per_sec",
                        value: run.events_per_sec,
                    }),
                }
            }
            rows
        }
        BenchSchema::Legacy => artifact
            .as_obj()
            .expect("validated above")
            .iter()
            .map(|(label, entry)| {
                let metric = if entry.get("wall_clock_s").is_some() {
                    "events_per_sec"
                } else {
                    "requests_per_sim_sec"
                };
                MetricRow {
                    label: label.clone(),
                    metric,
                    value: entry.get(metric).and_then(as_f64).expect("validated above"),
                }
            })
            .collect(),
    };
    Ok(rows)
}

/// Compares two bench artifacts label by label and flags throughput
/// regressions beyond `threshold` (a fraction: 0.1 → a 10% drop fails).
/// Either side may be the legacy or the versioned schema — both
/// normalize to `label → events_per_sec` (versioned histories take the
/// latest run per label) or `requests_per_sim_sec` for legacy sim-time
/// entries, so a versioned candidate gates cleanly against a legacy
/// baseline. Labels present in only one artifact are reported but never
/// fail the gate.
///
/// # Errors
///
/// Returns a description when either artifact is malformed (see
/// [`check_bench`]) or when the two artifacts share no label.
pub fn compare_bench(base: &Value, new: &Value, threshold: f64) -> Result<BenchComparison, String> {
    let base_rows = bench_metrics(base).map_err(|e| format!("baseline: {e}"))?;
    let new_rows = bench_metrics(new).map_err(|e| format!("candidate: {e}"))?;

    let mut out = String::new();
    let mut regressions = Vec::new();
    let mut shared = 0usize;
    let _ = writeln!(
        out,
        "## Bench comparison (threshold {:.1}%)",
        threshold * 100.0
    );
    let _ = writeln!(
        out,
        "{:<18} {:>14} {:>14} {:>14} {:>8}  verdict",
        "label", "metric", "baseline", "candidate", "delta"
    );
    for row in &base_rows {
        let label = &row.label;
        let Some(n_row) = new_rows.iter().find(|r| &r.label == label) else {
            let _ = writeln!(out, "{label:<18} (only in baseline)");
            continue;
        };
        if row.metric != n_row.metric {
            let _ = writeln!(out, "{label:<18} (entry kinds differ; skipped)");
            continue;
        }
        let (metric, b, n) = (row.metric, row.value, n_row.value);
        shared += 1;
        let delta = if b > 0.0 { (n - b) / b } else { 0.0 };
        let regressed = delta < -threshold;
        let verdict = if regressed { "REGRESSION" } else { "ok" };
        // The bench metrics shorten to fit the row; full precision lives
        // in the artifacts themselves.
        let _ = writeln!(
            out,
            "{label:<18} {metric:>14} {b:>14.1} {n:>14.1} {:>7.1}%  {verdict}",
            delta * 100.0
        );
        if regressed {
            regressions.push(format!(
                "{label}: {metric} {b:.1} -> {n:.1} ({:.1}%)",
                delta * 100.0
            ));
        }
    }
    for row in &new_rows {
        if !base_rows.iter().any(|b| b.label == row.label) {
            let _ = writeln!(out, "{:<18} (only in candidate)", row.label);
        }
    }
    if shared == 0 {
        return Err("the two artifacts share no comparable label".to_string());
    }
    Ok(BenchComparison {
        report: out,
        regressions,
    })
}

/// The latest run per label, in first-appearance order. A perf artifact
/// is an append-only history, so the last record under a label is the
/// current measurement.
fn latest_by_label(runs: &[HostProfile]) -> Vec<&HostProfile> {
    let mut out: Vec<&HostProfile> = Vec::new();
    for run in runs {
        match out.iter_mut().find(|r| r.label == run.label) {
            Some(slot) => *slot = run,
            None => out.push(run),
        }
    }
    out
}

fn coverage_pct(run: &HostProfile) -> f64 {
    if run.wall_s > 0.0 {
        run.attributed_ns as f64 / (run.wall_s * 1e9) * 100.0
    } else {
        0.0
    }
}

fn kind_table(out: &mut String, run: &HostProfile) {
    let wall_ns = run.wall_s * 1e9;
    let _ = writeln!(
        out,
        "   {:<16} {:<8} {:>12} {:>10} {:>8} {:>10}",
        "kind", "layer", "count", "self-ms", "% wall", "ns/event"
    );
    let mut kinds: Vec<&KindRecord> = run.kinds.iter().filter(|k| k.count > 0).collect();
    kinds.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.kind.cmp(&b.kind)));
    for k in kinds {
        let pct = if wall_ns > 0.0 {
            k.self_ns as f64 / wall_ns * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "   {:<16} {:<8} {:>12} {:>10.3} {:>7.1}% {:>10.1}",
            k.kind,
            k.layer,
            k.count,
            k.self_ns as f64 / 1e6,
            pct,
            k.self_ns as f64 / k.count as f64
        );
    }
    // Layer rollup: shares of the *attributed* time, so the column sums
    // to ~100% regardless of sampling coverage.
    let mut layers: Vec<(&str, u64, u64)> = Vec::new();
    for k in &run.kinds {
        match layers.iter_mut().find(|(l, _, _)| *l == k.layer.as_str()) {
            Some((_, ns, n)) => {
                *ns += k.self_ns;
                *n += k.count;
            }
            None => layers.push((k.layer.as_str(), k.self_ns, k.count)),
        }
    }
    layers.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let _ = writeln!(out, "   by layer (self-ms · % of attributed · events):");
    for (layer, ns, n) in layers.iter().filter(|(_, _, n)| *n > 0) {
        let share = if run.attributed_ns > 0 {
            *ns as f64 / run.attributed_ns as f64 * 100.0
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "     {:<14} {:>10.3} {:>7.1}% {:>12}",
            layer,
            *ns as f64 / 1e6,
            share,
            n
        );
    }
    let _ = writeln!(
        out,
        "   queue: {} pushes · {} pops · high-water {} · depth log2-hist {:?}",
        run.queue.pushes, run.queue.pops, run.queue.high_water, run.queue.depth_hist
    );
    if let Some(a) = &run.alloc {
        let _ = writeln!(
            out,
            "   alloc: {} allocs · {} deallocs · peak {} bytes ({:.3} allocs/event)",
            a.allocs,
            a.deallocs,
            a.peak_bytes,
            if run.events > 0 {
                a.allocs as f64 / run.events as f64
            } else {
                0.0
            }
        );
    }
}

/// Renders the host-perf report for labeled perf artifacts: one
/// per-event-kind cost table per (latest) profiled run — self-time, % of
/// wall, ns/event, a layer rollup, queue churn and allocation counters —
/// plus each file's run-history trajectory and, with more than one
/// profiled run overall, a side-by-side throughput comparison.
#[must_use]
pub fn perf_report(entries: &[(String, PerfArtifact)]) -> String {
    let mut out = String::new();
    for (i, (name, art)) in entries.iter().enumerate() {
        if i > 0 {
            let _ = writeln!(out);
        }
        let profiled = art.runs.iter().filter(|r| !r.kinds.is_empty()).count();
        let _ = writeln!(out, "## Perf profile: {name}");
        let _ = writeln!(
            out,
            "   {} runs ({} profiled, {} legacy)",
            art.runs.len(),
            profiled,
            art.runs.len() - profiled
        );
        for run in latest_by_label(&art.runs) {
            if run.kinds.is_empty() {
                continue;
            }
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "### {} — scheme {} · seed {} · {} requests",
                run.label, run.scheme, run.seed, run.requests
            );
            let _ = writeln!(
                out,
                "   host: {} · {} cores · commit {}",
                run.host.cpu, run.host.cores, run.host.commit
            );
            let _ = writeln!(
                out,
                "   {} events in {:.3}s wall ({:.0} events/s) · stride {} · {:.1}% of wall attributed · peak RSS {} kB",
                run.events,
                run.wall_s,
                run.events_per_sec,
                run.stride,
                coverage_pct(run),
                run.peak_rss_kb
            );
            kind_table(&mut out, run);
        }
        let grid: Vec<&HostProfile> = latest_by_label(&art.runs)
            .into_iter()
            .filter(|r| r.parallel.is_some())
            .collect();
        if !grid.is_empty() {
            // The sharded-parallel throughput grid: speedup is relative
            // to the suite's sequential-engine baseline row when one was
            // measured alongside.
            let seq_eps = latest_by_label(&art.runs)
                .into_iter()
                .find(|r| r.label.ends_with("sharded-parallel/seq"))
                .map(|r| r.events_per_sec);
            let _ = writeln!(out);
            let _ = writeln!(out, "   sharded-parallel grid:");
            let _ = writeln!(
                out,
                "     {:<26} {:>6} {:>7} {:>8} {:>10} {:>12} {:>8} {:>10}",
                "label",
                "shards",
                "threads",
                "windows",
                "ev/window",
                "events/s",
                "speedup",
                "imbalance"
            );
            for run in grid {
                let p = run.parallel.as_ref().expect("filtered on parallel");
                let speedup = match seq_eps {
                    Some(base) if base > 0.0 => {
                        format!("{:.2}x", run.events_per_sec / base)
                    }
                    _ => "-".to_string(),
                };
                let imbalance = if p.busy_imbalance > 0.0 {
                    format!("{:.2}x", p.busy_imbalance)
                } else {
                    "-".to_string()
                };
                let _ = writeln!(
                    out,
                    "     {:<26} {:>6} {:>7} {:>8} {:>10.1} {:>12.0} {:>8} {:>10}",
                    run.label,
                    p.shards,
                    p.threads,
                    p.windows,
                    p.events_per_window,
                    run.events_per_sec,
                    speedup,
                    imbalance
                );
            }
        }
        if art.runs.len() > 1 {
            let _ = writeln!(out);
            let _ = writeln!(
                out,
                "   trajectory (run · label · events/s · peak RSS kB · attributed):"
            );
            for (ri, run) in art.runs.iter().enumerate() {
                let attributed = if run.kinds.is_empty() {
                    "-".to_string()
                } else {
                    format!("{:.1}%", coverage_pct(run))
                };
                let _ = writeln!(
                    out,
                    "     {:<4} {:<18} {:>12.0} {:>12} {:>10}",
                    ri + 1,
                    run.label,
                    run.events_per_sec,
                    run.peak_rss_kb,
                    attributed
                );
            }
        }
    }

    // Side-by-side across files: the latest run per (file, label).
    let rows: Vec<(&str, &HostProfile)> = entries
        .iter()
        .flat_map(|(name, art)| {
            latest_by_label(&art.runs)
                .into_iter()
                .map(move |run| (name.as_str(), run))
        })
        .collect();
    if rows.len() > 1 {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Perf comparison");
        let _ = writeln!(
            out,
            "{:<12} {:<18} {:>12} {:>10} {:>12} {:>10}",
            "file", "label", "events/s", "ns/event", "peak RSS kB", "attributed"
        );
        for (name, run) in rows {
            let per_event = if run.events > 0 {
                run.wall_s * 1e9 / run.events as f64
            } else {
                0.0
            };
            let attributed = if run.kinds.is_empty() {
                "-".to_string()
            } else {
                format!("{:.1}%", coverage_pct(run))
            };
            let _ = writeln!(
                out,
                "{name:<12} {:<18} {:>12.0} {:>10.1} {:>12} {:>10}",
                run.label, run.events_per_sec, per_event, run.peak_rss_kb, attributed
            );
        }
    }
    out
}

/// Gates the parallel entry point's dispatch overhead inside one perf
/// artifact: the latest `…sharded-parallel/s1-t1` row (one shard, one
/// thread — the parallel runner collapsing to the sequential engine)
/// must hold at least `1 - threshold` of the latest
/// `…sharded-parallel/seq` baseline's throughput. Wall-clock–free CI
/// boxes keep their protection from the byte-identity tests; this gate
/// exists so a dispatch-layer slowdown shows up where throughput is
/// actually measured.
///
/// Returns `Ok(None)` when the artifact carries no such pair of rows.
///
/// # Errors
///
/// Returns the regression description when the gated row falls below
/// the baseline by more than `threshold`.
pub fn parallel_gate(artifact: &PerfArtifact, threshold: f64) -> Result<Option<String>, String> {
    let latest = latest_by_label(&artifact.runs);
    let seq = latest
        .iter()
        .find(|r| r.label.ends_with("sharded-parallel/seq"));
    let gated = latest.iter().find(|r| {
        r.label.contains("sharded-parallel/")
            && r.parallel
                .as_ref()
                .is_some_and(|p| p.shards == 1 && p.threads == 1)
    });
    let (Some(seq), Some(gated)) = (seq, gated) else {
        return Ok(None);
    };
    if seq.events_per_sec <= 0.0 {
        return Ok(None);
    }
    let ratio = gated.events_per_sec / seq.events_per_sec;
    let line = format!(
        "parallel gate: {} at {:.0} events/s vs {} at {:.0} events/s ({:.1}% of baseline)\n",
        gated.label,
        gated.events_per_sec,
        seq.label,
        seq.events_per_sec,
        ratio * 100.0
    );
    if ratio < 1.0 - threshold {
        return Err(format!(
            "{line}parallel 1-shard/1-thread dispatch regressed more than {:.0}% below the \
             sequential baseline",
            threshold * 100.0
        ));
    }
    Ok(Some(line))
}

/// Loads a `simulate sweep` artifact (one pretty-printed
/// [`SweepReport`] JSON document), rejecting unknown schema versions.
///
/// # Errors
///
/// Returns an error when the file cannot be read or parsed, or carries
/// a schema version this build does not understand.
pub fn load_sweep(path: &str) -> io::Result<SweepReport> {
    let text = std::fs::read_to_string(path)?;
    let report: SweepReport = serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))?;
    if report.schema_version != SWEEP_SCHEMA_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "sweep artifact schema v{} (this build reads v{})",
                report.schema_version, SWEEP_SCHEMA_VERSION
            ),
        ));
    }
    Ok(report)
}

/// Renders a merged sweep artifact: the (config × seed) grid with each
/// cell's completion count, mean and p99 latency and wall-clock cost,
/// headed by the sweep's parallel wall-clock and — when a baseline pass
/// was measured — the sequential wall-clock and speedup.
#[must_use]
pub fn sweep_report(report: &SweepReport) -> String {
    let mut out = String::new();
    let configs: std::collections::BTreeSet<&str> =
        report.cells.iter().map(|c| c.label.as_str()).collect();
    let seeds: std::collections::BTreeSet<u64> = report.cells.iter().map(|c| c.seed).collect();
    let _ = writeln!(
        out,
        "## Sweep: {} cells ({} configs × {} seeds) · {} thread(s)",
        report.cells.len(),
        configs.len(),
        seeds.len(),
        report.threads
    );
    let timing = match (report.sequential_wall_s, report.speedup) {
        (Some(seq), Some(s)) => format!(
            "   parallel {:.2}s · sequential {seq:.2}s · speedup {s:.2}x",
            report.wall_s
        ),
        _ => format!("   parallel {:.2}s (no sequential baseline)", report.wall_s),
    };
    let _ = writeln!(out, "{timing}");
    let _ = writeln!(out);
    // Window-driver columns appear only when some cell actually ran the
    // windowed engine (shards > 1), so single-shard sweeps keep their
    // narrow table.
    let windowed = report.cells.iter().any(|c| c.stats.parallel.is_some());
    let _ = write!(
        out,
        "{:<16} {:>6} {:>7} {:>10} {:>10} {:>10} {:>9}",
        "label", "seed", "shards", "completed", "mean", "p99", "wall_s"
    );
    if windowed {
        let _ = write!(out, " {:>8} {:>6}", "windows", "late");
    }
    let _ = writeln!(out);
    for cell in &report.cells {
        let _ = write!(
            out,
            "{:<16} {:>6} {:>7} {:>10} {:>10} {:>10} {:>9.3}",
            cell.label,
            cell.seed,
            cell.shards,
            cell.stats.completed,
            fmt_dur(cell.stats.latency.mean),
            fmt_dur(cell.stats.latency.p99),
            cell.wall_s
        );
        if windowed {
            match cell.stats.parallel.as_ref() {
                Some(p) => {
                    let _ = write!(out, " {:>8} {:>6}", p.windows, p.mailbox_late);
                }
                None => {
                    let _ = write!(out, " {:>8} {:>6}", "-", "-");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(req: u64, server: u32, e2e: u64) -> TraceRecord {
        // Split e2e across phases so shares and sums are non-trivial.
        let part = e2e / 6;
        TraceRecord {
            req,
            server,
            first: true,
            write: false,
            issued_ns: 1_000,
            received_ns: 1_000 + e2e,
            steer_ns: part,
            selection_ns: part,
            selection_wait_ns: part / 2,
            to_server_ns: part,
            server_queue_ns: part,
            service_ns: part,
            reply_ns: e2e - 5 * part,
            e2e_ns: e2e,
            hops: Vec::new(),
        }
    }

    fn trace(label: &str, e2es: &[u64]) -> LabeledTrace {
        LabeledTrace {
            label: label.to_string(),
            records: e2es
                .iter()
                .enumerate()
                .map(|(i, &e)| record(i as u64, (i % 3) as u32, e))
                .collect(),
        }
    }

    #[test]
    fn split_label_prefers_explicit_label() {
        // Scheme-name labels canonicalize to the paper spelling.
        assert_eq!(
            split_label("clirs=/tmp/a.jsonl"),
            ("CliRS".into(), "/tmp/a.jsonl")
        );
        assert_eq!(
            split_label("/tmp/netrs-ilp.jsonl"),
            ("NetRS-ILP".into(), "/tmp/netrs-ilp.jsonl")
        );
        // Non-scheme labels pass through untouched.
        assert_eq!(
            split_label("baseline=/tmp/b.jsonl"),
            ("baseline".into(), "/tmp/b.jsonl")
        );
        assert_eq!(
            split_label("/tmp/run-42.jsonl"),
            ("run-42".into(), "/tmp/run-42.jsonl")
        );
        // A path containing '=' only in a directory name is not a label.
        assert_eq!(split_label("/tmp/x=y/t.jsonl").1, "/tmp/x=y/t.jsonl");
    }

    #[test]
    fn winning_reads_filters_losers_and_writes() {
        let mut records = vec![record(0, 0, 600)];
        let mut loser = record(0, 1, 900);
        loser.first = false;
        let mut write = record(1, 0, 600);
        write.write = true;
        records.push(loser);
        records.push(write);
        assert_eq!(winning_reads(&records).len(), 1);
    }

    #[test]
    fn comparison_report_lists_all_labels_and_phases() {
        let traces = vec![
            trace("clirs", &[600, 1_200, 2_400]),
            trace("netrs-ilp", &[300, 600, 900]),
        ];
        let report = comparison_report(&traces);
        for needle in ["clirs", "netrs-ilp", "mean", "median", "p95", "p99", "e2e"] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
        for (phase, _) in PHASES {
            assert!(report.contains(phase), "missing phase {phase:?}");
        }
    }

    #[test]
    fn tail_report_attributes_full_tail_time() {
        let t = trace("x", &[600, 600, 600, 600, 60_000]);
        let report = tail_report("x", &t.records, 5);
        assert!(report.contains("phase shares"));
        assert!(report.contains("server:"), "top servers listed:\n{report}");
        // The slowest request defines the tail; its phases sum to its
        // e2e, so the printed shares must sum to ~100%.
        let total: f64 = report
            .lines()
            .filter_map(|l| l.trim().strip_suffix('%'))
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|n| n.parse::<f64>().ok())
            .sum();
        assert!((total - 100.0).abs() < 0.5, "shares sum to {total}");
    }

    #[test]
    fn link_source_parses_device_keys() {
        assert_eq!(link_source("link:h3>s0"), Some("h3"));
        assert_eq!(link_source("link:s12>h40"), Some("s12"));
        assert_eq!(link_source("server:3"), None);
    }

    #[test]
    fn bench_artifact_round_trips_and_validates() {
        let traces = vec![trace("clirs", &[600, 1_200]), trace("ilp", &[300])];
        let artifact = bench_artifact(&traces);
        check_bench(&artifact).expect("generated artifact is valid");
        let text = serde_json::to_string_pretty(&artifact).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        check_bench(&back).expect("artifact survives a round trip");
        let clirs = back.get("clirs").expect("labels are keys");
        assert_eq!(clirs.get("requests"), Some(&Value::U(2)));
    }

    #[test]
    fn availability_report_pins_its_format() {
        use netrs_sim::AvailabilityStats;
        use netrs_simcore::SimTime;

        fn stats(issued: u64, avail: Option<AvailabilityStats>) -> RunStats {
            RunStats {
                scheme: Scheme::CliRs,
                latency: Summary::default(),
                breakdown: Default::default(),
                issued,
                completed: issued,
                duplicates: 0,
                rsnode_count: 0,
                rsnode_census: [0, 0, 0],
                drs_groups: 0,
                mean_accel_utilization: 0.0,
                max_accel_utilization: 0.0,
                mean_selection_wait: SimDuration::ZERO,
                mean_server_utilization: 0.0,
                replans: 0,
                writes_issued: 0,
                write_latency: Summary::default(),
                overload_events: 0,
                sim_end: SimTime::ZERO,
                events: 0,
                availability: avail,
                rw: None,
                parallel: None,
            }
        }

        let entries = vec![
            (
                "CliRS".to_string(),
                stats(
                    8_000,
                    Some(AvailabilityStats {
                        faults_injected: 1,
                        timeouts: 40,
                        retries: 120,
                        duplicate_drops: 3,
                        copies_dropped: 160,
                        failed_window_p99: SimDuration::from_micros(11_534),
                        time_to_recover: Some(SimDuration::from_micros(20_022)),
                    }),
                ),
            ),
            (
                "NetRS-ToR".to_string(),
                stats(
                    8_000,
                    Some(AvailabilityStats {
                        faults_injected: 1,
                        timeouts: 0,
                        retries: 9,
                        duplicate_drops: 0,
                        copies_dropped: 9,
                        failed_window_p99: SimDuration::from_micros(2_100),
                        time_to_recover: None,
                    }),
                ),
            ),
            ("baseline".to_string(), stats(8_000, None)),
        ];
        let expected = "\
## Availability under faults
label            issued  timeouts timeout-rate  retries   dropped   failed-p99      recover
CliRS              8000        40       0.500%      120       160     11.534ms     20.022ms
NetRS-ToR          8000         0       0.000%        9         9      2.100ms        never
baseline           8000 (fault-free run)
";
        assert_eq!(availability_report(&entries), expected);
    }

    #[test]
    fn rw_report_pins_its_format() {
        use netrs_sim::RwStats;
        use netrs_simcore::SimTime;

        fn stats(writes: u64, rw: Option<RwStats>) -> RunStats {
            RunStats {
                scheme: Scheme::NetRsToR,
                latency: Summary {
                    count: 3_600,
                    mean: SimDuration::from_micros(1_950),
                    p50: SimDuration::ZERO,
                    p95: SimDuration::ZERO,
                    p99: SimDuration::from_micros(12_400),
                    p999: SimDuration::ZERO,
                    max: SimDuration::ZERO,
                },
                breakdown: Default::default(),
                issued: 4_000,
                completed: 4_000,
                duplicates: 0,
                rsnode_count: 7,
                rsnode_census: [0, 0, 7],
                drs_groups: 0,
                mean_accel_utilization: 0.0,
                max_accel_utilization: 0.0,
                mean_selection_wait: SimDuration::ZERO,
                mean_server_utilization: 0.0,
                replans: 0,
                writes_issued: writes,
                write_latency: Summary {
                    count: writes,
                    mean: SimDuration::from_micros(2_720),
                    p50: SimDuration::ZERO,
                    p95: SimDuration::ZERO,
                    p99: SimDuration::from_micros(15_800),
                    p999: SimDuration::ZERO,
                    max: SimDuration::ZERO,
                },
                overload_events: 0,
                sim_end: SimTime::ZERO,
                events: 0,
                availability: None,
                rw,
                parallel: None,
            }
        }

        let entries = vec![
            (
                "cache-on".to_string(),
                stats(
                    400,
                    Some(RwStats {
                        writes_completed: 400,
                        cache_hits: 880,
                        cache_misses: 2_714,
                        stale_reads: 2,
                        cache_evictions: 1_084,
                        cache_invalidations: 688,
                    }),
                ),
            ),
            ("legacy-writes".to_string(), stats(400, None)),
            ("read-only".to_string(), stats(0, None)),
        ];
        let devices = vec![
            DeviceRecord {
                dev: "switch:20".into(),
                kind: "switch".into(),
                tier: 2,
                packets: [0, 0, 0],
                bytes: [0, 0, 0],
                ops: 0,
                selections: 0,
                mean_selection_wait_ns: 0,
                clone_updates: 0,
                busy_ns: 0,
                utilization: 0.0,
                mean_queue_depth: 0.0,
                max_queue_depth: 0,
                drops: 0,
                clamps: 0,
                cache_hits: 500,
                cache_misses: 1_500,
                cache_stale_hits: 1,
                cache_evictions: 600,
                cache_invalidations: 350,
            },
            // No cache traffic: stays out of the per-operator table.
            DeviceRecord {
                dev: "switch:21".into(),
                cache_hits: 0,
                cache_misses: 0,
                cache_stale_hits: 0,
                cache_evictions: 0,
                cache_invalidations: 0,
                ..devices_proto()
            },
        ];
        let expected = "\
## Read/write mix
label             reads       r-mean        r-p99   writes       w-mean        w-p99  hit-ratio    stale
cache-on           3600      1.950ms     12.400ms      400      2.720ms     15.800ms      24.5%        2
legacy-writes      3600      1.950ms     12.400ms      400      2.720ms     15.800ms          -        -
read-only          4000      1.950ms     12.400ms        0 (read-only run)

## Per-operator cache
operator         hits   misses  hit-ratio    stale   evicted   invalidated
switch:20         500     1500      25.0%        1       600           350
";
        assert_eq!(rw_report(&entries, &devices), expected);
        // Without device telemetry the per-operator table is absent.
        assert!(!rw_report(&entries, &[]).contains("Per-operator"));
    }

    fn devices_proto() -> DeviceRecord {
        DeviceRecord {
            dev: String::new(),
            kind: "switch".into(),
            tier: 2,
            packets: [0, 0, 0],
            bytes: [0, 0, 0],
            ops: 0,
            selections: 0,
            mean_selection_wait_ns: 0,
            clone_updates: 0,
            busy_ns: 0,
            utilization: 0.0,
            mean_queue_depth: 0.0,
            max_queue_depth: 0,
            drops: 0,
            clamps: 0,
            cache_hits: 0,
            cache_misses: 0,
            cache_stale_hits: 0,
            cache_evictions: 0,
            cache_invalidations: 0,
        }
    }

    #[test]
    fn sweep_report_pins_its_format() {
        use netrs_sim::SweepCell;
        use netrs_simcore::SimTime;

        fn cell(
            label: &str,
            seed: u64,
            shards: u32,
            mean_us: u64,
            p99_us: u64,
            wall_s: f64,
        ) -> SweepCell {
            SweepCell {
                label: label.to_string(),
                seed,
                shards,
                wall_s,
                stats: RunStats {
                    scheme: Scheme::CliRs,
                    latency: Summary {
                        count: 8_000,
                        mean: SimDuration::from_micros(mean_us),
                        p50: SimDuration::ZERO,
                        p95: SimDuration::ZERO,
                        p99: SimDuration::from_micros(p99_us),
                        p999: SimDuration::ZERO,
                        max: SimDuration::ZERO,
                    },
                    breakdown: Default::default(),
                    issued: 8_000,
                    completed: 8_000,
                    duplicates: 0,
                    rsnode_count: 0,
                    rsnode_census: [0, 0, 0],
                    drs_groups: 0,
                    mean_accel_utilization: 0.0,
                    max_accel_utilization: 0.0,
                    mean_selection_wait: SimDuration::ZERO,
                    mean_server_utilization: 0.0,
                    replans: 0,
                    writes_issued: 0,
                    write_latency: Summary::default(),
                    overload_events: 0,
                    sim_end: SimTime::ZERO,
                    events: 0,
                    availability: None,
                    rw: None,
                    parallel: None,
                },
            }
        }

        let report = SweepReport {
            schema_version: SWEEP_SCHEMA_VERSION,
            threads: 4,
            wall_s: 12.5,
            sequential_wall_s: Some(48.0),
            speedup: Some(3.84),
            cells: vec![
                cell("CliRS", 1, 1, 3_668, 16_908, 0.251),
                cell("NetRS-ToR", 2, 4, 1_234, 7_777, 1.5),
            ],
        };
        let expected = "\
## Sweep: 2 cells (2 configs × 2 seeds) · 4 thread(s)
   parallel 12.50s · sequential 48.00s · speedup 3.84x

label              seed  shards  completed       mean        p99    wall_s
CliRS                 1       1       8000    3.668ms   16.908ms     0.251
NetRS-ToR             2       4       8000    1.234ms    7.777ms     1.500
";
        assert_eq!(sweep_report(&report), expected);

        let no_baseline = SweepReport {
            sequential_wall_s: None,
            speedup: None,
            ..report
        };
        assert!(
            sweep_report(&no_baseline).contains("parallel 12.50s (no sequential baseline)"),
            "baseline-free sweeps must say so"
        );
    }

    #[test]
    fn control_report_pins_its_format() {
        use netrs_sim::{
            DisplacedGroup, DrsSpanRecord, PlanEventRecord, SnapshotGroup, SolveRecord,
        };

        let snapshot = |tor: u32, from_ns: u64, to_ns: u64| {
            ControlRecord::Snapshot(SnapshotRecord {
                tor,
                pod: tor / 2,
                from_ns,
                to_ns,
                groups: vec![SnapshotGroup {
                    group: 0,
                    counts: [50, 100, 350],
                    rates: [100.0, 200.0, 700.0],
                }],
            })
        };
        let records = vec![
            ControlRecord::Plan(PlanEventRecord {
                t_ns: 0,
                trigger: "initial".into(),
                switch: None,
                solve: Some(SolveRecord {
                    greedy: false,
                    variables: 52,
                    constraints: 42,
                    lp_iterations: 13_766,
                    branch_nodes: 200,
                    objective: 4.0,
                }),
                reassigned: vec![],
                newly_assigned: vec![0, 1, 2, 3, 4, 5, 6],
                unassigned: vec![],
                rsnodes_added: vec![3, 4, 5, 16],
                rsnodes_removed: vec![],
                rsnodes: 4,
                drs_groups: 0,
                rules_recompiled: 20,
            }),
            snapshot(0, 0, 500_000_000),
            snapshot(1, 0, 500_000_000),
            ControlRecord::Plan(PlanEventRecord {
                t_ns: 500_000_000,
                trigger: "operator_fail".into(),
                switch: Some(16),
                solve: None,
                reassigned: vec![],
                newly_assigned: vec![],
                unassigned: vec![5, 6],
                rsnodes_added: vec![],
                rsnodes_removed: vec![16],
                rsnodes: 4,
                drs_groups: 2,
                rules_recompiled: 20,
            }),
            ControlRecord::DrsSpan(DrsSpanRecord {
                switch: 16,
                fail_ns: 490_000_000,
                detect_ns: Some(500_000_000),
                recover_ns: Some(900_000_000),
                groups: vec![
                    DisplacedGroup {
                        group: 5,
                        displaced_ns: 400_000_000,
                    },
                    DisplacedGroup {
                        group: 6,
                        displaced_ns: 400_000_000,
                    },
                ],
            }),
        ];
        let expected = "\
## Control plane: NetRS-ILP
   5 records: 2 snapshots · 2 plan events · 1 DRS spans
   traffic evolution (batch · windows · ToRs · resp/s by tier):
     1           2     2      200.0      400.0     1400.0
   plan churn (t · trigger · groups re/new/un · RSNodes +/- · DRS · rules · solve):
     0.000000s   initial                0/  7/  0    4 (+4/-0)    0     20  ilp 13766 it · 200 nodes · obj 4
     0.500000s   operator_fail(sw16)    0/  0/  2    4 (+0/-1)    2     20  -
   DRS spans (switch · fail · detect-lag · recover · groups · displaced):
     sw16     0.490000s   +10.000ms   0.900000s   2   800.000ms
";
        let entries = vec![("NetRS-ILP".to_string(), records)];
        assert_eq!(control_report(&entries), expected);
        // A second label appends the side-by-side summary.
        let two = vec![entries[0].clone(), ("NetRS-ToR".to_string(), Vec::new())];
        let report = control_report(&two);
        assert!(report.contains("## Control plane comparison"));
        assert!(report.contains("lp-it/solve"));
        assert!(report.contains("800.000ms"), "displaced total:\n{report}");
    }

    #[test]
    fn compare_bench_flags_regressions_beyond_threshold() {
        let perf = |eps: f64| {
            Value::Obj(vec![
                ("events".into(), Value::U(1_000)),
                ("events_per_sec".into(), Value::F(eps)),
                ("peak_rss_kb".into(), Value::U(10_000)),
                ("wall_clock_s".into(), Value::F(1.0)),
            ])
        };
        let base = Value::Obj(vec![
            ("CliRS".into(), perf(1_000_000.0)),
            ("NetRS-ILP".into(), perf(800_000.0)),
            ("gone".into(), perf(1.0)),
        ]);
        let ok_new = Value::Obj(vec![
            ("CliRS".into(), perf(950_000.0)),
            ("NetRS-ILP".into(), perf(850_000.0)),
        ]);
        let cmp = compare_bench(&base, &ok_new, 0.1).expect("valid artifacts compare");
        assert!(cmp.regressions.is_empty(), "5% drop is within 10%");
        assert!(cmp.report.contains("only in baseline"));
        assert!(cmp.report.contains("ok"));

        let bad_new = Value::Obj(vec![
            ("CliRS".into(), perf(850_000.0)),
            ("NetRS-ILP".into(), perf(850_000.0)),
        ]);
        let cmp = compare_bench(&base, &bad_new, 0.1).expect("valid artifacts compare");
        assert_eq!(cmp.regressions.len(), 1, "15% drop fails a 10% gate");
        assert!(cmp.regressions[0].contains("CliRS"));
        assert!(cmp.report.contains("REGRESSION"));

        // Tightening the threshold flags the 5% drop too.
        let cmp = compare_bench(&base, &ok_new, 0.01).expect("valid artifacts compare");
        assert_eq!(cmp.regressions.len(), 1);

        // Malformed or disjoint artifacts are errors, not empty passes.
        assert!(compare_bench(&Value::Arr(vec![]), &ok_new, 0.1).is_err());
        let disjoint = Value::Obj(vec![("other".into(), perf(1.0))]);
        assert!(compare_bench(&base, &disjoint, 0.1)
            .unwrap_err()
            .contains("no comparable label"));
    }

    fn host_profile(label: &str, events: u64, eps: f64) -> HostProfile {
        use netrs_sim::{AllocStats, HostMeta, QueueStats, PERF_SCHEMA_VERSION};
        HostProfile {
            label: label.into(),
            schema_version: PERF_SCHEMA_VERSION,
            scheme: label.rsplit('/').next().unwrap_or(label).into(),
            seed: 1,
            requests: 2_000,
            events,
            wall_s: 0.006,
            events_per_sec: eps,
            peak_rss_kb: 6_900,
            stride: 7,
            attributed_ns: 4_500_000,
            host: HostMeta {
                commit: "ab12cd3".into(),
                cpu: "Test CPU".into(),
                cores: 8,
            },
            queue: QueueStats {
                pushes: events,
                pops: events,
                high_water: 420,
                depth_hist: vec![1, 2, 4],
            },
            alloc: Some(AllocStats {
                allocs: 120,
                deallocs: 100,
                peak_bytes: 9_000_000,
            }),
            parallel: None,
            kinds: vec![
                KindRecord {
                    kind: "Generate".into(),
                    layer: "state".into(),
                    count: 2_000,
                    sampled: 290,
                    self_ns: 1_500_000,
                },
                KindRecord {
                    kind: "ServerDone".into(),
                    layer: "server".into(),
                    count: events - 2_000,
                    sampled: 2_282,
                    self_ns: 3_000_000,
                },
            ],
        }
    }

    fn to_value(artifact: &PerfArtifact) -> Value {
        let text = serde_json::to_string(artifact).unwrap();
        serde_json::from_str(&text).unwrap()
    }

    #[test]
    fn check_bench_detects_and_validates_versioned_artifacts() {
        let art = PerfArtifact {
            runs: vec![
                HostProfile::from_legacy("smoke/CliRS", 18_000, 2_500_000.0, 6_000, 0.0072),
                host_profile("smoke/CliRS", 18_000, 3_000_000.0),
            ],
        };
        assert_eq!(check_bench(&to_value(&art)).unwrap(), BenchSchema::V1);
        // A bare `simulate --perf` profile is also versioned.
        let bare: Value = serde_json::from_str(
            &serde_json::to_string(&host_profile("CliRS", 18_000, 3e6)).unwrap(),
        )
        .unwrap();
        assert_eq!(check_bench(&bare).unwrap(), BenchSchema::V1);
        // The legacy shape still reports as legacy.
        let legacy = Value::Obj(vec![(
            "x".into(),
            Value::Obj(
                PERF_KEYS
                    .iter()
                    .map(|k| ((*k).to_string(), Value::F(1.0)))
                    .collect(),
            ),
        )]);
        assert_eq!(check_bench(&legacy).unwrap(), BenchSchema::Legacy);
        // Kind counts that do not sum to the event total are rejected.
        let mut bad = host_profile("CliRS", 18_000, 3e6);
        bad.kinds[0].count += 1;
        let err = check_bench(&to_value(&PerfArtifact { runs: vec![bad] })).unwrap_err();
        assert!(err.contains("sum"), "{err}");
        // Empty histories and unknown versions are rejected.
        let empty: Value = serde_json::from_str(r#"{"schema_version": 1, "runs": []}"#).unwrap();
        assert!(check_bench(&empty).unwrap_err().contains("no runs"));
        let future: Value = serde_json::from_str(r#"{"schema_version": 99, "runs": []}"#).unwrap();
        assert!(check_bench(&future).unwrap_err().contains("unsupported"));
    }

    #[test]
    fn compare_bench_normalizes_versioned_against_legacy() {
        let legacy = Value::Obj(vec![(
            "smoke/CliRS".into(),
            Value::Obj(vec![
                ("events".into(), Value::U(18_000)),
                ("events_per_sec".into(), Value::F(1_000_000.0)),
                ("peak_rss_kb".into(), Value::U(6_000)),
                ("wall_clock_s".into(), Value::F(0.018)),
            ]),
        )]);
        // The versioned candidate's history: an old slow run, then the
        // current one — the latest run per label must win.
        let ok = PerfArtifact {
            runs: vec![
                host_profile("smoke/CliRS", 18_000, 500_000.0),
                host_profile("smoke/CliRS", 18_000, 980_000.0),
            ],
        };
        let cmp = compare_bench(&legacy, &to_value(&ok), 0.1).expect("schemas normalize");
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
        assert!(cmp.report.contains("events_per_sec"));

        let bad = PerfArtifact {
            runs: vec![host_profile("smoke/CliRS", 18_000, 800_000.0)],
        };
        let cmp = compare_bench(&legacy, &to_value(&bad), 0.1).expect("schemas normalize");
        assert_eq!(cmp.regressions.len(), 1, "20% drop fails a 10% gate");
    }

    #[test]
    fn perf_report_pins_its_format() {
        let art = PerfArtifact {
            runs: vec![
                HostProfile::from_legacy("smoke/CliRS", 18_000, 2_500_000.0, 6_000, 0.0072),
                host_profile("smoke/CliRS", 18_000, 3_000_000.0),
            ],
        };
        let report = perf_report(&[("bench".to_string(), art.clone())]);
        let expected = "\
## Perf profile: bench
   2 runs (1 profiled, 1 legacy)

### smoke/CliRS — scheme CliRS · seed 1 · 2000 requests
   host: Test CPU · 8 cores · commit ab12cd3
   18000 events in 0.006s wall (3000000 events/s) · stride 7 · 75.0% of wall attributed · peak RSS 6900 kB
   kind             layer           count    self-ms   % wall   ns/event
   ServerDone       server          16000      3.000    50.0%      187.5
   Generate         state            2000      1.500    25.0%      750.0
   by layer (self-ms · % of attributed · events):
     server              3.000    66.7%        16000
     state               1.500    33.3%         2000
   queue: 18000 pushes · 18000 pops · high-water 420 · depth log2-hist [1, 2, 4]
   alloc: 120 allocs · 100 deallocs · peak 9000000 bytes (0.007 allocs/event)

   trajectory (run · label · events/s · peak RSS kB · attributed):
     1    smoke/CliRS             2500000         6000          -
     2    smoke/CliRS             3000000         6900      75.0%
";
        assert_eq!(report, expected);
        // Two files close with the side-by-side comparison.
        let report = perf_report(&[
            ("before".to_string(), art.clone()),
            ("after".to_string(), art),
        ]);
        assert!(report.contains("## Perf comparison"), "{report}");
        assert!(report.contains("ns/event"), "{report}");
    }

    #[test]
    fn parallel_gate_passes_fails_and_skips() {
        use netrs_sim::ParallelPerf;
        let row = |label: &str, eps: f64, parallel: Option<ParallelPerf>| {
            let mut p = host_profile(label, 18_000, eps);
            p.parallel = parallel;
            p
        };
        let marker = ParallelPerf {
            shards: 1,
            threads: 1,
            windows: 0,
            events_per_window: 0.0,
            busy_imbalance: 0.0,
        };
        // No sharded-parallel rows at all: nothing to gate.
        let plain = PerfArtifact {
            runs: vec![row("smoke/CliRS", 1_000_000.0, None)],
        };
        assert_eq!(parallel_gate(&plain, 0.1).unwrap(), None);

        // Dispatch within threshold passes and reports the ratio.
        let ok = PerfArtifact {
            runs: vec![
                row("smoke/sharded-parallel/seq", 1_000_000.0, None),
                row("smoke/sharded-parallel/s1-t1", 950_000.0, Some(marker)),
            ],
        };
        let line = parallel_gate(&ok, 0.1).unwrap().expect("pair gated");
        assert!(line.contains("95.0% of baseline"), "{line}");

        // A dispatch-layer collapse beyond the threshold fails.
        let bad = PerfArtifact {
            runs: vec![
                row("smoke/sharded-parallel/seq", 1_000_000.0, None),
                row("smoke/sharded-parallel/s1-t1", 500_000.0, Some(marker)),
            ],
        };
        let err = parallel_gate(&bad, 0.1).unwrap_err();
        assert!(err.contains("regressed"), "{err}");

        // Only the latest row per label counts: a newer, healthy s1-t1
        // supersedes the historical regression above.
        let healed = PerfArtifact {
            runs: bad
                .runs
                .iter()
                .cloned()
                .chain([row("smoke/sharded-parallel/s1-t1", 990_000.0, Some(marker))])
                .collect(),
        };
        assert!(parallel_gate(&healed, 0.1).unwrap().is_some());
    }

    #[test]
    fn check_bench_rejects_malformed_artifacts() {
        assert!(check_bench(&Value::Arr(vec![])).is_err());
        assert!(check_bench(&Value::Obj(vec![])).is_err());
        let missing = Value::Obj(vec![(
            "x".into(),
            Value::Obj(vec![("mean_ns".into(), Value::U(1))]),
        )]);
        assert!(check_bench(&missing).unwrap_err().contains("missing"));
        let extra_entries: Vec<(String, Value)> = BENCH_KEYS
            .iter()
            .map(|k| ((*k).to_string(), Value::U(1)))
            .chain([("bogus".to_string(), Value::U(1))])
            .collect();
        let extra = Value::Obj(vec![("x".into(), Value::Obj(extra_entries))]);
        assert!(check_bench(&extra).unwrap_err().contains("unknown key"));
        let wrong_type: Vec<(String, Value)> = BENCH_KEYS
            .iter()
            .map(|k| ((*k).to_string(), Value::Str("nope".into())))
            .collect();
        let wrong = Value::Obj(vec![("x".into(), Value::Obj(wrong_type))]);
        assert!(check_bench(&wrong).unwrap_err().contains("not a number"));
    }

    #[test]
    fn check_bench_tolerates_optional_rw_keys() {
        // Artifacts from RW-enabled runs may append the optional
        // extension keys; older consumers of the same schema must still
        // validate them, and present values must be numeric.
        let with_rw: Vec<(String, Value)> = BENCH_KEYS
            .iter()
            .map(|k| ((*k).to_string(), Value::U(1)))
            .chain(
                BENCH_OPTIONAL_KEYS
                    .iter()
                    .map(|k| ((*k).to_string(), Value::F(0.25))),
            )
            .collect();
        let ok = Value::Obj(vec![("x".into(), Value::Obj(with_rw))]);
        assert_eq!(check_bench(&ok).unwrap(), BenchSchema::Legacy);

        let bad_entries: Vec<(String, Value)> = BENCH_KEYS
            .iter()
            .map(|k| ((*k).to_string(), Value::U(1)))
            .chain([("stale_reads".to_string(), Value::Str("two".into()))])
            .collect();
        let bad = Value::Obj(vec![("x".into(), Value::Obj(bad_entries))]);
        assert!(check_bench(&bad).unwrap_err().contains("stale_reads"));
    }

    #[test]
    fn check_bench_accepts_and_polices_perf_entries() {
        let perf_entry = |extra: Option<(&str, Value)>| {
            let fields: Vec<(String, Value)> = PERF_KEYS
                .iter()
                .map(|k| ((*k).to_string(), Value::F(1.5)))
                .chain(extra.map(|(k, v)| (k.to_string(), v)))
                .collect();
            Value::Obj(fields)
        };
        // A pure perf artifact validates.
        let ok = Value::Obj(vec![("before/CliRS".into(), perf_entry(None))]);
        check_bench(&ok).expect("perf entries validate");
        // Perf and sim-time entries can coexist in one artifact.
        let bench_fields: Vec<(String, Value)> = BENCH_KEYS
            .iter()
            .map(|k| ((*k).to_string(), Value::U(1)))
            .collect();
        let mixed = Value::Obj(vec![
            ("after/CliRS".into(), perf_entry(None)),
            ("clirs".into(), Value::Obj(bench_fields)),
        ]);
        check_bench(&mixed).expect("mixed artifacts validate");
        // Perf entries are policed against PERF_KEYS, not BENCH_KEYS.
        let extra = Value::Obj(vec![(
            "x".into(),
            perf_entry(Some(("mean_ns", Value::U(1)))),
        )]);
        assert!(check_bench(&extra).unwrap_err().contains("unknown key"));
        let missing = Value::Obj(vec![(
            "x".into(),
            Value::Obj(vec![("wall_clock_s".into(), Value::F(1.0))]),
        )]);
        assert!(check_bench(&missing).unwrap_err().contains("missing"));
    }
}
