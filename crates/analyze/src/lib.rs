//! Offline analysis of NetRS simulation artifacts.
//!
//! The `simulate` binary emits three JSONL artifact kinds: per-request
//! traces (`--trace`, one [`TraceRecord`] per copy), virtual-time series
//! (`--timeseries`, one [`SamplePoint`] per tick) and end-of-run device
//! telemetry (`--devices`, one [`DeviceRecord`] per device). This crate —
//! and its `netrs-analyze` CLI — turns those files into the reports the
//! paper's evaluation is built from:
//!
//! * **scheme comparison** — mean / median / p95 / p99 per latency phase,
//!   side by side across labeled traces (CliRS vs NetRS-ILP, …);
//! * **tail attribution** — which phases and which servers the slowest
//!   1% of requests spend their time in;
//! * **hotspot tables** — the busiest devices per kind, per-tier traffic
//!   totals, and ECMP path skew from per-link packet counts;
//! * **bench artifact** — a small JSON regression file
//!   (`label → {mean_ns, p50_ns, p95_ns, p99_ns, …}`) that CI can diff;
//! * **availability tables** — timeout rate, retries and time-to-recover
//!   per scheme from `simulate --faults … --json` stats files.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufRead, BufReader};
use std::path::Path;

use netrs_sim::{DeviceRecord, RunStats, SamplePoint, Scheme, TraceRecord};
use netrs_simcore::{Histogram, SimDuration, Summary};
use serde::Value;

/// One labeled trace: a scheme (or experiment) name plus its records.
#[derive(Debug, Clone)]
pub struct LabeledTrace {
    /// Column label in comparison tables and the bench artifact.
    pub label: String,
    /// Every record of the trace file, in file order.
    pub records: Vec<TraceRecord>,
}

/// Pulls one phase duration (ns) out of a trace record.
pub type PhaseExtractor = fn(&TraceRecord) -> u64;

/// The six phases of the request-latency decomposition, in causal order,
/// each paired with its extractor. `e2e` is reported separately.
pub const PHASES: [(&str, PhaseExtractor); 6] = [
    ("steer", |r| r.steer_ns),
    ("selection", |r| r.selection_ns),
    ("to-server", |r| r.to_server_ns),
    ("server-queue", |r| r.server_queue_ns),
    ("service", |r| r.service_ns),
    ("reply", |r| r.reply_ns),
];

/// Parses a `[LABEL=]PATH` trace argument: an explicit label before the
/// first `=`, otherwise the file stem. Labels naming one of the four
/// schemes (in any case) are canonicalized to the paper spelling, so
/// `clirs=a.jsonl` and `netrs-ilp.jsonl` line up with `CliRS` /
/// `NetRS-ILP` columns from other runs.
#[must_use]
pub fn split_label(arg: &str) -> (String, &str) {
    if let Some((label, path)) = arg.split_once('=') {
        if !label.is_empty() && !label.contains(['/', '\\']) {
            return (canonical_label(label), path);
        }
    }
    let stem = Path::new(arg)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or(arg);
    (canonical_label(stem), arg)
}

/// Rewrites scheme-name labels to their paper spelling; anything that is
/// not a scheme name passes through untouched.
fn canonical_label(label: &str) -> String {
    label
        .parse::<Scheme>()
        .map_or_else(|_| label.to_string(), |s| s.label().to_string())
}

fn parse_jsonl<T: serde::Deserialize>(path: &str) -> io::Result<Vec<T>> {
    let file = BufReader::new(File::open(path)?);
    let mut out = Vec::new();
    for (i, line) in file.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let item = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{path}:{}: {e}", i + 1))
        })?;
        out.push(item);
    }
    Ok(out)
}

/// Loads a `--trace` JSONL file.
///
/// # Errors
///
/// Returns the underlying I/O error, or [`io::ErrorKind::InvalidData`]
/// naming the offending line when a line fails to parse.
pub fn load_trace(path: &str) -> io::Result<Vec<TraceRecord>> {
    parse_jsonl(path)
}

/// Loads a `--devices` JSONL file (same error contract as
/// [`load_trace`]).
///
/// # Errors
///
/// See [`load_trace`].
pub fn load_devices(path: &str) -> io::Result<Vec<DeviceRecord>> {
    parse_jsonl(path)
}

/// Loads a `--timeseries` JSONL file (same error contract as
/// [`load_trace`]).
///
/// # Errors
///
/// See [`load_trace`].
pub fn load_timeseries(path: &str) -> io::Result<Vec<SamplePoint>> {
    parse_jsonl(path)
}

/// The records the latency analysis is over: winning read copies — the
/// same population as `RunStats::latency`.
#[must_use]
pub fn winning_reads(records: &[TraceRecord]) -> Vec<&TraceRecord> {
    records.iter().filter(|r| r.first && !r.write).collect()
}

fn summarize(records: &[&TraceRecord], extract: fn(&TraceRecord) -> u64) -> Summary {
    let mut h = Histogram::new();
    for r in records {
        h.record_nanos(extract(r));
    }
    h.summary()
}

fn fmt_dur(ns: SimDuration) -> String {
    ns.to_string()
}

/// Renders the side-by-side per-phase comparison: one table per
/// statistic (mean, median, p95, p99), phases as rows, labels as
/// columns. Statistics are over winning reads.
#[must_use]
pub fn comparison_report(traces: &[LabeledTrace]) -> String {
    let per_label: Vec<(String, Vec<Summary>, Summary)> = traces
        .iter()
        .map(|t| {
            let reads = winning_reads(&t.records);
            let phases = PHASES.iter().map(|&(_, f)| summarize(&reads, f)).collect();
            (t.label.clone(), phases, summarize(&reads, |r| r.e2e_ns))
        })
        .collect();

    let mut out = String::new();
    let _ = writeln!(out, "## Per-phase latency comparison (winning reads)");
    for (label, _, e2e) in &per_label {
        let _ = writeln!(out, "   {label}: {} requests", e2e.count);
    }
    type StatPick = fn(&Summary) -> SimDuration;
    let stats: [(&str, StatPick); 4] = [
        ("mean", |s| s.mean),
        ("median", |s| s.p50),
        ("p95", |s| s.p95),
        ("p99", |s| s.p99),
    ];
    for (stat_name, pick) in stats {
        let _ = writeln!(out);
        let _ = write!(out, "{:<14}", stat_name);
        for (label, _, _) in &per_label {
            let _ = write!(out, " {:>14}", label);
        }
        let _ = writeln!(out);
        for (pi, &(phase, _)) in PHASES.iter().enumerate() {
            let _ = write!(out, "{:<14}", phase);
            for (_, phases, _) in &per_label {
                let _ = write!(out, " {:>14}", fmt_dur(pick(&phases[pi])));
            }
            let _ = writeln!(out);
        }
        let _ = write!(out, "{:<14}", "e2e");
        for (_, _, e2e) in &per_label {
            let _ = write!(out, " {:>14}", fmt_dur(pick(e2e)));
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the tail attribution for one trace: over the winning reads at
/// or above the e2e 99th percentile, the share of tail time each phase
/// accounts for, plus the servers that serve the most tail requests.
#[must_use]
pub fn tail_report(label: &str, records: &[TraceRecord], top: usize) -> String {
    let reads = winning_reads(records);
    let mut out = String::new();
    let _ = writeln!(out, "## Tail attribution: {label}");
    if reads.is_empty() {
        let _ = writeln!(out, "   (no winning reads in trace)");
        return out;
    }
    let mut h = Histogram::new();
    for r in &reads {
        h.record_nanos(r.e2e_ns);
    }
    let p99 = h.percentile(99.0).as_nanos();
    let tail: Vec<&&TraceRecord> = reads.iter().filter(|r| r.e2e_ns >= p99).collect();
    let _ = writeln!(
        out,
        "   p99 = {} · {} requests at or above it",
        fmt_dur(SimDuration::from_nanos(p99)),
        tail.len()
    );
    let tail_e2e: u128 = tail.iter().map(|r| u128::from(r.e2e_ns)).sum();
    if tail_e2e > 0 {
        let _ = writeln!(out, "   phase shares of tail time:");
        for (phase, extract) in PHASES {
            let spent: u128 = tail.iter().map(|r| u128::from(extract(r))).sum();
            let share = spent as f64 / tail_e2e as f64 * 100.0;
            let _ = writeln!(out, "     {phase:<14} {share:5.1}%");
        }
    }
    let mut by_server: Vec<(u32, u64)> = Vec::new();
    for r in &tail {
        match by_server.iter_mut().find(|(s, _)| *s == r.server) {
            Some((_, n)) => *n += 1,
            None => by_server.push((r.server, 1)),
        }
    }
    by_server.sort_by_key(|&(s, n)| (std::cmp::Reverse(n), s));
    let _ = writeln!(out, "   top tail servers (server · tail requests):");
    for (server, n) in by_server.iter().take(top) {
        let _ = writeln!(out, "     server:{server:<8} {n}");
    }
    out
}

fn link_source(dev: &str) -> Option<&str> {
    dev.strip_prefix("link:")?.split('>').next()
}

/// Renders the device hotspot tables: busiest devices per kind, per-tier
/// traffic totals, and ECMP skew (how unevenly an endpoint's outgoing
/// links are loaded).
#[must_use]
pub fn hotspot_report(devices: &[DeviceRecord], top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Device hotspots");

    // Per-tier traffic totals across all devices that forward traffic.
    let mut tier_packets = [0u64; 3];
    let mut tier_bytes = [0u64; 3];
    for d in devices.iter().filter(|d| d.kind == "link") {
        for t in 0..3 {
            tier_packets[t] += d.packets[t];
            tier_bytes[t] += d.bytes[t];
        }
    }
    let _ = writeln!(out, "   link traffic per tier (packets · bytes):");
    for t in 0..3 {
        let _ = writeln!(
            out,
            "     Tier-{t}          {:>12} · {:>12}",
            tier_packets[t], tier_bytes[t]
        );
    }

    for (kind, plural) in [
        ("switch", "switches"),
        ("accel", "accelerators"),
        ("server", "servers"),
        ("link", "links"),
    ] {
        let mut of_kind: Vec<&DeviceRecord> = devices.iter().filter(|d| d.kind == kind).collect();
        if of_kind.is_empty() {
            continue;
        }
        of_kind.sort_by(|a, b| {
            b.utilization
                .total_cmp(&a.utilization)
                .then_with(|| b.total_packets().cmp(&a.total_packets()))
                .then_with(|| a.dev.cmp(&b.dev))
        });
        let _ = writeln!(
            out,
            "   top {plural} (device · util · packets · ops/selections · max queue):"
        );
        for d in of_kind.iter().take(top) {
            let work = if kind == "accel" { d.selections } else { d.ops };
            let _ = writeln!(
                out,
                "     {:<14} {:6.2}% {:>10} {:>8} {:>6}",
                d.dev,
                d.utilization * 100.0,
                d.total_packets(),
                work,
                d.max_queue_depth
            );
        }
    }

    // ECMP skew: group directed links by source endpoint; endpoints with
    // several outgoing links (hosts have one) show hash imbalance as
    // max/mean packet ratio.
    let mut groups: Vec<(&str, Vec<u64>)> = Vec::new();
    for d in devices.iter().filter(|d| d.kind == "link") {
        if let Some(src) = link_source(&d.dev) {
            match groups.iter_mut().find(|(s, _)| *s == src) {
                Some((_, counts)) => counts.push(d.total_packets()),
                None => groups.push((src, vec![d.total_packets()])),
            }
        }
    }
    let mut skews: Vec<(&str, usize, f64)> = groups
        .iter()
        .filter(|(_, c)| c.len() > 1 && c.iter().sum::<u64>() > 0)
        .map(|(src, counts)| {
            let max = *counts.iter().max().unwrap() as f64;
            let mean = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
            (*src, counts.len(), max / mean)
        })
        .collect();
    skews.sort_by(|a, b| b.2.total_cmp(&a.2).then_with(|| a.0.cmp(b.0)));
    let _ = writeln!(
        out,
        "   ECMP skew (endpoint · outgoing links · max/mean packets):"
    );
    for (src, fanout, skew) in skews.iter().take(top) {
        let _ = writeln!(out, "     {src:<8} {fanout:>3} {skew:8.3}");
    }
    out
}

/// Renders a short summary of a `--timeseries` file: sample count, span,
/// and the peak / mean of each sampled series.
#[must_use]
pub fn timeseries_report(points: &[SamplePoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Time series");
    if points.is_empty() {
        let _ = writeln!(out, "   (no samples)");
        return out;
    }
    let span = points.last().unwrap().t_ns - points.first().unwrap().t_ns;
    let _ = writeln!(
        out,
        "   {} samples over {}",
        points.len(),
        fmt_dur(SimDuration::from_nanos(span))
    );
    type SeriesPick = fn(&SamplePoint) -> f64;
    let series: [(&str, SeriesPick); 4] = [
        ("accel util", |p| p.accel_util),
        ("server occupancy", |p| p.server_occupancy),
        ("outstanding", |p| p.outstanding),
        ("DRS groups", |p| p.drs_groups),
    ];
    for (name, pick) in series {
        let mean = points.iter().map(pick).sum::<f64>() / points.len() as f64;
        let peak = points.iter().map(pick).fold(f64::MIN, f64::max);
        let _ = writeln!(out, "   {name:<18} mean {mean:8.3} · peak {peak:8.3}");
    }
    out
}

/// Loads a `simulate --json` stats file (one [`RunStats`] JSON object).
///
/// # Errors
///
/// Returns the underlying I/O error, or [`io::ErrorKind::InvalidData`]
/// when the file is not a stats JSON.
pub fn load_stats(path: &str) -> io::Result<RunStats> {
    let text = std::fs::read_to_string(path)?;
    serde_json::from_str(&text)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{path}: {e}")))
}

/// Renders the per-run availability table: timeout rate, retries,
/// dropped copies, the p99 of the failed window and the time back to the
/// steady-state latency band, one row per labeled stats file. Runs
/// without a fault plan report as fault-free.
#[must_use]
pub fn availability_report(entries: &[(String, RunStats)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Availability under faults");
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>9} {:>12} {:>8} {:>9} {:>12} {:>12}",
        "label",
        "issued",
        "timeouts",
        "timeout-rate",
        "retries",
        "dropped",
        "failed-p99",
        "recover"
    );
    for (label, stats) in entries {
        match stats.availability.as_ref() {
            Some(a) => {
                let rate = if stats.issued > 0 {
                    a.timeouts as f64 / stats.issued as f64 * 100.0
                } else {
                    0.0
                };
                let recover = a
                    .time_to_recover
                    .map_or_else(|| "never".to_string(), |t| t.to_string());
                let _ = writeln!(
                    out,
                    "{label:<14} {:>8} {:>9} {:>11.3}% {:>8} {:>9} {:>12} {:>12}",
                    stats.issued,
                    a.timeouts,
                    rate,
                    a.retries,
                    a.copies_dropped,
                    fmt_dur(a.failed_window_p99),
                    recover
                );
            }
            None => {
                let _ = writeln!(out, "{label:<14} {:>8} (fault-free run)", stats.issued);
            }
        }
    }
    out
}

/// The keys every per-label bench entry must carry, in artifact order.
pub const BENCH_KEYS: [&str; 7] = [
    "mean_ns",
    "p50_ns",
    "p95_ns",
    "p99_ns",
    "requests",
    "sim_seconds",
    "requests_per_sim_sec",
];

/// The keys every per-label *perf* entry must carry (wall-clock runs of
/// the `repro perf` subcommand, as opposed to sim-time latency entries).
/// An entry is classified as perf by the presence of `"wall_clock_s"`.
pub const PERF_KEYS: [&str; 4] = ["events", "events_per_sec", "peak_rss_kb", "wall_clock_s"];

/// Builds the bench regression artifact: one entry per labeled trace
/// with the e2e latency statistics over winning reads plus throughput
/// derived from the trace's time span.
#[must_use]
pub fn bench_artifact(traces: &[LabeledTrace]) -> Value {
    let entries = traces
        .iter()
        .map(|t| {
            let reads = winning_reads(&t.records);
            let s = summarize(&reads, |r| r.e2e_ns);
            let end_ns = t.records.iter().map(|r| r.received_ns).max().unwrap_or(0);
            let sim_seconds = end_ns as f64 / 1e9;
            let rps = if sim_seconds > 0.0 {
                s.count as f64 / sim_seconds
            } else {
                0.0
            };
            let entry = Value::Obj(vec![
                ("mean_ns".into(), Value::U(u128::from(s.mean.as_nanos()))),
                ("p50_ns".into(), Value::U(u128::from(s.p50.as_nanos()))),
                ("p95_ns".into(), Value::U(u128::from(s.p95.as_nanos()))),
                ("p99_ns".into(), Value::U(u128::from(s.p99.as_nanos()))),
                ("requests".into(), Value::U(u128::from(s.count))),
                ("sim_seconds".into(), Value::F(sim_seconds)),
                ("requests_per_sim_sec".into(), Value::F(rps)),
            ]);
            (t.label.clone(), entry)
        })
        .collect();
    Value::Obj(entries)
}

/// Validates a bench artifact: a non-empty object whose every entry
/// carries all of [`BENCH_KEYS`] (sim-time latency entries) or all of
/// [`PERF_KEYS`] (wall-clock perf entries, recognized by the presence of
/// `"wall_clock_s"`) as numbers. The two kinds may be mixed within one
/// artifact, but an entry must be exactly one of them.
///
/// # Errors
///
/// Returns a description of the first violation found.
pub fn check_bench(artifact: &Value) -> Result<(), String> {
    let entries = artifact
        .as_obj()
        .ok_or_else(|| "bench artifact must be a JSON object".to_string())?;
    if entries.is_empty() {
        return Err("bench artifact has no entries".to_string());
    }
    for (label, entry) in entries {
        let fields = entry
            .as_obj()
            .ok_or_else(|| format!("entry {label:?} must be an object"))?;
        let keys: &[&str] = if entry.get("wall_clock_s").is_some() {
            &PERF_KEYS
        } else {
            &BENCH_KEYS
        };
        for &key in keys {
            match entry.get(key) {
                Some(Value::U(_) | Value::I(_) | Value::F(_)) => {}
                Some(other) => {
                    return Err(format!(
                        "entry {label:?} key {key:?} is not a number: {other:?}"
                    ))
                }
                None => return Err(format!("entry {label:?} is missing key {key:?}")),
            }
        }
        for (key, _) in fields {
            if !keys.contains(&key.as_str()) {
                return Err(format!("entry {label:?} has unknown key {key:?}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(req: u64, server: u32, e2e: u64) -> TraceRecord {
        // Split e2e across phases so shares and sums are non-trivial.
        let part = e2e / 6;
        TraceRecord {
            req,
            server,
            first: true,
            write: false,
            issued_ns: 1_000,
            received_ns: 1_000 + e2e,
            steer_ns: part,
            selection_ns: part,
            selection_wait_ns: part / 2,
            to_server_ns: part,
            server_queue_ns: part,
            service_ns: part,
            reply_ns: e2e - 5 * part,
            e2e_ns: e2e,
            hops: Vec::new(),
        }
    }

    fn trace(label: &str, e2es: &[u64]) -> LabeledTrace {
        LabeledTrace {
            label: label.to_string(),
            records: e2es
                .iter()
                .enumerate()
                .map(|(i, &e)| record(i as u64, (i % 3) as u32, e))
                .collect(),
        }
    }

    #[test]
    fn split_label_prefers_explicit_label() {
        // Scheme-name labels canonicalize to the paper spelling.
        assert_eq!(
            split_label("clirs=/tmp/a.jsonl"),
            ("CliRS".into(), "/tmp/a.jsonl")
        );
        assert_eq!(
            split_label("/tmp/netrs-ilp.jsonl"),
            ("NetRS-ILP".into(), "/tmp/netrs-ilp.jsonl")
        );
        // Non-scheme labels pass through untouched.
        assert_eq!(
            split_label("baseline=/tmp/b.jsonl"),
            ("baseline".into(), "/tmp/b.jsonl")
        );
        assert_eq!(
            split_label("/tmp/run-42.jsonl"),
            ("run-42".into(), "/tmp/run-42.jsonl")
        );
        // A path containing '=' only in a directory name is not a label.
        assert_eq!(split_label("/tmp/x=y/t.jsonl").1, "/tmp/x=y/t.jsonl");
    }

    #[test]
    fn winning_reads_filters_losers_and_writes() {
        let mut records = vec![record(0, 0, 600)];
        let mut loser = record(0, 1, 900);
        loser.first = false;
        let mut write = record(1, 0, 600);
        write.write = true;
        records.push(loser);
        records.push(write);
        assert_eq!(winning_reads(&records).len(), 1);
    }

    #[test]
    fn comparison_report_lists_all_labels_and_phases() {
        let traces = vec![
            trace("clirs", &[600, 1_200, 2_400]),
            trace("netrs-ilp", &[300, 600, 900]),
        ];
        let report = comparison_report(&traces);
        for needle in ["clirs", "netrs-ilp", "mean", "median", "p95", "p99", "e2e"] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
        for (phase, _) in PHASES {
            assert!(report.contains(phase), "missing phase {phase:?}");
        }
    }

    #[test]
    fn tail_report_attributes_full_tail_time() {
        let t = trace("x", &[600, 600, 600, 600, 60_000]);
        let report = tail_report("x", &t.records, 5);
        assert!(report.contains("phase shares"));
        assert!(report.contains("server:"), "top servers listed:\n{report}");
        // The slowest request defines the tail; its phases sum to its
        // e2e, so the printed shares must sum to ~100%.
        let total: f64 = report
            .lines()
            .filter_map(|l| l.trim().strip_suffix('%'))
            .filter_map(|l| l.rsplit(' ').next())
            .filter_map(|n| n.parse::<f64>().ok())
            .sum();
        assert!((total - 100.0).abs() < 0.5, "shares sum to {total}");
    }

    #[test]
    fn link_source_parses_device_keys() {
        assert_eq!(link_source("link:h3>s0"), Some("h3"));
        assert_eq!(link_source("link:s12>h40"), Some("s12"));
        assert_eq!(link_source("server:3"), None);
    }

    #[test]
    fn bench_artifact_round_trips_and_validates() {
        let traces = vec![trace("clirs", &[600, 1_200]), trace("ilp", &[300])];
        let artifact = bench_artifact(&traces);
        check_bench(&artifact).expect("generated artifact is valid");
        let text = serde_json::to_string_pretty(&artifact).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        check_bench(&back).expect("artifact survives a round trip");
        let clirs = back.get("clirs").expect("labels are keys");
        assert_eq!(clirs.get("requests"), Some(&Value::U(2)));
    }

    #[test]
    fn availability_report_pins_its_format() {
        use netrs_sim::AvailabilityStats;
        use netrs_simcore::SimTime;

        fn stats(issued: u64, avail: Option<AvailabilityStats>) -> RunStats {
            RunStats {
                scheme: Scheme::CliRs,
                latency: Summary::default(),
                breakdown: Default::default(),
                issued,
                completed: issued,
                duplicates: 0,
                rsnode_count: 0,
                rsnode_census: [0, 0, 0],
                drs_groups: 0,
                mean_accel_utilization: 0.0,
                max_accel_utilization: 0.0,
                mean_selection_wait: SimDuration::ZERO,
                mean_server_utilization: 0.0,
                replans: 0,
                writes_issued: 0,
                write_latency: Summary::default(),
                overload_events: 0,
                sim_end: SimTime::ZERO,
                events: 0,
                availability: avail,
            }
        }

        let entries = vec![
            (
                "CliRS".to_string(),
                stats(
                    8_000,
                    Some(AvailabilityStats {
                        faults_injected: 1,
                        timeouts: 40,
                        retries: 120,
                        duplicate_drops: 3,
                        copies_dropped: 160,
                        failed_window_p99: SimDuration::from_micros(11_534),
                        time_to_recover: Some(SimDuration::from_micros(20_022)),
                    }),
                ),
            ),
            (
                "NetRS-ToR".to_string(),
                stats(
                    8_000,
                    Some(AvailabilityStats {
                        faults_injected: 1,
                        timeouts: 0,
                        retries: 9,
                        duplicate_drops: 0,
                        copies_dropped: 9,
                        failed_window_p99: SimDuration::from_micros(2_100),
                        time_to_recover: None,
                    }),
                ),
            ),
            ("baseline".to_string(), stats(8_000, None)),
        ];
        let expected = "\
## Availability under faults
label            issued  timeouts timeout-rate  retries   dropped   failed-p99      recover
CliRS              8000        40       0.500%      120       160     11.534ms     20.022ms
NetRS-ToR          8000         0       0.000%        9         9      2.100ms        never
baseline           8000 (fault-free run)
";
        assert_eq!(availability_report(&entries), expected);
    }

    #[test]
    fn check_bench_rejects_malformed_artifacts() {
        assert!(check_bench(&Value::Arr(vec![])).is_err());
        assert!(check_bench(&Value::Obj(vec![])).is_err());
        let missing = Value::Obj(vec![(
            "x".into(),
            Value::Obj(vec![("mean_ns".into(), Value::U(1))]),
        )]);
        assert!(check_bench(&missing).unwrap_err().contains("missing"));
        let extra_entries: Vec<(String, Value)> = BENCH_KEYS
            .iter()
            .map(|k| ((*k).to_string(), Value::U(1)))
            .chain([("bogus".to_string(), Value::U(1))])
            .collect();
        let extra = Value::Obj(vec![("x".into(), Value::Obj(extra_entries))]);
        assert!(check_bench(&extra).unwrap_err().contains("unknown key"));
        let wrong_type: Vec<(String, Value)> = BENCH_KEYS
            .iter()
            .map(|k| ((*k).to_string(), Value::Str("nope".into())))
            .collect();
        let wrong = Value::Obj(vec![("x".into(), Value::Obj(wrong_type))]);
        assert!(check_bench(&wrong).unwrap_err().contains("not a number"));
    }

    #[test]
    fn check_bench_accepts_and_polices_perf_entries() {
        let perf_entry = |extra: Option<(&str, Value)>| {
            let fields: Vec<(String, Value)> = PERF_KEYS
                .iter()
                .map(|k| ((*k).to_string(), Value::F(1.5)))
                .chain(extra.map(|(k, v)| (k.to_string(), v)))
                .collect();
            Value::Obj(fields)
        };
        // A pure perf artifact validates.
        let ok = Value::Obj(vec![("before/CliRS".into(), perf_entry(None))]);
        check_bench(&ok).expect("perf entries validate");
        // Perf and sim-time entries can coexist in one artifact.
        let bench_fields: Vec<(String, Value)> = BENCH_KEYS
            .iter()
            .map(|k| ((*k).to_string(), Value::U(1)))
            .collect();
        let mixed = Value::Obj(vec![
            ("after/CliRS".into(), perf_entry(None)),
            ("clirs".into(), Value::Obj(bench_fields)),
        ]);
        check_bench(&mixed).expect("mixed artifacts validate");
        // Perf entries are policed against PERF_KEYS, not BENCH_KEYS.
        let extra = Value::Obj(vec![(
            "x".into(),
            perf_entry(Some(("mean_ns", Value::U(1)))),
        )]);
        assert!(check_bench(&extra).unwrap_err().contains("unknown key"));
        let missing = Value::Obj(vec![(
            "x".into(),
            Value::Obj(vec![("wall_clock_s".into(), Value::F(1.0))]),
        )]);
        assert!(check_bench(&missing).unwrap_err().contains("missing"));
    }
}
