//! `netrs-analyze` — turn `simulate` JSONL artifacts into reports.
//!
//! ```text
//! # compare two schemes, emit a regression artifact
//! simulate --scheme clirs --trace clirs.jsonl --trace-hops --devices clirs-dev.jsonl
//! simulate --scheme netrs-ilp --trace ilp.jsonl --trace-hops --devices ilp-dev.jsonl
//! netrs-analyze report --trace clirs=clirs.jsonl --trace netrs-ilp=ilp.jsonl \
//!     --devices ilp-dev.jsonl --bench-json bench.json
//!
//! # gate CI on the artifact's shape
//! netrs-analyze check-bench bench.json
//! ```

use std::io::Write;

use netrs_analyze::{
    availability_report, bench_artifact, check_bench, compare_bench, comparison_report,
    control_report, hotspot_report, load_control, load_devices, load_stats, load_sweep,
    load_timeseries, load_trace, parallel_gate, perf_report, rw_report, split_label, sweep_report,
    tail_report, timeseries_report, BenchSchema, LabeledTrace,
};
use netrs_sim::PerfArtifact;
use serde::Value;

fn usage() -> ! {
    eprintln!(
        "usage: netrs-analyze report --trace [LABEL=]FILE [--trace [LABEL=]FILE ...] \
         [--devices FILE] [--timeseries FILE] [--bench-json OUT] [--top N]\n\
         \x20      netrs-analyze control [LABEL=]FILE [[LABEL=]FILE ...]\n\
         \x20      netrs-analyze availability --stats [LABEL=]FILE [--stats [LABEL=]FILE ...]\n\
         \x20      netrs-analyze rw --stats [LABEL=]FILE [--stats [LABEL=]FILE ...] [--devices FILE]\n\
         \x20      netrs-analyze perf [LABEL=]FILE [[LABEL=]FILE ...]\n\
         \x20      netrs-analyze sweep FILE\n\
         \x20      netrs-analyze check-bench FILE [BASELINE] [--threshold F]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("netrs-analyze: {msg}");
    std::process::exit(1);
}

fn report(args: &[String]) {
    let mut traces: Vec<LabeledTrace> = Vec::new();
    let mut devices_path: Option<String> = None;
    let mut timeseries_path: Option<String> = None;
    let mut bench_path: Option<String> = None;
    let mut top = 10usize;

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let mut next = || {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--trace" => {
                let spec = next();
                let (label, path) = split_label(&spec);
                let records =
                    load_trace(path).unwrap_or_else(|e| fail(&format!("cannot load {path}: {e}")));
                traces.push(LabeledTrace { label, records });
            }
            "--devices" => devices_path = Some(next()),
            "--timeseries" => timeseries_path = Some(next()),
            "--bench-json" => bench_path = Some(next()),
            "--top" => top = next().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
        i += 1;
    }
    if traces.is_empty() {
        usage();
    }

    print!("{}", comparison_report(&traces));
    for t in &traces {
        println!();
        print!("{}", tail_report(&t.label, &t.records, top));
    }
    if let Some(path) = devices_path.as_deref() {
        let devices =
            load_devices(path).unwrap_or_else(|e| fail(&format!("cannot load {path}: {e}")));
        println!();
        print!("{}", hotspot_report(&devices, top));
    }
    if let Some(path) = timeseries_path.as_deref() {
        let points =
            load_timeseries(path).unwrap_or_else(|e| fail(&format!("cannot load {path}: {e}")));
        println!();
        print!("{}", timeseries_report(&points));
    }
    if let Some(path) = bench_path.as_deref() {
        let artifact = bench_artifact(&traces);
        let _ = check_bench(&artifact)
            .unwrap_or_else(|e| fail(&format!("generated artifact invalid: {e}")));
        let text = serde_json::to_string_pretty(&artifact).expect("artifact serializes");
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}")));
        writeln!(f, "{text}").unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}")));
        println!();
        println!("## Bench artifact");
        println!("   wrote {} ({} entries)", path, traces.len());
    }
}

fn availability(args: &[String]) {
    let mut entries = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats" => {
                i += 1;
                let spec = args.get(i).cloned().unwrap_or_else(|| usage());
                let (label, path) = split_label(&spec);
                let stats =
                    load_stats(path).unwrap_or_else(|e| fail(&format!("cannot load {path}: {e}")));
                entries.push((label, stats));
            }
            _ => usage(),
        }
        i += 1;
    }
    if entries.is_empty() {
        usage();
    }
    print!("{}", availability_report(&entries));
}

fn rw(args: &[String]) {
    let mut entries = Vec::new();
    let mut devices = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stats" => {
                i += 1;
                let spec = args.get(i).cloned().unwrap_or_else(|| usage());
                let (label, path) = split_label(&spec);
                let stats =
                    load_stats(path).unwrap_or_else(|e| fail(&format!("cannot load {path}: {e}")));
                entries.push((label, stats));
            }
            "--devices" => {
                i += 1;
                let path = args.get(i).cloned().unwrap_or_else(|| usage());
                devices = load_devices(&path)
                    .unwrap_or_else(|e| fail(&format!("cannot load {path}: {e}")));
            }
            _ => usage(),
        }
        i += 1;
    }
    if entries.is_empty() {
        usage();
    }
    print!("{}", rw_report(&entries, &devices));
}

fn control(args: &[String]) {
    let mut entries = Vec::new();
    for spec in args {
        let (label, path) = split_label(spec);
        let records =
            load_control(path).unwrap_or_else(|e| fail(&format!("cannot load {path}: {e}")));
        entries.push((label, records));
    }
    if entries.is_empty() {
        usage();
    }
    print!("{}", control_report(&entries));
}

/// `perf FILE [FILE...]` renders the host-perf report for one or more
/// perf artifacts (versioned, bare `simulate --perf` profiles, or legacy
/// flat maps — the latter upgrade in memory and show as history rows).
fn perf(args: &[String]) {
    let mut entries = Vec::new();
    for spec in args {
        let (label, path) = split_label(spec);
        let v = load_artifact(path);
        let art = PerfArtifact::from_value(&v).unwrap_or_else(|e| fail(&format!("{path}: {e}")));
        entries.push((label, art));
    }
    if entries.is_empty() {
        usage();
    }
    print!("{}", perf_report(&entries));
}

/// `sweep FILE` renders the merged (config × seed) sweep artifact
/// written by `simulate sweep`.
fn sweep(args: &[String]) {
    let [path] = args else { usage() };
    let report = load_sweep(path).unwrap_or_else(|e| fail(&format!("cannot load {path}: {e}")));
    print!("{}", sweep_report(&report));
}

fn load_artifact(path: &str) -> Value {
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    serde_json::from_str(&text).unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")))
}

/// `check-bench FILE` validates the artifact's shape; `check-bench FILE
/// BASELINE` additionally compares it against the baseline and fails on
/// throughput regressions beyond `--threshold` (default 10%).
fn check_bench_cmd(args: &[String]) {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = 0.1f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
                if !(0.0..1.0).contains(&threshold) {
                    fail("--threshold must be a fraction in [0, 1)");
                }
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            _ => usage(),
        }
        i += 1;
    }
    let (path, baseline) = match paths.as_slice() {
        [path] => (path.clone(), None),
        [path, base] => (path.clone(), Some(base.clone())),
        _ => usage(),
    };
    let artifact = load_artifact(&path);
    match check_bench(&artifact) {
        Ok(schema) => {
            let n = match schema {
                BenchSchema::Legacy => artifact.as_obj().map_or(0, <[_]>::len),
                BenchSchema::V1 => PerfArtifact::from_value(&artifact).map_or(0, |a| a.runs.len()),
            };
            println!("{path}: valid bench artifact ({n} entries, {schema})");
            if let BenchSchema::V1 = schema {
                // The sharded-parallel suite carries its own intra-file
                // gate: 1-shard/1-thread dispatch vs the sequential
                // baseline row.
                if let Ok(art) = PerfArtifact::from_value(&artifact) {
                    match parallel_gate(&art, threshold) {
                        Ok(Some(line)) => print!("{line}"),
                        Ok(None) => {}
                        Err(e) => fail(&format!("{path}: {e}")),
                    }
                }
            }
        }
        Err(e) => fail(&format!("{path}: {e}")),
    }
    if let Some(base_path) = baseline {
        let base = load_artifact(&base_path);
        let cmp = compare_bench(&base, &artifact, threshold)
            .unwrap_or_else(|e| fail(&format!("{base_path} vs {path}: {e}")));
        print!("{}", cmp.report);
        if !cmp.regressions.is_empty() {
            for r in &cmp.regressions {
                eprintln!("netrs-analyze: regression: {r}");
            }
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("report") => report(&args[1..]),
        Some("control") => control(&args[1..]),
        Some("availability") => availability(&args[1..]),
        Some("rw") => rw(&args[1..]),
        Some("perf") => perf(&args[1..]),
        Some("sweep") => sweep(&args[1..]),
        Some("check-bench") => check_bench_cmd(&args[1..]),
        _ => usage(),
    }
}
