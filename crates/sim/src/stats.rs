//! Run statistics: what one simulated experiment reports.

use netrs_faults::AvailabilityStats;
use netrs_simcore::{SimDuration, SimTime, Summary};
use serde::{DeError, Deserialize, Serialize, Value};

use crate::config::Scheme;

/// Where response latency accrues, phase by phase, over post-warmup
/// first-completion reads — the decomposition behind the paper's Fig. 7/9
/// panels (client-side selection vs. in-network selection wait vs. server
/// queueing).
///
/// Each request's phases are differences of consecutive event timestamps
/// along the winning copy's path, so per request they sum exactly to the
/// end-to-end latency; the per-phase [`Summary`] means therefore sum to
/// the end-to-end mean up to integer-division rounding.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Requests decomposed (equals `latency.count`).
    pub count: u64,
    /// Network propagation: client → selection point → server → client.
    pub network: Summary,
    /// Replica selection: the accelerator's half-RTT + queue wait +
    /// processing + half-RTT in-network, or the client-side hold (rate
    /// gating, duplicate timers) for client schemes.
    pub selection: Summary,
    /// Time queued at the server before a slot freed up.
    pub server_queue: Summary,
    /// Service time at the server.
    pub service: Summary,
}

/// Read/write-mix outcome: write commits and aggregate hot-key-cache
/// counters. Present only on runs that opted into the extension (a
/// per-operator cache, or a non-default write-consistency mode), and
/// omitted — not `null` — from the JSON otherwise, so read-only stats
/// files stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RwStats {
    /// Writes acknowledged under the configured consistency mode.
    pub writes_completed: u64,
    /// Reads served directly from an RSNode's hot-key cache.
    pub cache_hits: u64,
    /// Cache lookups that fell through to replica selection.
    pub cache_misses: u64,
    /// Cache hits whose version lagged the store's committed one (a
    /// coherence message was lost or still in flight).
    pub stale_reads: u64,
    /// Cache entries displaced by capacity pressure.
    pub cache_evictions: u64,
    /// Coherence messages that found a cached entry to remove/refresh.
    pub cache_invalidations: u64,
}

/// Sharded/parallel execution outcome: the conservative-window driver's
/// schedule-level accounting. Present only on multi-shard runs and
/// omitted — not `null` — otherwise, so single-shard stats files stay
/// byte-identical to the sequential engine's.
///
/// Deliberately **schedule-deterministic**: it never records the thread
/// count or any wall-clock quantity, so the same run at `--threads 1`
/// and `--threads N` serializes byte-identically (the acceptance
/// invariant). Wall-clock facts (speedup, busy-time imbalance) belong in
/// the heartbeat and the perf artifact instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ParallelStats {
    /// Event shards the run was partitioned into.
    pub shards: u32,
    /// Conservative windows the driver advanced through (0 when the
    /// driver does not count windows).
    pub windows: u64,
    /// Cross-shard events posted through the mailbox/merge.
    pub mailbox_posted: u64,
    /// Cross-shard events that arrived past the destination clock and
    /// were clamped (lookahead-contract violations; always 0 at the
    /// default 1× lookahead).
    pub mailbox_late: u64,
}

impl ParallelStats {
    /// Mean in-window events per barrier round.
    #[must_use]
    pub fn events_per_window(&self, events: u64) -> f64 {
        if self.windows == 0 {
            0.0
        } else {
            events as f64 / self.windows as f64
        }
    }
}

/// The results of one simulation run.
///
/// Serialization is hand-written (not derived) so the optional
/// [`availability`](RunStats::availability) block is *omitted* for
/// fault-free runs rather than emitted as `null`: stats JSON from before
/// the fault subsystem existed — including the pinned golden fixtures —
/// stays byte-identical.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// The scheme that ran.
    pub scheme: Scheme,
    /// End-to-end response-latency statistics over post-warmup requests
    /// (the paper's Avg / 95th / 99th / 99.9th panels).
    pub latency: Summary,
    /// Per-phase latency decomposition of the same requests.
    pub breakdown: LatencyBreakdown,
    /// Logical requests issued.
    pub issued: u64,
    /// Logical requests completed.
    pub completed: u64,
    /// Redundant copies sent (CliRS-R95 only).
    pub duplicates: u64,
    /// RSNodes in the final plan (0 for client schemes).
    pub rsnode_count: usize,
    /// RSNodes per tier `[core, agg, tor]`.
    pub rsnode_census: [usize; 3],
    /// Traffic groups under Degraded Replica Selection at the end.
    pub drs_groups: usize,
    /// Mean accelerator core utilization across operators.
    pub mean_accel_utilization: f64,
    /// Maximum accelerator core utilization across operators.
    pub max_accel_utilization: f64,
    /// Mean queueing wait of replica selections at accelerators.
    pub mean_selection_wait: SimDuration,
    /// Mean storage-server slot utilization.
    pub mean_server_utilization: f64,
    /// Controller re-plans performed (monitored plan source).
    pub replans: u64,
    /// Write requests issued (the read/write-mix extension).
    pub writes_issued: u64,
    /// Write-latency statistics (last-replica completion).
    pub write_latency: Summary,
    /// Operators degraded for overload (§III-C(ii)).
    pub overload_events: u64,
    /// Simulated time at drain.
    pub sim_end: SimTime,
    /// Discrete events processed.
    pub events: u64,
    /// Availability outcome under the run's fault plan; `None` (and
    /// absent from the JSON) for fault-free runs.
    pub availability: Option<AvailabilityStats>,
    /// Read/write-mix outcome; `None` (and absent from the JSON) unless
    /// the run enabled a hot-key cache or a non-default consistency
    /// mode.
    pub rw: Option<RwStats>,
    /// Sharded/parallel window accounting; `None` (and absent from the
    /// JSON) for single-shard runs.
    pub parallel: Option<ParallelStats>,
}

impl Serialize for RunStats {
    fn ser(&self) -> Value {
        let mut o: Vec<(String, Value)> = vec![
            ("scheme".into(), self.scheme.ser()),
            ("latency".into(), self.latency.ser()),
            ("breakdown".into(), self.breakdown.ser()),
            ("issued".into(), self.issued.ser()),
            ("completed".into(), self.completed.ser()),
            ("duplicates".into(), self.duplicates.ser()),
            ("rsnode_count".into(), self.rsnode_count.ser()),
            ("rsnode_census".into(), self.rsnode_census.ser()),
            ("drs_groups".into(), self.drs_groups.ser()),
            (
                "mean_accel_utilization".into(),
                self.mean_accel_utilization.ser(),
            ),
            (
                "max_accel_utilization".into(),
                self.max_accel_utilization.ser(),
            ),
            ("mean_selection_wait".into(), self.mean_selection_wait.ser()),
            (
                "mean_server_utilization".into(),
                self.mean_server_utilization.ser(),
            ),
            ("replans".into(), self.replans.ser()),
            ("writes_issued".into(), self.writes_issued.ser()),
            ("write_latency".into(), self.write_latency.ser()),
            ("overload_events".into(), self.overload_events.ser()),
            ("sim_end".into(), self.sim_end.ser()),
            ("events".into(), self.events.ser()),
        ];
        if let Some(a) = &self.availability {
            o.push(("availability".into(), a.ser()));
        }
        if let Some(rw) = &self.rw {
            o.push(("rw".into(), rw.ser()));
        }
        if let Some(p) = &self.parallel {
            o.push(("parallel".into(), p.ser()));
        }
        Value::Obj(o)
    }
}

impl Deserialize for RunStats {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for RunStats"))?;
        fn req<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
            serde::field(entries, name, "RunStats")
        }
        Ok(RunStats {
            scheme: req(entries, "scheme").and_then(Scheme::deser)?,
            latency: req(entries, "latency").and_then(Summary::deser)?,
            breakdown: req(entries, "breakdown").and_then(LatencyBreakdown::deser)?,
            issued: req(entries, "issued").and_then(u64::deser)?,
            completed: req(entries, "completed").and_then(u64::deser)?,
            duplicates: req(entries, "duplicates").and_then(u64::deser)?,
            rsnode_count: req(entries, "rsnode_count").and_then(usize::deser)?,
            rsnode_census: req(entries, "rsnode_census").and_then(<[usize; 3]>::deser)?,
            drs_groups: req(entries, "drs_groups").and_then(usize::deser)?,
            mean_accel_utilization: req(entries, "mean_accel_utilization").and_then(f64::deser)?,
            max_accel_utilization: req(entries, "max_accel_utilization").and_then(f64::deser)?,
            mean_selection_wait: req(entries, "mean_selection_wait")
                .and_then(SimDuration::deser)?,
            mean_server_utilization: req(entries, "mean_server_utilization")
                .and_then(f64::deser)?,
            replans: req(entries, "replans").and_then(u64::deser)?,
            writes_issued: req(entries, "writes_issued").and_then(u64::deser)?,
            write_latency: req(entries, "write_latency").and_then(Summary::deser)?,
            overload_events: req(entries, "overload_events").and_then(u64::deser)?,
            sim_end: req(entries, "sim_end").and_then(SimTime::deser)?,
            events: req(entries, "events").and_then(u64::deser)?,
            // Absent for fault-free runs (and in pre-fault-subsystem
            // files).
            availability: match v.get("availability") {
                Some(a) => Some(AvailabilityStats::deser(a)?),
                None => None,
            },
            // Absent unless the run enabled the read/write extension.
            rw: match v.get("rw") {
                Some(r) => Some(RwStats::deser(r)?),
                None => None,
            },
            // Absent for single-shard runs (and in older files).
            parallel: match v.get("parallel") {
                Some(p) => Some(ParallelStats::deser(p)?),
                None => None,
            },
        })
    }
}

impl RunStats {
    /// Merges latency summaries across seeds by averaging each reported
    /// statistic (the paper plots the mean of repeated runs).
    #[must_use]
    pub fn mean_of(runs: &[RunStats]) -> MeanStats {
        assert!(!runs.is_empty(), "need at least one run");
        let n = runs.len() as f64;
        let avg = |f: fn(&RunStats) -> f64| runs.iter().map(f).sum::<f64>() / n;
        MeanStats {
            scheme: runs[0].scheme,
            runs: runs.len(),
            mean_ms: avg(|r| r.latency.mean.as_millis_f64()),
            p95_ms: avg(|r| r.latency.p95.as_millis_f64()),
            p99_ms: avg(|r| r.latency.p99.as_millis_f64()),
            p999_ms: avg(|r| r.latency.p999.as_millis_f64()),
            rsnodes: avg(|r| r.rsnode_count as f64),
            duplicates: avg(|r| r.duplicates as f64),
        }
    }
}

/// Seed-averaged statistics for one (scheme, sweep-point) cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MeanStats {
    /// The scheme.
    pub scheme: Scheme,
    /// Number of seeds averaged.
    pub runs: usize,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// 95th percentile latency (ms).
    pub p95_ms: f64,
    /// 99th percentile latency (ms).
    pub p99_ms: f64,
    /// 99.9th percentile latency (ms).
    pub p999_ms: f64,
    /// Mean RSNode count.
    pub rsnodes: f64,
    /// Mean redundant copies.
    pub duplicates: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mean_ms: u64) -> RunStats {
        let mut h = netrs_simcore::Histogram::new();
        h.record(SimDuration::from_millis(mean_ms));
        RunStats {
            scheme: Scheme::CliRs,
            latency: h.summary(),
            breakdown: LatencyBreakdown::default(),
            issued: 1,
            completed: 1,
            duplicates: 0,
            rsnode_count: 2,
            rsnode_census: [1, 1, 0],
            drs_groups: 0,
            mean_accel_utilization: 0.0,
            max_accel_utilization: 0.0,
            mean_selection_wait: SimDuration::ZERO,
            mean_server_utilization: 0.0,
            replans: 0,
            writes_issued: 0,
            write_latency: Summary::default(),
            overload_events: 0,
            sim_end: SimTime::ZERO,
            events: 0,
            availability: None,
            rw: None,
            parallel: None,
        }
    }

    #[test]
    fn mean_of_averages_each_stat() {
        let stats = RunStats::mean_of(&[run(2), run(4)]);
        assert_eq!(stats.runs, 2);
        assert!((stats.mean_ms - 3.0).abs() < 1e-9);
        assert!((stats.rsnodes - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn mean_of_rejects_empty() {
        let _ = RunStats::mean_of(&[]);
    }

    #[test]
    fn availability_is_omitted_when_absent_and_round_trips_when_present() {
        let fault_free = run(2);
        let json = serde_json::to_string(&fault_free.ser()).unwrap();
        assert!(!json.contains("availability"));
        let back = RunStats::deser(&fault_free.ser()).unwrap();
        assert!(back.availability.is_none());

        let mut faulted = run(2);
        faulted.availability = Some(AvailabilityStats {
            faults_injected: 1,
            timeouts: 2,
            retries: 3,
            duplicate_drops: 4,
            copies_dropped: 5,
            failed_window_p99: SimDuration::from_millis(7),
            time_to_recover: Some(SimDuration::from_millis(9)),
        });
        let json = serde_json::to_string(&faulted.ser()).unwrap();
        assert!(json.contains("availability"));
        let back = RunStats::deser(&faulted.ser()).unwrap();
        assert_eq!(back.availability, faulted.availability);
    }

    #[test]
    fn rw_is_omitted_when_absent_and_round_trips_when_present() {
        let read_only = run(2);
        let json = serde_json::to_string(&read_only.ser()).unwrap();
        assert!(!json.contains("\"rw\""));
        assert!(RunStats::deser(&read_only.ser()).unwrap().rw.is_none());

        let mut cached = run(2);
        cached.rw = Some(RwStats {
            writes_completed: 10,
            cache_hits: 40,
            cache_misses: 9,
            stale_reads: 2,
            cache_evictions: 3,
            cache_invalidations: 5,
        });
        let json = serde_json::to_string(&cached.ser()).unwrap();
        assert!(json.contains("\"rw\""));
        let back = RunStats::deser(&cached.ser()).unwrap();
        assert_eq!(back.rw, cached.rw);
    }
}
