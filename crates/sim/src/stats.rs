//! Run statistics: what one simulated experiment reports.

use netrs_simcore::{SimDuration, SimTime, Summary};
use serde::{Deserialize, Serialize};

use crate::config::Scheme;

/// Where response latency accrues, phase by phase, over post-warmup
/// first-completion reads — the decomposition behind the paper's Fig. 7/9
/// panels (client-side selection vs. in-network selection wait vs. server
/// queueing).
///
/// Each request's phases are differences of consecutive event timestamps
/// along the winning copy's path, so per request they sum exactly to the
/// end-to-end latency; the per-phase [`Summary`] means therefore sum to
/// the end-to-end mean up to integer-division rounding.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Requests decomposed (equals `latency.count`).
    pub count: u64,
    /// Network propagation: client → selection point → server → client.
    pub network: Summary,
    /// Replica selection: the accelerator's half-RTT + queue wait +
    /// processing + half-RTT in-network, or the client-side hold (rate
    /// gating, duplicate timers) for client schemes.
    pub selection: Summary,
    /// Time queued at the server before a slot freed up.
    pub server_queue: Summary,
    /// Service time at the server.
    pub service: Summary,
}

/// The results of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunStats {
    /// The scheme that ran.
    pub scheme: Scheme,
    /// End-to-end response-latency statistics over post-warmup requests
    /// (the paper's Avg / 95th / 99th / 99.9th panels).
    pub latency: Summary,
    /// Per-phase latency decomposition of the same requests.
    pub breakdown: LatencyBreakdown,
    /// Logical requests issued.
    pub issued: u64,
    /// Logical requests completed.
    pub completed: u64,
    /// Redundant copies sent (CliRS-R95 only).
    pub duplicates: u64,
    /// RSNodes in the final plan (0 for client schemes).
    pub rsnode_count: usize,
    /// RSNodes per tier `[core, agg, tor]`.
    pub rsnode_census: [usize; 3],
    /// Traffic groups under Degraded Replica Selection at the end.
    pub drs_groups: usize,
    /// Mean accelerator core utilization across operators.
    pub mean_accel_utilization: f64,
    /// Maximum accelerator core utilization across operators.
    pub max_accel_utilization: f64,
    /// Mean queueing wait of replica selections at accelerators.
    pub mean_selection_wait: SimDuration,
    /// Mean storage-server slot utilization.
    pub mean_server_utilization: f64,
    /// Controller re-plans performed (monitored plan source).
    pub replans: u64,
    /// Write requests issued (the read/write-mix extension).
    pub writes_issued: u64,
    /// Write-latency statistics (last-replica completion).
    pub write_latency: Summary,
    /// Operators degraded for overload (§III-C(ii)).
    pub overload_events: u64,
    /// Simulated time at drain.
    pub sim_end: SimTime,
    /// Discrete events processed.
    pub events: u64,
}

impl RunStats {
    /// Merges latency summaries across seeds by averaging each reported
    /// statistic (the paper plots the mean of repeated runs).
    #[must_use]
    pub fn mean_of(runs: &[RunStats]) -> MeanStats {
        assert!(!runs.is_empty(), "need at least one run");
        let n = runs.len() as f64;
        let avg = |f: fn(&RunStats) -> f64| runs.iter().map(f).sum::<f64>() / n;
        MeanStats {
            scheme: runs[0].scheme,
            runs: runs.len(),
            mean_ms: avg(|r| r.latency.mean.as_millis_f64()),
            p95_ms: avg(|r| r.latency.p95.as_millis_f64()),
            p99_ms: avg(|r| r.latency.p99.as_millis_f64()),
            p999_ms: avg(|r| r.latency.p999.as_millis_f64()),
            rsnodes: avg(|r| r.rsnode_count as f64),
            duplicates: avg(|r| r.duplicates as f64),
        }
    }
}

/// Seed-averaged statistics for one (scheme, sweep-point) cell.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MeanStats {
    /// The scheme.
    pub scheme: Scheme,
    /// Number of seeds averaged.
    pub runs: usize,
    /// Mean latency (ms).
    pub mean_ms: f64,
    /// 95th percentile latency (ms).
    pub p95_ms: f64,
    /// 99th percentile latency (ms).
    pub p99_ms: f64,
    /// 99.9th percentile latency (ms).
    pub p999_ms: f64,
    /// Mean RSNode count.
    pub rsnodes: f64,
    /// Mean redundant copies.
    pub duplicates: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(mean_ms: u64) -> RunStats {
        let mut h = netrs_simcore::Histogram::new();
        h.record(SimDuration::from_millis(mean_ms));
        RunStats {
            scheme: Scheme::CliRs,
            latency: h.summary(),
            breakdown: LatencyBreakdown::default(),
            issued: 1,
            completed: 1,
            duplicates: 0,
            rsnode_count: 2,
            rsnode_census: [1, 1, 0],
            drs_groups: 0,
            mean_accel_utilization: 0.0,
            max_accel_utilization: 0.0,
            mean_selection_wait: SimDuration::ZERO,
            mean_server_utilization: 0.0,
            replans: 0,
            writes_issued: 0,
            write_latency: Summary::default(),
            overload_events: 0,
            sim_end: SimTime::ZERO,
            events: 0,
        }
    }

    #[test]
    fn mean_of_averages_each_stat() {
        let stats = RunStats::mean_of(&[run(2), run(4)]);
        assert_eq!(stats.runs, 2);
        assert!((stats.mean_ms - 3.0).abs() < 1e-9);
        assert!((stats.rsnodes - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn mean_of_rejects_empty() {
        let _ = RunStats::mean_of(&[]);
    }
}
