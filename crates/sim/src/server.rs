//! The server layer: storage-server queueing, service, and the per-copy
//! timeline token.
//!
//! Servers are `Np`-slot FIFO queues with exponentially distributed,
//! bimodally fluctuating service times (wrapping [`netrs_kvstore`]'s
//! [`Server`] model). This layer moves request copies through arrival →
//! queue → service → done and stamps their timeline; it neither routes
//! packets (the fabric's job) nor decides where replies go next (the
//! policy's job).

use netrs_kvstore::{Arrival, Server, ServerConfig, ServerId, ServerStatus};
use netrs_simcore::{
    DeviceCounter, DeviceId, DeviceProbe, EventQueue, SimDuration, SimRng, SimTime,
};
use netrs_topology::SwitchId;

use crate::cluster::{Ev, ReqId};
use crate::fabric::Fabric;

/// Everything a request copy carries through the network and the server
/// queue, including its observability timeline: the consecutive event
/// timestamps that decompose end-to-end latency into exact phases
/// (steer → selection → to-server → server queue → service → reply).
#[derive(Debug, Clone, Copy)]
pub struct ServerToken {
    pub(crate) req: ReqId,
    pub(crate) server: ServerId,
    /// Index of the issuing client. Carried on the token so reply
    /// routing needs no request-table lookup at the server's side —
    /// which is what lets replica-mode shards route replies home
    /// without sharing the request table.
    pub(crate) client: u32,
    /// The request's replication group (chain writes walk it without a
    /// request-table lookup).
    pub(crate) rgid: u32,
    /// Whether the copy belongs to a write.
    pub(crate) is_write: bool,
    /// When this copy left its last sender (client or selector).
    pub(crate) copy_sent_at: SimTime,
    /// The RSNode the copy passed, if any, and when it left it.
    pub(crate) rsnode: Option<SwitchId>,
    pub(crate) rsnode_sent_at: SimTime,
    /// When the logical request was issued at the client.
    pub(crate) issued_at: SimTime,
    /// When the copy reached its selection point (the RSNode for
    /// in-network schemes; `issued_at` for client-side selection).
    pub(crate) steered_at: SimTime,
    /// Accelerator queue wait (zero for client schemes).
    pub(crate) selection_wait: SimDuration,
    /// When the copy arrived at the server.
    pub(crate) server_arrived_at: SimTime,
    /// When the server started serving it (after any queueing).
    pub(crate) service_started_at: SimTime,
    /// When the server finished serving it.
    pub(crate) served_at: SimTime,
}

impl ServerToken {
    /// A token whose timeline starts at `issued_at` and whose selection
    /// interval is `[steered_at, copy_sent_at]`; the server-side
    /// timestamps are stamped as the copy progresses.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        req: ReqId,
        server: ServerId,
        client: u32,
        rgid: u32,
        is_write: bool,
        issued_at: SimTime,
        steered_at: SimTime,
        selection_wait: SimDuration,
        copy_sent_at: SimTime,
        rsnode: Option<SwitchId>,
    ) -> Self {
        ServerToken {
            req,
            server,
            client,
            rgid,
            is_write,
            copy_sent_at,
            rsnode,
            rsnode_sent_at: copy_sent_at,
            issued_at,
            steered_at,
            selection_wait,
            server_arrived_at: copy_sent_at,
            service_started_at: copy_sent_at,
            served_at: copy_sent_at,
        }
    }
}

/// The cluster's storage servers.
pub(crate) struct ServerPool {
    servers: Vec<Server<ServerToken>>,
    /// Per server: in-service copies lost to a crash whose `ServerDone`
    /// events are still in the event queue and must be absorbed.
    ghosts: Vec<u32>,
    /// Per server: when it last crashed (distinguishes ghost completions
    /// from post-recovery ones).
    crash_at: Vec<SimTime>,
}

impl ServerPool {
    /// Builds `count` servers, each with its own deterministic RNG stream
    /// (`root.fork(20_000 + i)`).
    pub(crate) fn new(count: u32, cfg: &ServerConfig, root: &SimRng) -> Self {
        let servers: Vec<_> = (0..count)
            .map(|i| Server::new(ServerId(i), cfg.clone(), root.fork(20_000 + u64::from(i))))
            .collect();
        ServerPool {
            ghosts: vec![0; servers.len()],
            crash_at: vec![SimTime::ZERO; servers.len()],
            servers,
        }
    }

    /// A server redraws its mean service time (the bimodal fluctuation).
    pub(crate) fn fluctuate(&mut self, server: ServerId) {
        self.servers[server.0 as usize].fluctuate();
    }

    /// A request copy arrives: start service if a slot is free, queue
    /// otherwise. Stamps the token's arrival and (provisional) service
    /// start.
    pub(crate) fn arrive<D: DeviceProbe>(
        &mut self,
        now: SimTime,
        mut token: ServerToken,
        fabric: &mut Fabric<D>,
        queue: &mut EventQueue<Ev>,
    ) {
        token.server_arrived_at = now;
        // Provisional: correct if a slot is free; a queued copy gets its
        // real service start stamped when it is dispatched.
        token.service_started_at = now;
        let dev = DeviceId::Server(token.server.0);
        fabric.devices.bump(dev, DeviceCounter::Op, 1);
        let server = &mut self.servers[token.server.0 as usize];
        match server.arrive(token, now) {
            Arrival::Started { finish_at } => {
                queue.schedule_at(
                    finish_at,
                    Ev::ServerDone {
                        server: token.server,
                        token,
                    },
                );
            }
            Arrival::Queued => {
                // All slots busy: the copy joins the wait queue
                // (depth matches `Server::waiting`).
                fabric.devices.queue_delta(now, dev, 1);
            }
        }
    }

    /// A server finishes one copy: stamp its completion, account the busy
    /// time, dispatch the next queued copy if any, and report the
    /// piggybacked status the response will carry. Reply routing is the
    /// caller's (policy's) job.
    pub(crate) fn finish_service<D: DeviceProbe>(
        &mut self,
        now: SimTime,
        server_id: ServerId,
        token: &mut ServerToken,
        fabric: &mut Fabric<D>,
        queue: &mut EventQueue<Ev>,
    ) -> ServerStatus {
        token.served_at = now;
        let server_dev = DeviceId::Server(server_id.0);
        fabric
            .devices
            .busy(server_dev, now - token.service_started_at);
        let server = &mut self.servers[server_id.0 as usize];
        let status = server.status();
        if let Some((mut next_token, finish_at)) = server.complete(now).next {
            // The queued copy enters service now that a slot freed up.
            next_token.service_started_at = now;
            queue.schedule_at(
                finish_at,
                Ev::ServerDone {
                    server: server_id,
                    token: next_token,
                },
            );
            fabric.devices.queue_delta(now, server_dev, -1);
        }
        status
    }

    // ---- faults ---------------------------------------------------------

    /// Whether the server is currently crashed.
    pub(crate) fn is_down(&self, server: ServerId) -> bool {
        !self.servers[server.0 as usize].is_up()
    }

    /// Fail-stops a server. Queued copies are drained (their device queue
    /// accounting reversed) and returned as lost request ids; in-service
    /// copies become ghosts whose pending `ServerDone` events
    /// [`Self::absorb_ghost`] swallows. No-op if already down.
    pub(crate) fn crash<D: DeviceProbe>(
        &mut self,
        now: SimTime,
        server: ServerId,
        fabric: &mut Fabric<D>,
    ) -> Vec<u64> {
        let idx = server.0 as usize;
        if !self.servers[idx].is_up() {
            return Vec::new();
        }
        let (queued, in_service) = self.servers[idx].crash(now);
        self.ghosts[idx] += in_service;
        self.crash_at[idx] = now;
        let dev = DeviceId::Server(server.0);
        let mut lost = Vec::with_capacity(queued.len());
        for t in queued {
            fabric.devices.queue_delta(now, dev, -1);
            lost.push(t.req.0);
        }
        lost
    }

    /// A crashed server comes back empty. No-op if already up.
    pub(crate) fn recover(&mut self, now: SimTime, server: ServerId) {
        let idx = server.0 as usize;
        if !self.servers[idx].is_up() {
            self.servers[idx].recover(now);
        }
    }

    /// Applies a service-rate multiplier (the `ServerSlowdown` fault).
    pub(crate) fn set_rate_factor(&mut self, server: ServerId, factor: f64) {
        self.servers[server.0 as usize].set_rate_factor(factor);
    }

    /// Whether this `ServerDone` belongs to a copy that was in service
    /// when the server crashed (its completion must be discarded). Ghost
    /// tokens started service at or before the crash instant.
    pub(crate) fn absorb_ghost(&mut self, server: ServerId, token: &ServerToken) -> bool {
        let idx = server.0 as usize;
        if self.ghosts[idx] > 0 && token.service_started_at <= self.crash_at[idx] {
            self.ghosts[idx] -= 1;
            return true;
        }
        false
    }

    /// Adopts server `idx` from another pool (parallel replica merge:
    /// the other pool is the replica on which that server's queue and
    /// busy time actually advanced).
    pub(crate) fn adopt(&mut self, other: &mut ServerPool, idx: usize) {
        std::mem::swap(&mut self.servers[idx], &mut other.servers[idx]);
        std::mem::swap(&mut self.ghosts[idx], &mut other.ghosts[idx]);
        std::mem::swap(&mut self.crash_at[idx], &mut other.crash_at[idx]);
    }

    /// Mean instantaneous slot occupancy across servers.
    pub(crate) fn mean_occupancy(&self) -> f64 {
        self.servers.iter().map(|s| s.slot_occupancy()).sum::<f64>() / self.servers.len() as f64
    }

    /// Mean slot utilization over `[0, now]` across servers.
    pub(crate) fn mean_utilization(&self, now: SimTime) -> f64 {
        self.servers.iter().map(|s| s.utilization(now)).sum::<f64>() / self.servers.len() as f64
    }
}
