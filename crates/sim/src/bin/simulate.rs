//! `simulate` — run one NetRS experiment from the command line.
//!
//! ```text
//! # paper-scale CliRS run, 100k requests
//! cargo run --release -p netrs-sim --bin simulate -- --scheme netrs-ilp --requests 100000
//!
//! # emit the full §V-A default configuration for editing
//! cargo run --release -p netrs-sim --bin simulate -- --emit-config > cfg.json
//!
//! # run an edited configuration
//! cargo run --release -p netrs-sim --bin simulate -- --config cfg.json --json
//! ```

use std::fs::File;
use std::io::BufWriter;

use netrs_sim::{
    run_observed, run_observed_sharded, run_observed_sharded_parallel, run_sweep_with_cell_threads,
    CacheAdmission, CacheWritePolicy, FaultPlan, HotCacheConfig, ObsOptions, ParallelOptions,
    PerfOptions, SamplerSpec, Scheme, SimConfig, SweepJob, WriteConsistency,
};
use netrs_simcore::SimDuration;

// With `--features alloc-profile` the binary registers the counting
// allocator, so `--perf` profiles gain per-run allocation counters.
// (The crate-level `forbid(unsafe_code)` applies to the library target;
// this registration is safe code — the unsafe impl lives in
// netrs-allocprobe.)
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static ALLOC: netrs_allocprobe::CountingAllocator = netrs_allocprobe::CountingAllocator;

fn usage() -> ! {
    eprintln!(
        "usage: simulate [--config FILE] [--scheme clirs|clirs-r95|netrs-tor|netrs-ilp] \
         [--requests N] [--clients N] [--utilization F] [--skew F] [--seed N] \
         [--shards N] [--threads N] [--lookahead-mult N] [--small] [--faults FILE] \
         [--emit-config] [--json] \
         [--write-fraction F] [--consistency all|quorum:W|chain] [--hot-cache CAP] \
         [--cache-admission lru|freq:N] [--cache-write invalidate|through] \
         [--trace FILE] [--trace-hops] [--timeseries FILE] [--sample-every-us N] \
         [--devices FILE] [--control FILE] [--perf FILE] [--perf-stride N] [--progress]\n\
         \n\
         simulate sweep --out FILE [--config FILE] [--schemes all|s1,s2,...] \
         [--seeds s1,s2,...] [--requests N] [--utilization F] [--small] \
         [--shards N] [--threads N] [--cell-threads N] [--baseline]"
    );
    std::process::exit(2);
}

fn parse_consistency(spec: &str) -> Option<WriteConsistency> {
    match spec {
        "all" => Some(WriteConsistency::All),
        "chain" => Some(WriteConsistency::Chain),
        _ => {
            let w = spec.strip_prefix("quorum:")?.parse().ok()?;
            Some(WriteConsistency::Quorum { w })
        }
    }
}

fn parse_admission(spec: &str) -> Option<CacheAdmission> {
    match spec {
        "lru" => Some(CacheAdmission::Lru),
        _ => {
            let threshold = spec.strip_prefix("freq:")?.parse().ok()?;
            Some(CacheAdmission::Frequency { threshold })
        }
    }
}

fn create(path: &str) -> BufWriter<File> {
    BufWriter::new(File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(1);
    }))
}

/// `simulate sweep`: run a (scheme × seed) grid across cores and write
/// the merged [`netrs_sim::SweepReport`] artifact.
fn sweep_main(args: &[String]) -> ! {
    let mut cfg = SimConfig::paper();
    cfg.requests = 100_000;
    let mut out_path: Option<String> = None;
    let mut schemes: Vec<Scheme> = Scheme::ALL.to_vec();
    let mut seeds: Vec<u64> = vec![1, 2, 3];
    let mut shards: u32 = 1;
    let mut threads: usize = 0;
    let mut cell_threads: usize = 1;
    let mut baseline = false;

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let mut next = || {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--out" => out_path = Some(next()),
            "--config" => {
                let path = next();
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                });
                cfg = serde_json::from_str(&text).unwrap_or_else(|e| {
                    eprintln!("cannot parse {path}: {e}");
                    std::process::exit(1);
                });
            }
            "--schemes" => {
                let spec = next();
                if spec != "all" {
                    schemes = spec
                        .split(',')
                        .map(|s| {
                            s.parse().unwrap_or_else(|e| {
                                eprintln!("{e}");
                                usage()
                            })
                        })
                        .collect();
                }
            }
            "--seeds" => {
                seeds = next()
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--requests" => cfg.requests = next().parse().unwrap_or_else(|_| usage()),
            "--utilization" => cfg.utilization = next().parse().unwrap_or_else(|_| usage()),
            "--small" => {
                let requests = cfg.requests;
                cfg = SimConfig::small();
                cfg.requests = requests;
            }
            "--shards" => shards = next().parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = next().parse().unwrap_or_else(|_| usage()),
            "--cell-threads" => {
                cell_threads = next().parse().unwrap_or_else(|_| usage());
                if cell_threads == 0 {
                    eprintln!("--cell-threads must be at least 1");
                    std::process::exit(2);
                }
            }
            "--baseline" => baseline = true,
            _ => usage(),
        }
        i += 1;
    }
    if schemes.is_empty() || seeds.is_empty() {
        eprintln!("sweep needs at least one scheme and one seed");
        std::process::exit(2);
    }
    if let Err(msg) = cfg.clone().finalize().validate() {
        eprintln!("invalid configuration: {msg}");
        std::process::exit(1);
    }

    let jobs: Vec<SweepJob> = schemes
        .iter()
        .flat_map(|&scheme| {
            let cfg = cfg.clone();
            seeds.iter().map(move |&seed| {
                let mut cell_cfg = cfg.clone();
                cell_cfg.scheme = scheme;
                SweepJob {
                    label: scheme.label().into(),
                    cfg: cell_cfg,
                    seed,
                    shards,
                }
            })
        })
        .collect();
    eprintln!(
        "[sweep] {} cells ({} schemes × {} seeds), {} shard(s) × {} thread(s) per run",
        jobs.len(),
        schemes.len(),
        seeds.len(),
        shards.max(1),
        cell_threads,
    );
    let report = run_sweep_with_cell_threads(jobs, threads, cell_threads, baseline);
    eprintln!(
        "[sweep] parallel {:.2}s on {} threads{}",
        report.wall_s,
        report.threads,
        match (report.sequential_wall_s, report.speedup) {
            (Some(seq), Some(s)) => format!(" · sequential {seq:.2}s · speedup {s:.2}x"),
            _ => String::new(),
        },
    );
    let json = serde_json::to_string_pretty(&report).expect("sweep report serializes");
    match out_path.as_deref() {
        Some(path) => std::fs::write(path, json + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        }),
        None => println!("{json}"),
    }
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sweep") {
        sweep_main(&args[1..]);
    }
    let mut cfg = SimConfig::paper();
    cfg.requests = 100_000;
    let mut json_out = false;
    let mut trace_path: Option<String> = None;
    let mut trace_hops = false;
    let mut timeseries_path: Option<String> = None;
    let mut devices_path: Option<String> = None;
    let mut control_path: Option<String> = None;
    let mut perf_path: Option<String> = None;
    let mut perf_stride: u32 = PerfOptions::default().stride;
    let mut sample_every_us: u64 = 10_000;
    let mut progress = false;
    let mut shards: u32 = 1;
    let mut threads: Option<usize> = None;
    let mut lookahead_mult: u32 = 1;

    let mut i = 0;
    while i < args.len() {
        let arg = args[i].clone();
        let mut next = || {
            i += 1;
            args.get(i).cloned().unwrap_or_else(|| usage())
        };
        match arg.as_str() {
            "--config" => {
                let path = next();
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                });
                cfg = serde_json::from_str(&text).unwrap_or_else(|e| {
                    eprintln!("cannot parse {path}: {e}");
                    std::process::exit(1);
                });
            }
            "--scheme" => {
                cfg.scheme = next().parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
            }
            "--requests" => cfg.requests = next().parse().unwrap_or_else(|_| usage()),
            "--clients" => cfg.clients = next().parse().unwrap_or_else(|_| usage()),
            "--utilization" => cfg.utilization = next().parse().unwrap_or_else(|_| usage()),
            "--skew" => cfg.demand_skew = Some(next().parse().unwrap_or_else(|_| usage())),
            "--seed" => cfg.seed = next().parse().unwrap_or_else(|_| usage()),
            "--small" => {
                let requests = cfg.requests;
                cfg = SimConfig::small();
                cfg.requests = requests;
            }
            "--faults" => {
                let path = next();
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    std::process::exit(1);
                });
                cfg.faults = Some(FaultPlan::from_json(&text).unwrap_or_else(|e| {
                    eprintln!("cannot parse fault plan {path}: {e}");
                    std::process::exit(1);
                }));
            }
            "--emit-config" => {
                println!(
                    "{}",
                    serde_json::to_string_pretty(&cfg.finalize()).expect("config serializes")
                );
                return;
            }
            "--write-fraction" => {
                cfg.write_fraction = next().parse().unwrap_or_else(|_| usage());
            }
            "--consistency" => {
                let spec = next();
                cfg.write_consistency = parse_consistency(&spec).unwrap_or_else(|| {
                    eprintln!("bad --consistency {spec:?}: want all, quorum:W or chain");
                    std::process::exit(2);
                });
            }
            "--hot-cache" => {
                let capacity: usize = next().parse().unwrap_or_else(|_| usage());
                cfg.hot_cache = match capacity {
                    0 => None,
                    _ => Some(HotCacheConfig {
                        capacity,
                        ..cfg.hot_cache.unwrap_or_default()
                    }),
                };
            }
            "--cache-admission" => {
                let spec = next();
                let admission = parse_admission(&spec).unwrap_or_else(|| {
                    eprintln!("bad --cache-admission {spec:?}: want lru or freq:N");
                    std::process::exit(2);
                });
                let cache = cfg.hot_cache.get_or_insert_with(HotCacheConfig::default);
                cache.admission = admission;
            }
            "--cache-write" => {
                let spec = next();
                let policy = match spec.as_str() {
                    "invalidate" => CacheWritePolicy::Invalidate,
                    "through" => CacheWritePolicy::Through,
                    _ => {
                        eprintln!("bad --cache-write {spec:?}: want invalidate or through");
                        std::process::exit(2);
                    }
                };
                let cache = cfg.hot_cache.get_or_insert_with(HotCacheConfig::default);
                cache.write_policy = policy;
            }
            "--json" => json_out = true,
            "--trace" => trace_path = Some(next()),
            "--trace-hops" => trace_hops = true,
            "--timeseries" => timeseries_path = Some(next()),
            "--devices" => devices_path = Some(next()),
            "--control" => control_path = Some(next()),
            "--perf" => perf_path = Some(next()),
            "--perf-stride" => {
                perf_stride = next().parse().unwrap_or_else(|_| usage());
                if perf_stride == 0 {
                    eprintln!("--perf-stride must be at least 1");
                    std::process::exit(2);
                }
            }
            "--sample-every-us" => {
                sample_every_us = next().parse().unwrap_or_else(|_| usage());
                if sample_every_us == 0 {
                    eprintln!("--sample-every-us must be at least 1");
                    std::process::exit(2);
                }
            }
            "--progress" => progress = true,
            "--shards" => shards = next().parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = Some(next().parse().unwrap_or_else(|_| usage())),
            "--lookahead-mult" => {
                lookahead_mult = next().parse().unwrap_or_else(|_| usage());
                if lookahead_mult == 0 {
                    eprintln!("--lookahead-mult must be at least 1");
                    std::process::exit(2);
                }
            }
            _ => usage(),
        }
        i += 1;
    }

    if let Err(msg) = cfg.clone().finalize().validate() {
        eprintln!("invalid configuration: {msg}");
        std::process::exit(1);
    }

    let scheme = cfg.scheme;
    // Open every output file before the run so a bad path fails in
    // milliseconds, not after minutes of simulation.
    let mut timeseries_file = timeseries_path.as_deref().map(create);
    let mut devices_file = devices_path.as_deref().map(create);
    let mut perf_file = perf_path.as_deref().map(create);
    let obs = ObsOptions {
        trace: trace_path
            .as_deref()
            .map(|p| Box::new(create(p)) as Box<dyn std::io::Write + Send>),
        trace_hops,
        timeseries: timeseries_path.as_deref().map(|_| SamplerSpec {
            interval: SimDuration::from_micros(sample_every_us),
            ..SamplerSpec::default()
        }),
        device_stats: devices_path.is_some(),
        control: control_path
            .as_deref()
            .map(|p| Box::new(create(p)) as Box<dyn std::io::Write + Send>),
        perf: perf_path.as_deref().map(|_| PerfOptions {
            stride: perf_stride,
        }),
        progress,
    };
    // `--threads`/`--lookahead-mult` opt into the parallel window driver;
    // without them the historical dispatch (and its exact bytes) is kept.
    let out = if threads.is_some() || lookahead_mult != 1 {
        run_observed_sharded_parallel(
            cfg,
            shards,
            ParallelOptions {
                threads: threads.unwrap_or(1),
                lookahead_mult,
            },
            obs,
        )
    } else if shards > 1 {
        run_observed_sharded(cfg, shards, obs)
    } else {
        run_observed(cfg, obs)
    };
    let stats = out.stats;
    if let (Some(w), Some(perf)) = (perf_file.as_mut(), out.perf.as_ref()) {
        use std::io::Write;
        writeln!(
            w,
            "{}",
            serde_json::to_string_pretty(perf).expect("perf profile serializes")
        )
        .unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", perf_path.as_deref().unwrap());
            std::process::exit(1);
        });
        eprintln!(
            "perf: {} events · {:.1}% of wall attributed across {} kinds · stride {}",
            perf.events,
            if perf.wall_s > 0.0 {
                perf.attributed_ns as f64 / (perf.wall_s * 1e9) * 100.0
            } else {
                0.0
            },
            perf.kinds.iter().filter(|k| k.count > 0).count(),
            perf.stride,
        );
    }
    if let (Some(w), Some(ts)) = (timeseries_file.as_mut(), out.timeseries.as_ref()) {
        ts.write_jsonl(w).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", timeseries_path.as_deref().unwrap());
            std::process::exit(1);
        });
    }
    if let (Some(w), Some(report)) = (devices_file.as_mut(), out.devices.as_ref()) {
        report.write_jsonl(w).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", devices_path.as_deref().unwrap());
            std::process::exit(1);
        });
    }
    if json_out {
        // Keep stdout pure JSON; the profile goes to stderr.
        eprintln!("engine: {}", out.profile);
        println!(
            "{}",
            serde_json::to_string_pretty(&stats).expect("stats serialize")
        );
    } else {
        println!("scheme              : {scheme}");
        println!(
            "requests            : {} issued, {} completed",
            stats.issued, stats.completed
        );
        println!("mean latency        : {}", stats.latency.mean);
        println!("median              : {}", stats.latency.p50);
        println!("95th percentile     : {}", stats.latency.p95);
        println!("99th percentile     : {}", stats.latency.p99);
        println!("99.9th percentile   : {}", stats.latency.p999);
        let b = &stats.breakdown;
        if b.count > 0 {
            println!(
                "latency breakdown   : network {} · selection {} · server queue {} · service {}",
                b.network.mean, b.selection.mean, b.server_queue.mean, b.service.mean
            );
        }
        if stats.rsnode_count > 0 {
            println!(
                "RSNodes             : {} (core/agg/tor = {:?}), {} DRS groups",
                stats.rsnode_count, stats.rsnode_census, stats.drs_groups
            );
            println!(
                "accelerator util    : {:.1}% mean / {:.1}% max, mean wait {}",
                stats.mean_accel_utilization * 100.0,
                stats.max_accel_utilization * 100.0,
                stats.mean_selection_wait
            );
        }
        if stats.duplicates > 0 {
            println!("redundant copies    : {}", stats.duplicates);
        }
        if stats.writes_issued > 0 {
            println!(
                "writes              : {} (mean {})",
                stats.writes_issued, stats.write_latency.mean
            );
        }
        if let Some(rw) = stats.rw.as_ref() {
            let gets = rw.cache_hits + rw.cache_misses;
            let ratio = if gets > 0 {
                rw.cache_hits as f64 / gets as f64 * 100.0
            } else {
                0.0
            };
            println!(
                "rw                  : {} writes committed · cache {}/{} hits ({ratio:.1}%) · {} stale · {} evicted · {} invalidated",
                rw.writes_completed,
                rw.cache_hits,
                gets,
                rw.stale_reads,
                rw.cache_evictions,
                rw.cache_invalidations
            );
        }
        if let Some(a) = stats.availability.as_ref() {
            println!(
                "availability        : {} fault(s), {} timeouts, {} retries, {} copies dropped",
                a.faults_injected, a.timeouts, a.retries, a.copies_dropped
            );
            println!("failed-window p99   : {}", a.failed_window_p99);
            match a.time_to_recover {
                Some(t) => println!("time to recover     : {t}"),
                None => println!("time to recover     : never (run ended degraded)"),
            }
        }
        println!(
            "server utilization  : {:.1}%",
            stats.mean_server_utilization * 100.0
        );
        if let Some(p) = stats.parallel.as_ref() {
            println!(
                "parallel            : {} shards · {} windows · {} mailbox posts ({} late)",
                p.shards, p.windows, p.mailbox_posted, p.mailbox_late
            );
        }
        println!(
            "events              : {} over {} simulated",
            stats.events, stats.sim_end
        );
        println!("engine              : {}", out.profile);
        if let Some(ts) = out.timeseries.as_ref() {
            println!(
                "timeseries          : {} samples retained ({} taken)",
                ts.len(),
                ts.accel_util.total_pushed()
            );
        }
    }
}
