//! Dense, hash-free state tables for the simulator hot path.
//!
//! The event loop touches per-request and per-switch state on every
//! packet; `HashMap` put a SipHash round and a cache-hostile probe on
//! that path, and its unordered iteration forced sort-before-iterate
//! workarounds wherever float summation order mattered. Both tables here
//! exploit structure the simulator guarantees:
//!
//! * [`RequestTable`] — request ids are the monotonically increasing
//!   issue index, and only a bounded in-flight window is live at once,
//!   so `id & mask` over a power-of-two ring almost never collides. A
//!   collision between two *live* ids doubles the ring (ids a ≡ b mod 2n
//!   implies a ≡ b mod n, so surviving entries never re-collide).
//! * [`SwitchTable`] — switch ids are dense (`0..num_switches`), so a
//!   `Vec<Option<T>>` plus a sorted occupancy list gives O(1) access and
//!   naturally ascending iteration, which *is* the determinism contract
//!   the old sort workarounds bolted onto `HashMap`.

use netrs_topology::SwitchId;

/// Ring-slab keyed by the monotonically increasing request id.
#[derive(Debug, Clone)]
pub(crate) struct RequestTable<T> {
    /// Power-of-two slot ring; each occupied slot stores the exact id it
    /// holds so stale slots never alias a different request.
    slots: Vec<Option<(u64, T)>>,
    mask: u64,
    len: usize,
}

impl<T> RequestTable<T> {
    /// At least `cap` slots (rounded up to a power of two). The table
    /// grows itself when the live-id span ever exceeds the ring.
    pub(crate) fn with_capacity(cap: usize) -> Self {
        let cap = cap.max(16).next_power_of_two();
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || None);
        RequestTable {
            slots,
            mask: cap as u64 - 1,
            len: 0,
        }
    }

    #[inline]
    fn slot(&self, id: u64) -> usize {
        (id & self.mask) as usize
    }

    pub(crate) fn insert(&mut self, id: u64, value: T) {
        while matches!(&self.slots[self.slot(id)], Some((other, _)) if *other != id) {
            self.grow();
        }
        let s = self.slot(id);
        if self.slots[s].replace((id, value)).is_none() {
            self.len += 1;
        }
    }

    #[inline]
    pub(crate) fn get(&self, id: u64) -> Option<&T> {
        match &self.slots[self.slot(id)] {
            Some((stored, v)) if *stored == id => Some(v),
            _ => None,
        }
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        let s = self.slot(id);
        match &mut self.slots[s] {
            Some((stored, v)) if *stored == id => Some(v),
            _ => None,
        }
    }

    #[inline]
    pub(crate) fn contains(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    pub(crate) fn remove(&mut self, id: u64) -> Option<T> {
        let s = self.slot(id);
        match &self.slots[s] {
            Some((stored, _)) if *stored == id => {
                self.len -= 1;
                self.slots[s].take().map(|(_, v)| v)
            }
            _ => None,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn grow(&mut self) {
        let cap = self.slots.len() * 2;
        let mask = cap as u64 - 1;
        let mut slots = Vec::with_capacity(cap);
        slots.resize_with(cap, || None);
        for (id, v) in self.slots.drain(..).flatten() {
            let s = (id & mask) as usize;
            debug_assert!(slots[s].is_none(), "doubling cannot introduce collisions");
            slots[s] = Some((id, v));
        }
        self.slots = slots;
        self.mask = mask;
    }
}

/// `Vec<Option<T>>` keyed by [`SwitchId`], with a sorted occupancy list
/// so iteration runs in ascending switch order — the order every
/// float-summing consumer needs for run-to-run determinism.
#[derive(Debug, Clone)]
pub(crate) struct SwitchTable<T> {
    slots: Vec<Option<T>>,
    /// Occupied switch ids, kept sorted ascending.
    occupied: Vec<SwitchId>,
}

impl<T> SwitchTable<T> {
    /// A table covering switch ids `0..num_switches`.
    pub(crate) fn new(num_switches: u32) -> Self {
        let mut slots = Vec::with_capacity(num_switches as usize);
        slots.resize_with(num_switches as usize, || None);
        SwitchTable {
            slots,
            occupied: Vec::new(),
        }
    }

    #[inline]
    fn idx(sw: SwitchId) -> usize {
        sw.0 as usize
    }

    pub(crate) fn insert(&mut self, sw: SwitchId, value: T) -> Option<T> {
        let prev = self.slots[Self::idx(sw)].replace(value);
        if prev.is_none() {
            let at = self.occupied.partition_point(|&s| s < sw);
            self.occupied.insert(at, sw);
        }
        prev
    }

    pub(crate) fn remove(&mut self, sw: SwitchId) -> Option<T> {
        let prev = self.slots[Self::idx(sw)].take();
        if prev.is_some() {
            let at = self.occupied.partition_point(|&s| s < sw);
            self.occupied.remove(at);
        }
        prev
    }

    #[inline]
    #[allow(dead_code)] // API symmetry with `get_mut`; exercised in tests
    pub(crate) fn get(&self, sw: SwitchId) -> Option<&T> {
        self.slots[Self::idx(sw)].as_ref()
    }

    #[inline]
    pub(crate) fn get_mut(&mut self, sw: SwitchId) -> Option<&mut T> {
        self.slots[Self::idx(sw)].as_mut()
    }

    pub(crate) fn get_or_insert_with(&mut self, sw: SwitchId, f: impl FnOnce() -> T) -> &mut T {
        if self.slots[Self::idx(sw)].is_none() {
            self.insert(sw, f());
        }
        self.slots[Self::idx(sw)].as_mut().expect("just ensured")
    }

    pub(crate) fn len(&self) -> usize {
        self.occupied.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.occupied.is_empty()
    }

    /// Occupied switch ids in ascending order.
    pub(crate) fn keys(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.occupied.iter().copied()
    }

    /// Entries in ascending switch order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (SwitchId, &T)> + '_ {
        self.occupied
            .iter()
            .map(|&sw| (sw, self.slots[Self::idx(sw)].as_ref().expect("occupied")))
    }

    /// Mutable entries in ascending switch order.
    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = (SwitchId, &mut T)> + '_ {
        let occupied = &self.occupied;
        // Walk the slots alongside the sorted occupancy list; the list
        // holds distinct indices so each slot is yielded at most once.
        let mut next = 0;
        self.slots.iter_mut().enumerate().filter_map(move |(i, v)| {
            if next < occupied.len() && Self::idx(occupied[next]) == i {
                next += 1;
                Some((SwitchId(i as u32), v.as_mut().expect("occupied")))
            } else {
                None
            }
        })
    }

    /// Values in ascending switch order.
    pub(crate) fn values(&self) -> impl Iterator<Item = &T> + '_ {
        self.iter().map(|(_, v)| v)
    }

    /// Empties the table, yielding entries in ascending switch order.
    pub(crate) fn drain(&mut self) -> impl Iterator<Item = (SwitchId, T)> + '_ {
        let slots = &mut self.slots;
        self.occupied
            .drain(..)
            .map(|sw| (sw, slots[Self::idx(sw)].take().expect("occupied")))
    }

    /// The id range this table covers (`0..capacity`).
    pub(crate) fn capacity(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Rebuilds the table from an unordered map (a controller `deploy`
    /// boundary); dense storage makes the input order irrelevant.
    pub(crate) fn from_map(num_switches: u32, map: std::collections::HashMap<SwitchId, T>) -> Self {
        let mut table = SwitchTable::new(num_switches);
        for (sw, v) in map {
            table.insert(sw, v);
        }
        table
    }

    /// Replaces every entry with the map's contents, keeping the
    /// allocated slots.
    pub(crate) fn reset_from_map(&mut self, map: std::collections::HashMap<SwitchId, T>) {
        for s in &mut self.slots {
            *s = None;
        }
        self.occupied.clear();
        for (sw, v) in map {
            self.insert(sw, v);
        }
    }
}

impl<T> std::ops::Index<SwitchId> for SwitchTable<T> {
    type Output = T;

    fn index(&self, sw: SwitchId) -> &T {
        self.slots[Self::idx(sw)]
            .as_ref()
            .expect("indexed switch has an entry")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_table_basic_ops() {
        let mut t: RequestTable<u64> = RequestTable::with_capacity(4);
        assert!(t.is_empty());
        for id in 0..100 {
            t.insert(id, id * 10);
        }
        assert_eq!(t.len(), 100, "grows past the initial capacity");
        for id in 0..100 {
            assert_eq!(t.get(id), Some(&(id * 10)));
            assert!(t.contains(id));
        }
        assert_eq!(t.get(100), None);
        *t.get_mut(7).unwrap() = 99;
        assert_eq!(t.remove(7), Some(99));
        assert_eq!(t.remove(7), None);
        assert!(!t.contains(7));
        assert_eq!(t.len(), 99);
    }

    #[test]
    fn request_table_ring_reuse_keeps_ids_distinct() {
        // A sliding in-flight window over monotonically increasing ids —
        // the simulator's actual access pattern — must never alias.
        let mut t: RequestTable<u64> = RequestTable::with_capacity(16);
        for id in 0u64..10_000 {
            t.insert(id, id);
            if id >= 8 {
                assert_eq!(t.remove(id - 8), Some(id - 8));
            }
            // An id far outside the window maps to some live slot but
            // must not be reported present.
            assert!(!t.contains(id + 1));
        }
        assert_eq!(t.len(), 8);
    }

    #[test]
    fn switch_table_iterates_in_ascending_order() {
        let mut t: SwitchTable<&str> = SwitchTable::new(10);
        t.insert(SwitchId(7), "g");
        t.insert(SwitchId(2), "b");
        t.insert(SwitchId(5), "e");
        assert_eq!(
            t.keys().collect::<Vec<_>>(),
            vec![SwitchId(2), SwitchId(5), SwitchId(7)]
        );
        assert_eq!(t.values().copied().collect::<Vec<_>>(), vec!["b", "e", "g"]);
        assert_eq!(
            t.iter_mut().map(|(sw, v)| (sw, *v)).collect::<Vec<_>>(),
            vec![(SwitchId(2), "b"), (SwitchId(5), "e"), (SwitchId(7), "g")]
        );
        assert_eq!(t.insert(SwitchId(5), "E"), Some("e"));
        assert_eq!(t.len(), 3);
        assert_eq!(t[SwitchId(5)], "E");
        assert_eq!(t.remove(SwitchId(5)), Some("E"));
        assert_eq!(t.get(SwitchId(5)), None);
        assert_eq!(
            t.drain().collect::<Vec<_>>(),
            vec![(SwitchId(2), "b"), (SwitchId(7), "g")]
        );
        assert!(t.is_empty());
    }

    #[test]
    fn switch_table_get_or_insert_with() {
        let mut t: SwitchTable<u32> = SwitchTable::new(4);
        *t.get_or_insert_with(SwitchId(3), || 1) += 10;
        *t.get_or_insert_with(SwitchId(3), || 1) += 10;
        assert_eq!(t[SwitchId(3)], 21, "the closure runs only once");
    }
}
