//! Observability plumbing for the cluster simulation: per-request trace
//! records (JSONL), the virtual-time sampler's time series, and the
//! options block that [`run_observed`](crate::run_observed) takes.
//!
//! Everything here is strictly opt-in: a run with default
//! [`ObsOptions`] executes the exact event sequence an unobserved run
//! does (the sampler adds events only when enabled, and the tracer only
//! writes — it never perturbs timing).

use std::io::{self, Write};

use netrs_simcore::{RingSeries, SimDuration};
use serde::{DeError, Deserialize, Serialize, Value};

/// One hop of a request copy's route: the sim-time interval the copy
/// occupied one device. Emitted under `--trace-hops`.
///
/// Hops are *covering* spans: within one [`TraceRecord`] they are
/// contiguous (`hops[i].depart_ns == hops[i + 1].arrive_ns`), the first
/// arrives at `issued_ns`, the last departs at `received_ns`, and the
/// hop durations therefore telescope to `e2e_ns` exactly. Link hops
/// last one link latency; switch forwarding hops are zero-width
/// (forwarding is free in the timing model); residency hops (client
/// hold, accelerator selection, server queue + service) carry the time
/// the copy actually waited there.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopSpan {
    /// The device occupied, in [`netrs_simcore::DeviceId`] display form
    /// (`switch:5`, `accel:5`, `server:3`, `client:7`, `link:h3>s0`).
    pub dev: String,
    /// When the copy arrived at the device (sim nanoseconds).
    pub arrive_ns: u64,
    /// When the copy left the device.
    pub depart_ns: u64,
}

impl HopSpan {
    /// Time spent on the device.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.depart_ns - self.arrive_ns
    }
}

/// One JSONL line of `--trace` output: a request copy's full lifecycle,
/// decomposed into consecutive sim-time phases.
///
/// The phases telescope: `steer + selection + to_server + server_queue +
/// service + reply == e2e == received - issued`, exactly, in integer
/// nanoseconds — each phase is the difference of two consecutive event
/// timestamps along the copy's path.
///
/// Serialization is hand-written (not derived) to pin the JSONL schema:
/// field order is fixed, and `hops` is omitted entirely when empty so
/// traces without `--trace-hops` are byte-identical to the pre-hop
/// format. A golden-file test guards both shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The logical request this copy belongs to.
    pub req: u64,
    /// The server that served the copy.
    pub server: u32,
    /// Whether this copy completed the logical request (first response
    /// for reads, last for writes).
    pub first: bool,
    /// Whether the request was a write.
    pub write: bool,
    /// When the logical request was issued (sim nanoseconds).
    pub issued_ns: u64,
    /// When this copy's response reached the client.
    pub received_ns: u64,
    /// Network time from the client to the selection point (zero for
    /// client-side selection, where no steering hop exists).
    pub steer_ns: u64,
    /// Time spent selecting a replica: the accelerator's half-RTT +
    /// queue wait + processing + half-RTT in-network, or the client-side
    /// hold (rate gating, duplicate timers) for client schemes.
    pub selection_ns: u64,
    /// Accelerator queue wait alone (a sub-interval of `selection_ns`;
    /// zero for client schemes).
    pub selection_wait_ns: u64,
    /// Network time from the selection point to the server.
    pub to_server_ns: u64,
    /// Time queued at the server before a slot freed up.
    pub server_queue_ns: u64,
    /// Service time at the server.
    pub service_ns: u64,
    /// Network time from the server back to the client (via the RSNode
    /// for in-network schemes).
    pub reply_ns: u64,
    /// End-to-end: `received_ns - issued_ns`.
    pub e2e_ns: u64,
    /// The copy's hop-by-hop route ([`HopSpan`]s, chronological); empty
    /// unless hop tracing was enabled.
    pub hops: Vec<HopSpan>,
}

impl TraceRecord {
    /// The sum of the six phases; equals [`TraceRecord::e2e_ns`] by
    /// construction (the integration suite asserts it).
    #[must_use]
    pub fn phase_sum_ns(&self) -> u64 {
        self.steer_ns
            + self.selection_ns
            + self.to_server_ns
            + self.server_queue_ns
            + self.service_ns
            + self.reply_ns
    }

    /// The sum of all hop durations; equals [`TraceRecord::e2e_ns`] when
    /// hops were traced (they are contiguous covering spans).
    #[must_use]
    pub fn hop_sum_ns(&self) -> u64 {
        self.hops.iter().map(HopSpan::duration_ns).sum()
    }
}

impl Serialize for TraceRecord {
    fn ser(&self) -> Value {
        let mut o: Vec<(String, Value)> = vec![
            ("req".into(), Value::U(u128::from(self.req))),
            ("server".into(), Value::U(u128::from(self.server))),
            ("first".into(), Value::Bool(self.first)),
            ("write".into(), Value::Bool(self.write)),
            ("issued_ns".into(), Value::U(u128::from(self.issued_ns))),
            ("received_ns".into(), Value::U(u128::from(self.received_ns))),
            ("steer_ns".into(), Value::U(u128::from(self.steer_ns))),
            (
                "selection_ns".into(),
                Value::U(u128::from(self.selection_ns)),
            ),
            (
                "selection_wait_ns".into(),
                Value::U(u128::from(self.selection_wait_ns)),
            ),
            (
                "to_server_ns".into(),
                Value::U(u128::from(self.to_server_ns)),
            ),
            (
                "server_queue_ns".into(),
                Value::U(u128::from(self.server_queue_ns)),
            ),
            ("service_ns".into(), Value::U(u128::from(self.service_ns))),
            ("reply_ns".into(), Value::U(u128::from(self.reply_ns))),
            ("e2e_ns".into(), Value::U(u128::from(self.e2e_ns))),
        ];
        if !self.hops.is_empty() {
            o.push(("hops".into(), self.hops.ser()));
        }
        Value::Obj(o)
    }
}

impl Deserialize for TraceRecord {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for TraceRecord"))?;
        let f = |name: &str| serde::field(entries, name, "TraceRecord").and_then(u64::deser);
        let b = |name: &str| serde::field(entries, name, "TraceRecord").and_then(bool::deser);
        Ok(TraceRecord {
            req: f("req")?,
            server: serde::field(entries, "server", "TraceRecord").and_then(u32::deser)?,
            first: b("first")?,
            write: b("write")?,
            issued_ns: f("issued_ns")?,
            received_ns: f("received_ns")?,
            steer_ns: f("steer_ns")?,
            selection_ns: f("selection_ns")?,
            selection_wait_ns: f("selection_wait_ns")?,
            to_server_ns: f("to_server_ns")?,
            server_queue_ns: f("server_queue_ns")?,
            service_ns: f("service_ns")?,
            reply_ns: f("reply_ns")?,
            e2e_ns: f("e2e_ns")?,
            hops: match v.get("hops") {
                Some(hops) => Vec::<HopSpan>::deser(hops)?,
                None => Vec::new(),
            },
        })
    }
}

/// Configuration of the virtual-time sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerSpec {
    /// Sim-time distance between samples.
    pub interval: SimDuration,
    /// Ring-buffer capacity per series (oldest samples evicted beyond
    /// this).
    pub capacity: usize,
}

impl Default for SamplerSpec {
    fn default() -> Self {
        SamplerSpec {
            interval: SimDuration::from_millis(10),
            capacity: 65_536,
        }
    }
}

/// The sampler's output: aligned bounded time series, one sample per
/// tick in each.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    /// Mean accelerator core utilization over the last interval (zero
    /// when the scheme has no accelerators).
    pub accel_util: RingSeries,
    /// Mean instantaneous server slot occupancy.
    pub server_occupancy: RingSeries,
    /// Logical requests outstanding (issued, not yet fully drained).
    pub outstanding: RingSeries,
    /// Traffic groups currently under Degraded Replica Selection.
    pub drs_groups: RingSeries,
}

/// One JSONL line of `--timeseries` output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Sample time (sim nanoseconds).
    pub t_ns: u64,
    /// Mean accelerator core utilization over the last interval.
    pub accel_util: f64,
    /// Mean instantaneous server slot occupancy.
    pub server_occupancy: f64,
    /// Logical requests outstanding.
    pub outstanding: f64,
    /// Traffic groups under Degraded Replica Selection.
    pub drs_groups: f64,
}

impl TimeSeries {
    /// Creates empty, equally-bounded series.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TimeSeries {
            accel_util: RingSeries::new(capacity),
            server_occupancy: RingSeries::new(capacity),
            outstanding: RingSeries::new(capacity),
            drs_groups: RingSeries::new(capacity),
        }
    }

    /// Retained samples (identical across the aligned series).
    #[must_use]
    pub fn len(&self) -> usize {
        self.accel_util.len()
    }

    /// Whether no samples were taken.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accel_util.is_empty()
    }

    /// The retained samples, oldest first, re-zipped into points.
    pub fn points(&self) -> impl Iterator<Item = SamplePoint> + '_ {
        self.accel_util
            .iter()
            .zip(self.server_occupancy.iter())
            .zip(self.outstanding.iter())
            .zip(self.drs_groups.iter())
            .map(|((((t, au), (_, so)), (_, out)), (_, drs))| SamplePoint {
                t_ns: t.as_nanos(),
                accel_util: au,
                server_occupancy: so,
                outstanding: out,
                drs_groups: drs,
            })
    }

    /// Writes the retained samples as JSONL, one [`SamplePoint`] per
    /// line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        for p in self.points() {
            let line = serde_json::to_string(&p).expect("sample point serializes");
            writeln!(w, "{line}")?;
        }
        Ok(())
    }
}

/// One JSONL line of `--devices` output: everything one device
/// accumulated over the run, flattened for offline analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceRecord {
    /// Stable device key (`switch:5`, `accel:5`, `server:3`,
    /// `client:7`, `link:h3>s0`).
    pub dev: String,
    /// Device kind (`switch`, `accel`, `server`, `client`, `link`).
    pub kind: String,
    /// The device's own tier: 0/1/2 for core/agg/ToR switches (and
    /// their accelerators), the touched switch tier for links, 3 for
    /// end-hosts.
    pub tier: u32,
    /// Packets forwarded per traffic tier (Tier-0/1/2 classification).
    pub packets: [u64; 3],
    /// Bytes forwarded per traffic tier.
    pub bytes: [u64; 3],
    /// Requests handled (server arrivals, client issues).
    pub ops: u64,
    /// Replica selections performed (accelerators only).
    pub selections: u64,
    /// Mean accelerator queue wait per selection (ns).
    pub mean_selection_wait_ns: u64,
    /// Response clones processed for selector state.
    pub clone_updates: u64,
    /// Device busy time (core-ns / slot-ns).
    pub busy_ns: u64,
    /// Busy fraction of the device's capacity over the run.
    pub utilization: f64,
    /// Sim-time-weighted mean queue depth.
    pub mean_queue_depth: f64,
    /// Deepest the device's queue ever got.
    pub max_queue_depth: u32,
    /// Work abandoned at the device (retired-RSNode fallbacks).
    pub drops: u64,
    /// Load-induced degradations (rate-controller holds, DRS
    /// forwarding).
    pub clamps: u64,
}

/// End-of-run device telemetry: one [`DeviceRecord`] per device ever
/// touched, in stable device order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceStatsReport {
    /// The per-device records.
    pub records: Vec<DeviceRecord>,
    /// When the run ended (sim nanoseconds) — the utilization /
    /// mean-depth denominator.
    pub sim_end_ns: u64,
}

impl DeviceRecord {
    /// Packets forwarded across all three traffic tiers.
    #[must_use]
    pub fn total_packets(&self) -> u64 {
        self.packets.iter().sum()
    }

    /// Bytes forwarded across all three traffic tiers.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

impl DeviceStatsReport {
    /// Records of one kind, registry order preserved.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a DeviceRecord> {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// Writes the report as JSONL, one [`DeviceRecord`] per line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        for r in &self.records {
            let line = serde_json::to_string(r).expect("device record serializes");
            writeln!(w, "{line}")?;
        }
        Ok(())
    }
}

/// What to observe during a run. The default observes nothing and is
/// exactly the classic [`run`](crate::run).
#[derive(Default)]
pub struct ObsOptions {
    /// JSONL sink for per-request [`TraceRecord`] lines.
    pub trace: Option<Box<dyn Write + Send>>,
    /// Attach hop-by-hop route spans to each trace record (requires
    /// `trace`; adds a `hops` array per line).
    pub trace_hops: bool,
    /// Enable the virtual-time sampler.
    pub timeseries: Option<SamplerSpec>,
    /// Accumulate the per-device telemetry registry and return a
    /// [`DeviceStatsReport`].
    pub device_stats: bool,
    /// Print a once-per-second heartbeat to stderr while running.
    pub progress: bool,
}

impl std::fmt::Debug for ObsOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsOptions")
            .field("trace", &self.trace.is_some())
            .field("trace_hops", &self.trace_hops)
            .field("timeseries", &self.timeseries)
            .field("device_stats", &self.device_stats)
            .field("progress", &self.progress)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use netrs_simcore::SimTime;

    use super::*;

    #[test]
    fn trace_record_round_trips_through_json() {
        let rec = TraceRecord {
            req: 42,
            server: 3,
            first: true,
            write: false,
            issued_ns: 1_000,
            received_ns: 9_000,
            steer_ns: 1_000,
            selection_ns: 2_000,
            selection_wait_ns: 500,
            to_server_ns: 1_500,
            server_queue_ns: 1_000,
            service_ns: 2_000,
            reply_ns: 500,
            e2e_ns: 8_000,
            hops: Vec::new(),
        };
        assert_eq!(rec.phase_sum_ns(), rec.e2e_ns);
        let line = serde_json::to_string(&rec).unwrap();
        assert!(
            !line.contains("hops"),
            "empty hops must be omitted for schema stability: {line}"
        );
        let back: TraceRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, rec);

        let mut with_hops = rec;
        with_hops.hops = vec![
            HopSpan {
                dev: "client:0".into(),
                arrive_ns: 1_000,
                depart_ns: 3_000,
            },
            HopSpan {
                dev: "link:h0>s1".into(),
                arrive_ns: 3_000,
                depart_ns: 4_500,
            },
        ];
        assert_eq!(with_hops.hop_sum_ns(), 3_500);
        let line = serde_json::to_string(&with_hops).unwrap();
        let back: TraceRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, with_hops);
    }

    #[test]
    fn timeseries_points_zip_aligned_series() {
        let mut ts = TimeSeries::new(8);
        for i in 0..3u64 {
            let t = SimTime::from_nanos(i * 100);
            ts.accel_util.push(t, 0.1 * i as f64);
            ts.server_occupancy.push(t, 0.2 * i as f64);
            ts.outstanding.push(t, i as f64);
            ts.drs_groups.push(t, 0.0);
        }
        let pts: Vec<_> = ts.points().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2].t_ns, 200);
        assert!((pts[2].outstanding - 2.0).abs() < 1e-12);
        let mut buf = Vec::new();
        ts.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        let p0: SamplePoint = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(p0.t_ns, 0);
    }

    #[test]
    fn default_obs_options_observe_nothing() {
        let obs = ObsOptions::default();
        assert!(obs.trace.is_none());
        assert!(obs.timeseries.is_none());
        assert!(!obs.progress);
        assert!(format!("{obs:?}").contains("trace: false"));
    }
}
