//! Observability plumbing for the cluster simulation: per-request trace
//! records (JSONL), the virtual-time sampler's time series, and the
//! options block that [`run_observed`](crate::run_observed) takes.
//!
//! Everything here is strictly opt-in: a run with default
//! [`ObsOptions`] executes the exact event sequence an unobserved run
//! does (the sampler adds events only when enabled, and the tracer only
//! writes — it never perturbs timing).

use std::collections::BTreeMap;
use std::io::{self, Write};

use netrs_netdev::TrafficSnapshot;
use netrs_simcore::{RingSeries, SimDuration};
use serde::{DeError, Deserialize, Serialize, Value};

/// One hop of a request copy's route: the sim-time interval the copy
/// occupied one device. Emitted under `--trace-hops`.
///
/// Hops are *covering* spans: within one [`TraceRecord`] they are
/// contiguous (`hops[i].depart_ns == hops[i + 1].arrive_ns`), the first
/// arrives at `issued_ns`, the last departs at `received_ns`, and the
/// hop durations therefore telescope to `e2e_ns` exactly. Link hops
/// last one link latency; switch forwarding hops are zero-width
/// (forwarding is free in the timing model); residency hops (client
/// hold, accelerator selection, server queue + service) carry the time
/// the copy actually waited there.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HopSpan {
    /// The device occupied, in [`netrs_simcore::DeviceId`] display form
    /// (`switch:5`, `accel:5`, `server:3`, `client:7`, `link:h3>s0`).
    pub dev: String,
    /// When the copy arrived at the device (sim nanoseconds).
    pub arrive_ns: u64,
    /// When the copy left the device.
    pub depart_ns: u64,
}

impl HopSpan {
    /// Time spent on the device.
    #[must_use]
    pub fn duration_ns(&self) -> u64 {
        self.depart_ns - self.arrive_ns
    }
}

/// One JSONL line of `--trace` output: a request copy's full lifecycle,
/// decomposed into consecutive sim-time phases.
///
/// The phases telescope: `steer + selection + to_server + server_queue +
/// service + reply == e2e == received - issued`, exactly, in integer
/// nanoseconds — each phase is the difference of two consecutive event
/// timestamps along the copy's path.
///
/// Serialization is hand-written (not derived) to pin the JSONL schema:
/// field order is fixed, and `hops` is omitted entirely when empty so
/// traces without `--trace-hops` are byte-identical to the pre-hop
/// format. A golden-file test guards both shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The logical request this copy belongs to.
    pub req: u64,
    /// The server that served the copy.
    pub server: u32,
    /// Whether this copy completed the logical request (first response
    /// for reads, last for writes).
    pub first: bool,
    /// Whether the request was a write.
    pub write: bool,
    /// When the logical request was issued (sim nanoseconds).
    pub issued_ns: u64,
    /// When this copy's response reached the client.
    pub received_ns: u64,
    /// Network time from the client to the selection point (zero for
    /// client-side selection, where no steering hop exists).
    pub steer_ns: u64,
    /// Time spent selecting a replica: the accelerator's half-RTT +
    /// queue wait + processing + half-RTT in-network, or the client-side
    /// hold (rate gating, duplicate timers) for client schemes.
    pub selection_ns: u64,
    /// Accelerator queue wait alone (a sub-interval of `selection_ns`;
    /// zero for client schemes).
    pub selection_wait_ns: u64,
    /// Network time from the selection point to the server.
    pub to_server_ns: u64,
    /// Time queued at the server before a slot freed up.
    pub server_queue_ns: u64,
    /// Service time at the server.
    pub service_ns: u64,
    /// Network time from the server back to the client (via the RSNode
    /// for in-network schemes).
    pub reply_ns: u64,
    /// End-to-end: `received_ns - issued_ns`.
    pub e2e_ns: u64,
    /// The copy's hop-by-hop route ([`HopSpan`]s, chronological); empty
    /// unless hop tracing was enabled.
    pub hops: Vec<HopSpan>,
}

impl TraceRecord {
    /// The sum of the six phases; equals [`TraceRecord::e2e_ns`] by
    /// construction (the integration suite asserts it).
    #[must_use]
    pub fn phase_sum_ns(&self) -> u64 {
        self.steer_ns
            + self.selection_ns
            + self.to_server_ns
            + self.server_queue_ns
            + self.service_ns
            + self.reply_ns
    }

    /// The sum of all hop durations; equals [`TraceRecord::e2e_ns`] when
    /// hops were traced (they are contiguous covering spans).
    #[must_use]
    pub fn hop_sum_ns(&self) -> u64 {
        self.hops.iter().map(HopSpan::duration_ns).sum()
    }
}

impl Serialize for TraceRecord {
    fn ser(&self) -> Value {
        let mut o: Vec<(String, Value)> = vec![
            ("req".into(), Value::U(u128::from(self.req))),
            ("server".into(), Value::U(u128::from(self.server))),
            ("first".into(), Value::Bool(self.first)),
            ("write".into(), Value::Bool(self.write)),
            ("issued_ns".into(), Value::U(u128::from(self.issued_ns))),
            ("received_ns".into(), Value::U(u128::from(self.received_ns))),
            ("steer_ns".into(), Value::U(u128::from(self.steer_ns))),
            (
                "selection_ns".into(),
                Value::U(u128::from(self.selection_ns)),
            ),
            (
                "selection_wait_ns".into(),
                Value::U(u128::from(self.selection_wait_ns)),
            ),
            (
                "to_server_ns".into(),
                Value::U(u128::from(self.to_server_ns)),
            ),
            (
                "server_queue_ns".into(),
                Value::U(u128::from(self.server_queue_ns)),
            ),
            ("service_ns".into(), Value::U(u128::from(self.service_ns))),
            ("reply_ns".into(), Value::U(u128::from(self.reply_ns))),
            ("e2e_ns".into(), Value::U(u128::from(self.e2e_ns))),
        ];
        if !self.hops.is_empty() {
            o.push(("hops".into(), self.hops.ser()));
        }
        Value::Obj(o)
    }
}

impl Deserialize for TraceRecord {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for TraceRecord"))?;
        let f = |name: &str| serde::field(entries, name, "TraceRecord").and_then(u64::deser);
        let b = |name: &str| serde::field(entries, name, "TraceRecord").and_then(bool::deser);
        Ok(TraceRecord {
            req: f("req")?,
            server: serde::field(entries, "server", "TraceRecord").and_then(u32::deser)?,
            first: b("first")?,
            write: b("write")?,
            issued_ns: f("issued_ns")?,
            received_ns: f("received_ns")?,
            steer_ns: f("steer_ns")?,
            selection_ns: f("selection_ns")?,
            selection_wait_ns: f("selection_wait_ns")?,
            to_server_ns: f("to_server_ns")?,
            server_queue_ns: f("server_queue_ns")?,
            service_ns: f("service_ns")?,
            reply_ns: f("reply_ns")?,
            e2e_ns: f("e2e_ns")?,
            hops: match v.get("hops") {
                Some(hops) => Vec::<HopSpan>::deser(hops)?,
                None => Vec::new(),
            },
        })
    }
}

/// Configuration of the virtual-time sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerSpec {
    /// Sim-time distance between samples.
    pub interval: SimDuration,
    /// Ring-buffer capacity per series (oldest samples evicted beyond
    /// this).
    pub capacity: usize,
}

impl Default for SamplerSpec {
    fn default() -> Self {
        SamplerSpec {
            interval: SimDuration::from_millis(10),
            capacity: 65_536,
        }
    }
}

/// The sampler's output: aligned bounded time series, one sample per
/// tick in each.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    /// Mean accelerator core utilization over the last interval (zero
    /// when the scheme has no accelerators).
    pub accel_util: RingSeries,
    /// Mean instantaneous server slot occupancy.
    pub server_occupancy: RingSeries,
    /// Logical requests outstanding (issued, not yet fully drained).
    pub outstanding: RingSeries,
    /// Traffic groups currently under Degraded Replica Selection.
    pub drs_groups: RingSeries,
}

/// One JSONL line of `--timeseries` output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Sample time (sim nanoseconds).
    pub t_ns: u64,
    /// Mean accelerator core utilization over the last interval.
    pub accel_util: f64,
    /// Mean instantaneous server slot occupancy.
    pub server_occupancy: f64,
    /// Logical requests outstanding.
    pub outstanding: f64,
    /// Traffic groups under Degraded Replica Selection.
    pub drs_groups: f64,
}

impl TimeSeries {
    /// Creates empty, equally-bounded series.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TimeSeries {
            accel_util: RingSeries::new(capacity),
            server_occupancy: RingSeries::new(capacity),
            outstanding: RingSeries::new(capacity),
            drs_groups: RingSeries::new(capacity),
        }
    }

    /// Retained samples (identical across the aligned series).
    #[must_use]
    pub fn len(&self) -> usize {
        self.accel_util.len()
    }

    /// Whether no samples were taken.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accel_util.is_empty()
    }

    /// The retained samples, oldest first, re-zipped into points.
    pub fn points(&self) -> impl Iterator<Item = SamplePoint> + '_ {
        self.accel_util
            .iter()
            .zip(self.server_occupancy.iter())
            .zip(self.outstanding.iter())
            .zip(self.drs_groups.iter())
            .map(|((((t, au), (_, so)), (_, out)), (_, drs))| SamplePoint {
                t_ns: t.as_nanos(),
                accel_util: au,
                server_occupancy: so,
                outstanding: out,
                drs_groups: drs,
            })
    }

    /// Writes the retained samples as JSONL, one [`SamplePoint`] per
    /// line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        for p in self.points() {
            let line = serde_json::to_string(&p).expect("sample point serializes");
            writeln!(w, "{line}")?;
        }
        Ok(())
    }
}

/// One JSONL line of `--devices` output: everything one device
/// accumulated over the run, flattened for offline analysis.
///
/// Serialization is hand-written (not derived) to pin the JSONL schema:
/// field order is fixed, and the hot-key-cache counters are omitted
/// entirely when all zero, so cache-off reports are byte-identical to
/// the pre-cache format (the golden-run digests guard this).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceRecord {
    /// Stable device key (`switch:5`, `accel:5`, `server:3`,
    /// `client:7`, `link:h3>s0`).
    pub dev: String,
    /// Device kind (`switch`, `accel`, `server`, `client`, `link`).
    pub kind: String,
    /// The device's own tier: 0/1/2 for core/agg/ToR switches (and
    /// their accelerators), the touched switch tier for links, 3 for
    /// end-hosts.
    pub tier: u32,
    /// Packets forwarded per traffic tier (Tier-0/1/2 classification).
    pub packets: [u64; 3],
    /// Bytes forwarded per traffic tier.
    pub bytes: [u64; 3],
    /// Requests handled (server arrivals, client issues).
    pub ops: u64,
    /// Replica selections performed (accelerators only).
    pub selections: u64,
    /// Mean accelerator queue wait per selection (ns).
    pub mean_selection_wait_ns: u64,
    /// Response clones processed for selector state.
    pub clone_updates: u64,
    /// Device busy time (core-ns / slot-ns).
    pub busy_ns: u64,
    /// Busy fraction of the device's capacity over the run.
    pub utilization: f64,
    /// Sim-time-weighted mean queue depth.
    pub mean_queue_depth: f64,
    /// Deepest the device's queue ever got.
    pub max_queue_depth: u32,
    /// Work abandoned at the device (retired-RSNode fallbacks).
    pub drops: u64,
    /// Load-induced degradations (rate-controller holds, DRS
    /// forwarding).
    pub clamps: u64,
    /// Hot-key-cache reads served at the switch (RSNode operators only).
    pub cache_hits: u64,
    /// Hot-key-cache lookups that missed.
    pub cache_misses: u64,
    /// Cache hits served with an entry older than the key's committed
    /// version.
    pub cache_stale_hits: u64,
    /// Cache entries evicted to make room.
    pub cache_evictions: u64,
    /// Cache entries removed or refreshed by write coherence messages.
    pub cache_invalidations: u64,
}

impl Serialize for DeviceRecord {
    fn ser(&self) -> Value {
        let mut o: Vec<(String, Value)> = vec![
            ("dev".into(), self.dev.ser()),
            ("kind".into(), self.kind.ser()),
            ("tier".into(), self.tier.ser()),
            ("packets".into(), self.packets.ser()),
            ("bytes".into(), self.bytes.ser()),
            ("ops".into(), self.ops.ser()),
            ("selections".into(), self.selections.ser()),
            (
                "mean_selection_wait_ns".into(),
                self.mean_selection_wait_ns.ser(),
            ),
            ("clone_updates".into(), self.clone_updates.ser()),
            ("busy_ns".into(), self.busy_ns.ser()),
            ("utilization".into(), self.utilization.ser()),
            ("mean_queue_depth".into(), self.mean_queue_depth.ser()),
            ("max_queue_depth".into(), self.max_queue_depth.ser()),
            ("drops".into(), self.drops.ser()),
            ("clamps".into(), self.clamps.ser()),
        ];
        let cache_touched = self.cache_hits
            | self.cache_misses
            | self.cache_stale_hits
            | self.cache_evictions
            | self.cache_invalidations;
        if cache_touched != 0 {
            o.push(("cache_hits".into(), self.cache_hits.ser()));
            o.push(("cache_misses".into(), self.cache_misses.ser()));
            o.push(("cache_stale_hits".into(), self.cache_stale_hits.ser()));
            o.push(("cache_evictions".into(), self.cache_evictions.ser()));
            o.push(("cache_invalidations".into(), self.cache_invalidations.ser()));
        }
        Value::Obj(o)
    }
}

impl Deserialize for DeviceRecord {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for DeviceRecord"))?;
        let f = |name: &str| serde::field(entries, name, "DeviceRecord");
        // Cache counters are omitted when the device never touched a
        // cache; absent means zero.
        let cache = |name: &str| match v.get(name) {
            Some(n) => u64::deser(n),
            None => Ok(0),
        };
        Ok(DeviceRecord {
            dev: f("dev").and_then(String::deser)?,
            kind: f("kind").and_then(String::deser)?,
            tier: f("tier").and_then(u32::deser)?,
            packets: f("packets").and_then(<[u64; 3]>::deser)?,
            bytes: f("bytes").and_then(<[u64; 3]>::deser)?,
            ops: f("ops").and_then(u64::deser)?,
            selections: f("selections").and_then(u64::deser)?,
            mean_selection_wait_ns: f("mean_selection_wait_ns").and_then(u64::deser)?,
            clone_updates: f("clone_updates").and_then(u64::deser)?,
            busy_ns: f("busy_ns").and_then(u64::deser)?,
            utilization: f("utilization").and_then(f64::deser)?,
            mean_queue_depth: f("mean_queue_depth").and_then(f64::deser)?,
            max_queue_depth: f("max_queue_depth").and_then(u32::deser)?,
            drops: f("drops").and_then(u64::deser)?,
            clamps: f("clamps").and_then(u64::deser)?,
            cache_hits: cache("cache_hits")?,
            cache_misses: cache("cache_misses")?,
            cache_stale_hits: cache("cache_stale_hits")?,
            cache_evictions: cache("cache_evictions")?,
            cache_invalidations: cache("cache_invalidations")?,
        })
    }
}

/// End-of-run device telemetry: one [`DeviceRecord`] per device ever
/// touched, in stable device order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeviceStatsReport {
    /// The per-device records.
    pub records: Vec<DeviceRecord>,
    /// When the run ended (sim nanoseconds) — the utilization /
    /// mean-depth denominator.
    pub sim_end_ns: u64,
}

impl DeviceRecord {
    /// Packets forwarded across all three traffic tiers.
    #[must_use]
    pub fn total_packets(&self) -> u64 {
        self.packets.iter().sum()
    }

    /// Bytes forwarded across all three traffic tiers.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }
}

impl DeviceStatsReport {
    /// Records of one kind, registry order preserved.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a DeviceRecord> {
        self.records.iter().filter(move |r| r.kind == kind)
    }

    /// Writes the report as JSONL, one [`DeviceRecord`] per line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        for r in &self.records {
            let line = serde_json::to_string(r).expect("device record serializes");
            writeln!(w, "{line}")?;
        }
        Ok(())
    }
}

// ---- control-plane observability ------------------------------------------

/// One traffic group's share of a monitor window (a [`SnapshotRecord`]
/// entry): raw per-tier packet counts and the rates the controller's
/// [`TrafficMatrix`](netrs::TrafficMatrix) aggregation derives from them.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotGroup {
    /// The traffic group.
    pub group: u32,
    /// `[tier0, tier1, tier2]` responses observed in the window.
    pub counts: [u64; 3],
    /// The per-tier rates (responses/second) over the window.
    pub rates: [f64; 3],
}

impl Serialize for SnapshotGroup {
    fn ser(&self) -> Value {
        Value::Obj(vec![
            ("group".into(), Value::U(u128::from(self.group))),
            ("counts".into(), self.counts.ser()),
            ("rates".into(), self.rates.ser()),
        ])
    }
}

impl Deserialize for SnapshotGroup {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for SnapshotGroup"))?;
        Ok(SnapshotGroup {
            group: serde::field(entries, "group", "SnapshotGroup").and_then(u32::deser)?,
            counts: serde::field(entries, "counts", "SnapshotGroup").and_then(<[u64; 3]>::deser)?,
            rates: serde::field(entries, "rates", "SnapshotGroup").and_then(<[f64; 3]>::deser)?,
        })
    }
}

/// One `--control` JSONL line of kind `snapshot`: a per-ToR monitor
/// window ([`TrafficSnapshot`]) exactly as the controller consumed it.
/// Windows of one ToR abut (`to_ns` of one window is `from_ns` of the
/// next) and `groups` is sorted by group id.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotRecord {
    /// The measuring ToR switch.
    pub tor: u32,
    /// The ToR's pod.
    pub pod: u32,
    /// Window start (sim nanoseconds).
    pub from_ns: u64,
    /// Window end (the snapshot instant).
    pub to_ns: u64,
    /// Per-group counts and rates, ascending group order.
    pub groups: Vec<SnapshotGroup>,
}

impl SnapshotRecord {
    /// Flattens a monitor window into its export record.
    #[must_use]
    pub fn from_snapshot(snap: &TrafficSnapshot) -> Self {
        SnapshotRecord {
            tor: u32::from(snap.local.rack),
            pod: u32::from(snap.local.pod),
            from_ns: snap.from.as_nanos(),
            to_ns: snap.to.as_nanos(),
            groups: snap
                .counts
                .iter()
                .map(|&(g, counts)| SnapshotGroup {
                    group: g,
                    counts,
                    rates: snap.rates(counts),
                })
                .collect(),
        }
    }
}

impl Serialize for SnapshotRecord {
    fn ser(&self) -> Value {
        Value::Obj(vec![
            ("kind".into(), Value::Str("snapshot".into())),
            ("tor".into(), Value::U(u128::from(self.tor))),
            ("pod".into(), Value::U(u128::from(self.pod))),
            ("from_ns".into(), Value::U(u128::from(self.from_ns))),
            ("to_ns".into(), Value::U(u128::from(self.to_ns))),
            ("groups".into(), self.groups.ser()),
        ])
    }
}

impl Deserialize for SnapshotRecord {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for SnapshotRecord"))?;
        let f = |name: &str| serde::field(entries, name, "SnapshotRecord");
        Ok(SnapshotRecord {
            tor: f("tor").and_then(u32::deser)?,
            pod: f("pod").and_then(u32::deser)?,
            from_ns: f("from_ns").and_then(u64::deser)?,
            to_ns: f("to_ns").and_then(u64::deser)?,
            groups: f("groups").and_then(Vec::<SnapshotGroup>::deser)?,
        })
    }
}

/// Solver-effort metrics of one plan solve, carried by
/// [`PlanEventRecord`].
///
/// Effort is reported in deterministic units — simplex iterations and
/// branch-and-bound nodes — rather than wall-clock time, so the control
/// stream stays byte-identical across runs of the same seed (wall time
/// is not; DESIGN.md discusses the tradeoff).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveRecord {
    /// Whether the greedy fallback produced the plan (no ILP ran).
    pub greedy: bool,
    /// ILP decision variables (0 for greedy plans).
    pub variables: u64,
    /// ILP constraint rows (0 for greedy plans).
    pub constraints: u64,
    /// Simplex iterations summed over every LP relaxation solved.
    pub lp_iterations: u64,
    /// Branch-and-bound nodes expanded.
    pub branch_nodes: u64,
    /// The objective value of the installed plan (RSNode count).
    pub objective: f64,
}

impl Serialize for SolveRecord {
    fn ser(&self) -> Value {
        Value::Obj(vec![
            ("greedy".into(), Value::Bool(self.greedy)),
            ("variables".into(), Value::U(u128::from(self.variables))),
            ("constraints".into(), Value::U(u128::from(self.constraints))),
            (
                "lp_iterations".into(),
                Value::U(u128::from(self.lp_iterations)),
            ),
            (
                "branch_nodes".into(),
                Value::U(u128::from(self.branch_nodes)),
            ),
            ("objective".into(), Value::F(self.objective)),
        ])
    }
}

impl Deserialize for SolveRecord {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for SolveRecord"))?;
        let f = |name: &str| serde::field(entries, name, "SolveRecord");
        Ok(SolveRecord {
            greedy: f("greedy").and_then(bool::deser)?,
            variables: f("variables").and_then(u64::deser)?,
            constraints: f("constraints").and_then(u64::deser)?,
            lp_iterations: f("lp_iterations").and_then(u64::deser)?,
            branch_nodes: f("branch_nodes").and_then(u64::deser)?,
            objective: f("objective").and_then(f64::deser)?,
        })
    }
}

/// One `--control` JSONL line of kind `plan`: a controller decision —
/// what triggered it, the solver effort (when a solve ran), and the
/// structured diff against the previously installed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanEventRecord {
    /// When the decision was made (sim nanoseconds).
    pub t_ns: u64,
    /// What prompted it: `initial`, `replan`, `operator_fail`,
    /// `operator_recover` or `overload`.
    pub trigger: String,
    /// The operator switch concerned (fault/overload triggers only).
    pub switch: Option<u32>,
    /// Solver-effort metrics; absent when no solve ran (fault/overload
    /// degradations and the NetRS-ToR bootstrap edit the plan directly).
    pub solve: Option<SolveRecord>,
    /// Groups moved from one RSNode to another.
    pub reassigned: Vec<u32>,
    /// Groups that gained an RSNode (previously DRS or unplanned).
    pub newly_assigned: Vec<u32>,
    /// Groups that lost their RSNode (now DRS).
    pub unassigned: Vec<u32>,
    /// Switches that newly host an RSNode.
    pub rsnodes_added: Vec<u32>,
    /// Switches that no longer host one.
    pub rsnodes_removed: Vec<u32>,
    /// RSNodes in the installed plan after the decision.
    pub rsnodes: u32,
    /// Groups under Degraded Replica Selection after the decision.
    pub drs_groups: u32,
    /// Per-switch rule sets recompiled by the redeploy that followed.
    pub rules_recompiled: u32,
}

impl PlanEventRecord {
    /// Groups whose routing the decision changed.
    #[must_use]
    pub fn groups_touched(&self) -> usize {
        self.reassigned.len() + self.newly_assigned.len() + self.unassigned.len()
    }
}

fn group_list(v: &[u32]) -> Value {
    Value::Arr(v.iter().map(|&g| Value::U(u128::from(g))).collect())
}

impl Serialize for PlanEventRecord {
    fn ser(&self) -> Value {
        let mut o: Vec<(String, Value)> = vec![
            ("kind".into(), Value::Str("plan".into())),
            ("t_ns".into(), Value::U(u128::from(self.t_ns))),
            ("trigger".into(), Value::Str(self.trigger.clone())),
        ];
        if let Some(sw) = self.switch {
            o.push(("switch".into(), Value::U(u128::from(sw))));
        }
        if let Some(solve) = &self.solve {
            o.push(("solve".into(), solve.ser()));
        }
        o.push(("reassigned".into(), group_list(&self.reassigned)));
        o.push(("newly_assigned".into(), group_list(&self.newly_assigned)));
        o.push(("unassigned".into(), group_list(&self.unassigned)));
        o.push(("rsnodes_added".into(), group_list(&self.rsnodes_added)));
        o.push(("rsnodes_removed".into(), group_list(&self.rsnodes_removed)));
        o.push(("rsnodes".into(), Value::U(u128::from(self.rsnodes))));
        o.push(("drs_groups".into(), Value::U(u128::from(self.drs_groups))));
        o.push((
            "rules_recompiled".into(),
            Value::U(u128::from(self.rules_recompiled)),
        ));
        Value::Obj(o)
    }
}

impl Deserialize for PlanEventRecord {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for PlanEventRecord"))?;
        let f = |name: &str| serde::field(entries, name, "PlanEventRecord");
        let groups = |name: &str| f(name).and_then(Vec::<u32>::deser);
        Ok(PlanEventRecord {
            t_ns: f("t_ns").and_then(u64::deser)?,
            trigger: f("trigger").and_then(String::deser)?,
            switch: match v.get("switch") {
                Some(sw) => Some(u32::deser(sw)?),
                None => None,
            },
            solve: match v.get("solve") {
                Some(solve) => Some(SolveRecord::deser(solve)?),
                None => None,
            },
            reassigned: groups("reassigned")?,
            newly_assigned: groups("newly_assigned")?,
            unassigned: groups("unassigned")?,
            rsnodes_added: groups("rsnodes_added")?,
            rsnodes_removed: groups("rsnodes_removed")?,
            rsnodes: f("rsnodes").and_then(u32::deser)?,
            drs_groups: f("drs_groups").and_then(u32::deser)?,
            rules_recompiled: f("rules_recompiled").and_then(u32::deser)?,
        })
    }
}

/// One traffic group's displacement inside a [`DrsSpanRecord`]: how long
/// the group routed via Degraded Replica Selection before a re-plan
/// re-homed it or its operator recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisplacedGroup {
    /// The displaced traffic group.
    pub group: u32,
    /// Total sim time the group spent degraded during the episode.
    pub displaced_ns: u64,
}

impl Serialize for DisplacedGroup {
    fn ser(&self) -> Value {
        Value::Obj(vec![
            ("group".into(), Value::U(u128::from(self.group))),
            (
                "displaced_ns".into(),
                Value::U(u128::from(self.displaced_ns)),
            ),
        ])
    }
}

impl Deserialize for DisplacedGroup {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for DisplacedGroup"))?;
        Ok(DisplacedGroup {
            group: serde::field(entries, "group", "DisplacedGroup").and_then(u32::deser)?,
            displaced_ns: serde::field(entries, "displaced_ns", "DisplacedGroup")
                .and_then(u64::deser)?,
        })
    }
}

/// One `--control` JSONL line of kind `drs_span`: an operator-failure
/// episode joined end-to-end — crash, controller detection (when the
/// affected groups degrade to DRS), and recovery — with per-group
/// displaced-time attribution. Emitted when the operator recovers, or at
/// end of run with `recover_ns` omitted if it never did.
#[derive(Debug, Clone, PartialEq)]
pub struct DrsSpanRecord {
    /// The failed operator's switch.
    pub switch: u32,
    /// When the operator crashed (sim nanoseconds).
    pub fail_ns: u64,
    /// When the controller detected the crash and degraded the groups;
    /// absent if the run ended inside the detection delay.
    pub detect_ns: Option<u64>,
    /// When the operator recovered; absent if the run ended first.
    pub recover_ns: Option<u64>,
    /// Displaced groups, ascending group order.
    pub groups: Vec<DisplacedGroup>,
}

impl DrsSpanRecord {
    /// Total group-time displaced over the episode (ns summed across
    /// groups).
    #[must_use]
    pub fn total_displaced_ns(&self) -> u64 {
        self.groups.iter().map(|g| g.displaced_ns).sum()
    }
}

impl Serialize for DrsSpanRecord {
    fn ser(&self) -> Value {
        let mut o: Vec<(String, Value)> = vec![
            ("kind".into(), Value::Str("drs_span".into())),
            ("switch".into(), Value::U(u128::from(self.switch))),
            ("fail_ns".into(), Value::U(u128::from(self.fail_ns))),
        ];
        if let Some(t) = self.detect_ns {
            o.push(("detect_ns".into(), Value::U(u128::from(t))));
        }
        if let Some(t) = self.recover_ns {
            o.push(("recover_ns".into(), Value::U(u128::from(t))));
        }
        o.push(("groups".into(), self.groups.ser()));
        Value::Obj(o)
    }
}

impl Deserialize for DrsSpanRecord {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for DrsSpanRecord"))?;
        let f = |name: &str| serde::field(entries, name, "DrsSpanRecord");
        let opt = |name: &str| match v.get(name) {
            Some(t) => u64::deser(t).map(Some),
            None => Ok(None),
        };
        Ok(DrsSpanRecord {
            switch: f("switch").and_then(u32::deser)?,
            fail_ns: f("fail_ns").and_then(u64::deser)?,
            detect_ns: opt("detect_ns")?,
            recover_ns: opt("recover_ns")?,
            groups: f("groups").and_then(Vec::<DisplacedGroup>::deser)?,
        })
    }
}

/// One `--control` JSONL line of kind `cache`: an end-of-run audit of
/// one operator's hot-key cache — its resident size and lifetime
/// hit/miss/coherence counters. One record per live operator (ascending
/// switch order) plus, when any operator retired with a cache, one
/// aggregate record with `switch` omitted summing the retired caches.
/// Only emitted when a cache is configured, so cache-off control streams
/// are byte-identical to the pre-cache format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheRecord {
    /// When the audit ran (end of run, sim nanoseconds).
    pub t_ns: u64,
    /// The operator's switch; `None` for the retired-operator aggregate.
    pub switch: Option<u32>,
    /// Entries resident at audit time (0 for the retired aggregate —
    /// retirement flushes the cache).
    pub len: u64,
    /// Reads served from the cache.
    pub hits: u64,
    /// Reads that missed and proceeded to replica selection.
    pub misses: u64,
    /// Hits whose entry was older than the key's committed version.
    pub stale_hits: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Entries removed or refreshed by write coherence messages.
    pub invalidations: u64,
}

impl Serialize for CacheRecord {
    fn ser(&self) -> Value {
        let mut o: Vec<(String, Value)> = vec![
            ("kind".into(), Value::Str("cache".into())),
            ("t_ns".into(), Value::U(u128::from(self.t_ns))),
        ];
        if let Some(sw) = self.switch {
            o.push(("switch".into(), Value::U(u128::from(sw))));
        }
        o.push(("len".into(), Value::U(u128::from(self.len))));
        o.push(("hits".into(), Value::U(u128::from(self.hits))));
        o.push(("misses".into(), Value::U(u128::from(self.misses))));
        o.push(("stale_hits".into(), Value::U(u128::from(self.stale_hits))));
        o.push(("evictions".into(), Value::U(u128::from(self.evictions))));
        o.push((
            "invalidations".into(),
            Value::U(u128::from(self.invalidations)),
        ));
        Value::Obj(o)
    }
}

impl Deserialize for CacheRecord {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_obj()
            .ok_or_else(|| DeError::custom("expected object for CacheRecord"))?;
        let f = |name: &str| serde::field(entries, name, "CacheRecord").and_then(u64::deser);
        Ok(CacheRecord {
            t_ns: f("t_ns")?,
            switch: match v.get("switch") {
                Some(sw) => Some(u32::deser(sw)?),
                None => None,
            },
            len: f("len")?,
            hits: f("hits")?,
            misses: f("misses")?,
            stale_hits: f("stale_hits")?,
            evictions: f("evictions")?,
            invalidations: f("invalidations")?,
        })
    }
}

/// One parsed `--control` JSONL line, tagged by its `kind` field.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlRecord {
    /// A per-ToR monitor window (`kind: "snapshot"`).
    Snapshot(SnapshotRecord),
    /// A controller decision (`kind: "plan"`).
    Plan(PlanEventRecord),
    /// A joined operator-failure episode (`kind: "drs_span"`).
    DrsSpan(DrsSpanRecord),
    /// An end-of-run per-operator cache audit (`kind: "cache"`).
    Cache(CacheRecord),
}

impl Serialize for ControlRecord {
    fn ser(&self) -> Value {
        match self {
            ControlRecord::Snapshot(r) => r.ser(),
            ControlRecord::Plan(r) => r.ser(),
            ControlRecord::DrsSpan(r) => r.ser(),
            ControlRecord::Cache(r) => r.ser(),
        }
    }
}

impl Deserialize for ControlRecord {
    fn deser(v: &Value) -> Result<Self, DeError> {
        let kind = v
            .get("kind")
            .and_then(|k| k.as_str())
            .ok_or_else(|| DeError::custom("control record without a kind field"))?;
        match kind {
            "snapshot" => SnapshotRecord::deser(v).map(ControlRecord::Snapshot),
            "plan" => PlanEventRecord::deser(v).map(ControlRecord::Plan),
            "drs_span" => DrsSpanRecord::deser(v).map(ControlRecord::DrsSpan),
            "cache" => CacheRecord::deser(v).map(ControlRecord::Cache),
            other => Err(DeError::custom(format!(
                "unknown control record kind {other:?}"
            ))),
        }
    }
}

/// An operator-failure episode still in flight.
struct OpenSpan {
    fail_ns: u64,
    detect_ns: Option<u64>,
    /// Degraded groups still displaced → when each entered DRS.
    in_drs: BTreeMap<u32, u64>,
    /// Groups whose displacement already ended (a re-plan re-homed
    /// them), with their accumulated displaced time.
    displaced: Vec<DisplacedGroup>,
}

/// The control-plane observability sink: serializes snapshot, plan and
/// DRS-span records to one JSONL stream and joins operator-failure
/// episodes across crash / detection / recovery so each is emitted as a
/// single span.
///
/// Like the tracer, the sink only writes — it never perturbs event
/// timing, randomness or the controller's decisions.
pub struct ControlLog {
    w: Box<dyn Write + Send>,
    open: BTreeMap<u32, OpenSpan>,
}

impl ControlLog {
    pub(crate) fn new(w: Box<dyn Write + Send>) -> Self {
        ControlLog {
            w,
            open: BTreeMap::new(),
        }
    }

    fn write(&mut self, rec: &ControlRecord) {
        let line = serde_json::to_string(rec).expect("control record serializes");
        let _ = writeln!(self.w, "{line}");
    }

    /// Emits one monitor window.
    pub(crate) fn snapshot(&mut self, snap: &TrafficSnapshot) {
        let rec = ControlRecord::Snapshot(SnapshotRecord::from_snapshot(snap));
        self.write(&rec);
    }

    /// Emits one end-of-run cache audit record.
    pub(crate) fn cache(&mut self, rec: CacheRecord) {
        self.write(&ControlRecord::Cache(rec));
    }

    /// Emits one controller decision. Groups the decision (re)assigned
    /// stop accruing displaced time in any open failure episode.
    pub(crate) fn plan_event(&mut self, rec: PlanEventRecord) {
        for &g in rec.newly_assigned.iter().chain(rec.reassigned.iter()) {
            for span in self.open.values_mut() {
                if let Some(since) = span.in_drs.remove(&g) {
                    span.displaced.push(DisplacedGroup {
                        group: g,
                        displaced_ns: rec.t_ns - since,
                    });
                }
            }
        }
        self.write(&ControlRecord::Plan(rec));
    }

    /// Opens a failure episode: the operator at `sw` crashed (the
    /// controller does not know yet).
    pub(crate) fn operator_failed(&mut self, t_ns: u64, sw: u32) {
        self.open.entry(sw).or_insert(OpenSpan {
            fail_ns: t_ns,
            detect_ns: None,
            in_drs: BTreeMap::new(),
            displaced: Vec::new(),
        });
    }

    /// The controller detected the crash: records the detection instant
    /// and the groups that started routing via DRS, then emits the
    /// decision record.
    pub(crate) fn operator_detected(&mut self, rec: PlanEventRecord, affected: &[u32]) {
        let sw = rec.switch.expect("failure records name their switch");
        let t_ns = rec.t_ns;
        let span = self.open.entry(sw).or_insert(OpenSpan {
            fail_ns: t_ns,
            detect_ns: None,
            in_drs: BTreeMap::new(),
            displaced: Vec::new(),
        });
        span.detect_ns = Some(t_ns);
        for &g in affected {
            span.in_drs.insert(g, t_ns);
        }
        self.plan_event(rec);
    }

    /// The operator recovered: emits the decision record, closes the
    /// episode and emits its joined span. No-op if no episode was open
    /// (recover faults against never-failed operators).
    pub(crate) fn operator_recovered(&mut self, rec: PlanEventRecord) {
        let sw = rec.switch.expect("recovery records name their switch");
        if !self.open.contains_key(&sw) {
            return;
        }
        let t_ns = rec.t_ns;
        // plan_event closes the restored groups' displacement windows.
        self.plan_event(rec);
        let span = self.open.remove(&sw).expect("episode checked above");
        self.emit_span(sw, span, Some(t_ns), t_ns);
    }

    /// Emits spans for episodes still open at end of run (never
    /// recovered) and flushes the sink.
    pub(crate) fn finish(&mut self, t_ns: u64) {
        for (sw, span) in std::mem::take(&mut self.open) {
            self.emit_span(sw, span, None, t_ns);
        }
        let _ = self.w.flush();
    }

    fn emit_span(&mut self, sw: u32, mut span: OpenSpan, recover_ns: Option<u64>, t_ns: u64) {
        for (g, since) in std::mem::take(&mut span.in_drs) {
            span.displaced.push(DisplacedGroup {
                group: g,
                displaced_ns: t_ns - since,
            });
        }
        span.displaced.sort_unstable_by_key(|d| d.group);
        self.write(&ControlRecord::DrsSpan(DrsSpanRecord {
            switch: sw,
            fail_ns: span.fail_ns,
            detect_ns: span.detect_ns,
            recover_ns,
            groups: span.displaced,
        }));
    }
}

/// Configuration of the host-performance profiler (`--perf`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfOptions {
    /// Wall-clock sampling stride: every `stride`-th engine step is
    /// timed (clamped to at least 1). The default,
    /// [`PerfProbe::DEFAULT_STRIDE`](netrs_simcore::PerfProbe::DEFAULT_STRIDE),
    /// bounds profiling overhead at a few percent.
    pub stride: u32,
}

impl Default for PerfOptions {
    fn default() -> Self {
        PerfOptions {
            stride: netrs_simcore::PerfProbe::DEFAULT_STRIDE,
        }
    }
}

/// What to observe during a run. The default observes nothing and is
/// exactly the classic [`run`](crate::run).
#[derive(Default)]
pub struct ObsOptions {
    /// JSONL sink for per-request [`TraceRecord`] lines.
    pub trace: Option<Box<dyn Write + Send>>,
    /// Attach hop-by-hop route spans to each trace record (requires
    /// `trace`; adds a `hops` array per line).
    pub trace_hops: bool,
    /// Enable the virtual-time sampler.
    pub timeseries: Option<SamplerSpec>,
    /// Accumulate the per-device telemetry registry and return a
    /// [`DeviceStatsReport`].
    pub device_stats: bool,
    /// JSONL sink for control-plane [`ControlRecord`] lines: monitor
    /// snapshot windows, controller decision audits and DRS failure
    /// spans.
    pub control: Option<Box<dyn Write + Send>>,
    /// Attach the host-performance profiler and return a
    /// [`HostProfile`](crate::HostProfile) on the run output.
    pub perf: Option<PerfOptions>,
    /// Print a once-per-second heartbeat to stderr while running.
    pub progress: bool,
}

impl std::fmt::Debug for ObsOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsOptions")
            .field("trace", &self.trace.is_some())
            .field("trace_hops", &self.trace_hops)
            .field("timeseries", &self.timeseries)
            .field("device_stats", &self.device_stats)
            .field("control", &self.control.is_some())
            .field("perf", &self.perf)
            .field("progress", &self.progress)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use netrs_simcore::SimTime;

    use super::*;

    #[test]
    fn trace_record_round_trips_through_json() {
        let rec = TraceRecord {
            req: 42,
            server: 3,
            first: true,
            write: false,
            issued_ns: 1_000,
            received_ns: 9_000,
            steer_ns: 1_000,
            selection_ns: 2_000,
            selection_wait_ns: 500,
            to_server_ns: 1_500,
            server_queue_ns: 1_000,
            service_ns: 2_000,
            reply_ns: 500,
            e2e_ns: 8_000,
            hops: Vec::new(),
        };
        assert_eq!(rec.phase_sum_ns(), rec.e2e_ns);
        let line = serde_json::to_string(&rec).unwrap();
        assert!(
            !line.contains("hops"),
            "empty hops must be omitted for schema stability: {line}"
        );
        let back: TraceRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, rec);

        let mut with_hops = rec;
        with_hops.hops = vec![
            HopSpan {
                dev: "client:0".into(),
                arrive_ns: 1_000,
                depart_ns: 3_000,
            },
            HopSpan {
                dev: "link:h0>s1".into(),
                arrive_ns: 3_000,
                depart_ns: 4_500,
            },
        ];
        assert_eq!(with_hops.hop_sum_ns(), 3_500);
        let line = serde_json::to_string(&with_hops).unwrap();
        let back: TraceRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, with_hops);
    }

    #[test]
    fn timeseries_points_zip_aligned_series() {
        let mut ts = TimeSeries::new(8);
        for i in 0..3u64 {
            let t = SimTime::from_nanos(i * 100);
            ts.accel_util.push(t, 0.1 * i as f64);
            ts.server_occupancy.push(t, 0.2 * i as f64);
            ts.outstanding.push(t, i as f64);
            ts.drs_groups.push(t, 0.0);
        }
        let pts: Vec<_> = ts.points().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2].t_ns, 200);
        assert!((pts[2].outstanding - 2.0).abs() < 1e-12);
        let mut buf = Vec::new();
        ts.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        let p0: SamplePoint = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(p0.t_ns, 0);
    }

    fn plan_rec(t_ns: u64, trigger: &str, switch: Option<u32>) -> PlanEventRecord {
        PlanEventRecord {
            t_ns,
            trigger: trigger.into(),
            switch,
            solve: None,
            reassigned: Vec::new(),
            newly_assigned: Vec::new(),
            unassigned: Vec::new(),
            rsnodes_added: Vec::new(),
            rsnodes_removed: Vec::new(),
            rsnodes: 2,
            drs_groups: 0,
            rules_recompiled: 20,
        }
    }

    #[test]
    fn control_records_round_trip_through_json() {
        let snap = ControlRecord::Snapshot(SnapshotRecord {
            tor: 3,
            pod: 1,
            from_ns: 0,
            to_ns: 500_000_000,
            groups: vec![SnapshotGroup {
                group: 2,
                counts: [1, 2, 3],
                rates: [2.0, 4.0, 6.0],
            }],
        });
        let mut plan = plan_rec(500_000_000, "replan", None);
        plan.solve = Some(SolveRecord {
            greedy: false,
            variables: 40,
            constraints: 21,
            lp_iterations: 37,
            branch_nodes: 1,
            objective: 2.0,
        });
        plan.reassigned = vec![1];
        let span = ControlRecord::DrsSpan(DrsSpanRecord {
            switch: 5,
            fail_ns: 100,
            detect_ns: Some(200),
            recover_ns: None,
            groups: vec![DisplacedGroup {
                group: 1,
                displaced_ns: 300,
            }],
        });
        for rec in [snap, ControlRecord::Plan(plan), span] {
            let line = serde_json::to_string(&rec).unwrap();
            let back: ControlRecord = serde_json::from_str(&line).unwrap();
            assert_eq!(back, rec);
        }
        // Optional fields are omitted, not null.
        let bare = ControlRecord::Plan(plan_rec(0, "initial", None));
        let line = serde_json::to_string(&bare).unwrap();
        assert!(
            !line.contains("switch") && !line.contains("solve"),
            "{line}"
        );
    }

    #[test]
    fn control_log_joins_failure_episodes_into_spans() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Buf(Arc<Mutex<Vec<u8>>>);
        impl Write for Buf {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let buf = Buf(Arc::new(Mutex::new(Vec::new())));
        let mut log = ControlLog::new(Box::new(buf.clone()));
        log.operator_failed(100, 5);
        let mut detect = plan_rec(200, "operator_fail", Some(5));
        detect.unassigned = vec![1, 2];
        log.operator_detected(detect, &[1, 2]);
        // A re-plan re-homes group 1 mid-episode.
        let mut replan = plan_rec(600, "replan", None);
        replan.newly_assigned = vec![1];
        log.plan_event(replan);
        let mut recover = plan_rec(1_000, "operator_recover", Some(5));
        recover.newly_assigned = vec![2];
        log.operator_recovered(recover);
        log.finish(1_000);

        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let recs: Vec<ControlRecord> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(recs.len(), 4, "{text}");
        let ControlRecord::DrsSpan(span) = &recs[3] else {
            panic!("last record is the joined span: {text}");
        };
        assert_eq!(span.switch, 5);
        assert_eq!(span.fail_ns, 100);
        assert_eq!(span.detect_ns, Some(200));
        assert_eq!(span.recover_ns, Some(1_000));
        assert_eq!(
            span.groups,
            vec![
                DisplacedGroup {
                    group: 1,
                    displaced_ns: 400, // re-homed at the 600 ns re-plan
                },
                DisplacedGroup {
                    group: 2,
                    displaced_ns: 800, // displaced until recovery
                },
            ]
        );
        assert_eq!(span.total_displaced_ns(), 1_200);

        // Recover faults against never-failed operators emit nothing.
        log.operator_recovered(plan_rec(2_000, "operator_recover", Some(9)));
        log.finish(2_000);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn default_obs_options_observe_nothing() {
        let obs = ObsOptions::default();
        assert!(obs.trace.is_none());
        assert!(obs.timeseries.is_none());
        assert!(obs.control.is_none());
        assert!(obs.perf.is_none());
        assert!(!obs.progress);
        assert!(format!("{obs:?}").contains("trace: false"));
        assert!(format!("{obs:?}").contains("control: false"));
        assert!(format!("{obs:?}").contains("perf: None"));
    }
}
