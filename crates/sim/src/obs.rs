//! Observability plumbing for the cluster simulation: per-request trace
//! records (JSONL), the virtual-time sampler's time series, and the
//! options block that [`run_observed`](crate::run_observed) takes.
//!
//! Everything here is strictly opt-in: a run with default
//! [`ObsOptions`] executes the exact event sequence an unobserved run
//! does (the sampler adds events only when enabled, and the tracer only
//! writes — it never perturbs timing).

use std::io::{self, Write};

use netrs_simcore::{RingSeries, SimDuration};
use serde::{Deserialize, Serialize};

/// One JSONL line of `--trace` output: a request copy's full lifecycle,
/// decomposed into consecutive sim-time phases.
///
/// The phases telescope: `steer + selection + to_server + server_queue +
/// service + reply == e2e == received - issued`, exactly, in integer
/// nanoseconds — each phase is the difference of two consecutive event
/// timestamps along the copy's path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// The logical request this copy belongs to.
    pub req: u64,
    /// The server that served the copy.
    pub server: u32,
    /// Whether this copy completed the logical request (first response
    /// for reads, last for writes).
    pub first: bool,
    /// Whether the request was a write.
    pub write: bool,
    /// When the logical request was issued (sim nanoseconds).
    pub issued_ns: u64,
    /// When this copy's response reached the client.
    pub received_ns: u64,
    /// Network time from the client to the selection point (zero for
    /// client-side selection, where no steering hop exists).
    pub steer_ns: u64,
    /// Time spent selecting a replica: the accelerator's half-RTT +
    /// queue wait + processing + half-RTT in-network, or the client-side
    /// hold (rate gating, duplicate timers) for client schemes.
    pub selection_ns: u64,
    /// Accelerator queue wait alone (a sub-interval of `selection_ns`;
    /// zero for client schemes).
    pub selection_wait_ns: u64,
    /// Network time from the selection point to the server.
    pub to_server_ns: u64,
    /// Time queued at the server before a slot freed up.
    pub server_queue_ns: u64,
    /// Service time at the server.
    pub service_ns: u64,
    /// Network time from the server back to the client (via the RSNode
    /// for in-network schemes).
    pub reply_ns: u64,
    /// End-to-end: `received_ns - issued_ns`.
    pub e2e_ns: u64,
}

impl TraceRecord {
    /// The sum of the six phases; equals [`TraceRecord::e2e_ns`] by
    /// construction (the integration suite asserts it).
    #[must_use]
    pub fn phase_sum_ns(&self) -> u64 {
        self.steer_ns
            + self.selection_ns
            + self.to_server_ns
            + self.server_queue_ns
            + self.service_ns
            + self.reply_ns
    }
}

/// Configuration of the virtual-time sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerSpec {
    /// Sim-time distance between samples.
    pub interval: SimDuration,
    /// Ring-buffer capacity per series (oldest samples evicted beyond
    /// this).
    pub capacity: usize,
}

impl Default for SamplerSpec {
    fn default() -> Self {
        SamplerSpec {
            interval: SimDuration::from_millis(10),
            capacity: 65_536,
        }
    }
}

/// The sampler's output: aligned bounded time series, one sample per
/// tick in each.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    /// Mean accelerator core utilization over the last interval (zero
    /// when the scheme has no accelerators).
    pub accel_util: RingSeries,
    /// Mean instantaneous server slot occupancy.
    pub server_occupancy: RingSeries,
    /// Logical requests outstanding (issued, not yet fully drained).
    pub outstanding: RingSeries,
    /// Traffic groups currently under Degraded Replica Selection.
    pub drs_groups: RingSeries,
}

/// One JSONL line of `--timeseries` output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Sample time (sim nanoseconds).
    pub t_ns: u64,
    /// Mean accelerator core utilization over the last interval.
    pub accel_util: f64,
    /// Mean instantaneous server slot occupancy.
    pub server_occupancy: f64,
    /// Logical requests outstanding.
    pub outstanding: f64,
    /// Traffic groups under Degraded Replica Selection.
    pub drs_groups: f64,
}

impl TimeSeries {
    /// Creates empty, equally-bounded series.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TimeSeries {
            accel_util: RingSeries::new(capacity),
            server_occupancy: RingSeries::new(capacity),
            outstanding: RingSeries::new(capacity),
            drs_groups: RingSeries::new(capacity),
        }
    }

    /// Retained samples (identical across the aligned series).
    #[must_use]
    pub fn len(&self) -> usize {
        self.accel_util.len()
    }

    /// Whether no samples were taken.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accel_util.is_empty()
    }

    /// The retained samples, oldest first, re-zipped into points.
    pub fn points(&self) -> impl Iterator<Item = SamplePoint> + '_ {
        self.accel_util
            .iter()
            .zip(self.server_occupancy.iter())
            .zip(self.outstanding.iter())
            .zip(self.drs_groups.iter())
            .map(|((((t, au), (_, so)), (_, out)), (_, drs))| SamplePoint {
                t_ns: t.as_nanos(),
                accel_util: au,
                server_occupancy: so,
                outstanding: out,
                drs_groups: drs,
            })
    }

    /// Writes the retained samples as JSONL, one [`SamplePoint`] per
    /// line.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        for p in self.points() {
            let line = serde_json::to_string(&p).expect("sample point serializes");
            writeln!(w, "{line}")?;
        }
        Ok(())
    }
}

/// What to observe during a run. The default observes nothing and is
/// exactly the classic [`run`](crate::run).
#[derive(Default)]
pub struct ObsOptions {
    /// JSONL sink for per-request [`TraceRecord`] lines.
    pub trace: Option<Box<dyn Write + Send>>,
    /// Enable the virtual-time sampler.
    pub timeseries: Option<SamplerSpec>,
    /// Print a once-per-second heartbeat to stderr while running.
    pub progress: bool,
}

impl std::fmt::Debug for ObsOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsOptions")
            .field("trace", &self.trace.is_some())
            .field("timeseries", &self.timeseries)
            .field("progress", &self.progress)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use netrs_simcore::SimTime;

    use super::*;

    #[test]
    fn trace_record_round_trips_through_json() {
        let rec = TraceRecord {
            req: 42,
            server: 3,
            first: true,
            write: false,
            issued_ns: 1_000,
            received_ns: 9_000,
            steer_ns: 1_000,
            selection_ns: 2_000,
            selection_wait_ns: 500,
            to_server_ns: 1_500,
            server_queue_ns: 1_000,
            service_ns: 2_000,
            reply_ns: 500,
            e2e_ns: 8_000,
        };
        assert_eq!(rec.phase_sum_ns(), rec.e2e_ns);
        let line = serde_json::to_string(&rec).unwrap();
        let back: TraceRecord = serde_json::from_str(&line).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn timeseries_points_zip_aligned_series() {
        let mut ts = TimeSeries::new(8);
        for i in 0..3u64 {
            let t = SimTime::from_nanos(i * 100);
            ts.accel_util.push(t, 0.1 * i as f64);
            ts.server_occupancy.push(t, 0.2 * i as f64);
            ts.outstanding.push(t, i as f64);
            ts.drs_groups.push(t, 0.0);
        }
        let pts: Vec<_> = ts.points().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[2].t_ns, 200);
        assert!((pts[2].outstanding - 2.0).abs() < 1e-12);
        let mut buf = Vec::new();
        ts.write_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 3);
        let p0: SamplePoint = serde_json::from_str(text.lines().next().unwrap()).unwrap();
        assert_eq!(p0.t_ns, 0);
    }

    #[test]
    fn default_obs_options_observe_nothing() {
        let obs = ObsOptions::default();
        assert!(obs.trace.is_none());
        assert!(obs.timeseries.is_none());
        assert!(!obs.progress);
        assert!(format!("{obs:?}").contains("trace: false"));
    }
}
