//! The fabric layer: packet movement over the fat-tree.
//!
//! Everything about how a packet crosses the network lives here — ECMP
//! path replay, per-link latency accounting, and the two observation
//! channels that ride along without perturbing timing: the
//! [`DeviceProbe`] (per-device counters) and the hop log (per-copy
//! [`HopSpan`] timelines for `--trace-hops`). The fabric knows nothing
//! about schemes, requests, or servers; callers hand it endpoints, a flow
//! hash, and a hop sink.
//!
//! Timing model (§V-A): every link traversal costs `link_latency`
//! (30 µs); switch forwarding itself is free, so a packet's network time
//! is `edges × link_latency` along its (possibly RSNode-detoured) path.

use std::collections::{BTreeMap, HashMap};

use netrs_simcore::{DeviceId, DeviceProbe, NodeId, SimDuration, SimTime};
use netrs_topology::{FatTree, HostId, Link, LinkSet, SwitchId};

use crate::obs::{DeviceRecord, DeviceStatsReport, HopSpan};

/// Where observed hop spans accumulate while a copy is in flight.
#[derive(Debug, Clone, Copy)]
pub(crate) enum HopSink {
    /// Steer-phase hops of an in-network request whose target server is
    /// not known yet; sealed into a copy log at selection time.
    Pending(u64),
    /// Hops of a concrete copy `(request, server)`.
    Copy(u64, u32),
}

/// Device capacities the fabric needs to normalize utilization in the
/// device report (it does not otherwise know what sits behind a device).
pub(crate) struct DeviceCapacities {
    pub(crate) accelerator_cores: u32,
    pub(crate) server_slots: u32,
}

/// The network fabric: topology, link timing, and passive observation.
pub(crate) struct Fabric<D: DeviceProbe> {
    pub(crate) topo: FatTree,
    link_latency: SimDuration,
    /// The device probe. Layers bump counters on it directly; with
    /// [`netrs_simcore::NoDeviceProbe`] every call compiles away.
    pub(crate) devices: D,
    /// Per-copy hop spans keyed by `(request, server)`, drained when the
    /// copy's response arrives. `None` unless hop tracing is enabled.
    hop_log: Option<HashMap<(u64, u32), Vec<HopSpan>>>,
    /// Steer-phase hops of in-network requests whose server is not yet
    /// selected, keyed by request.
    pending_hops: HashMap<u64, Vec<HopSpan>>,
    /// Links currently failed by the fault plan; packets reroute around
    /// them (or are dropped when no alternative exists). Empty in
    /// fault-free runs, keeping the integer fast path bit-identical.
    dead: LinkSet,
    /// Per-link latency multipliers from `LinkDegrade` faults.
    degraded: BTreeMap<Link, f64>,
}

impl<D: DeviceProbe> Fabric<D> {
    pub(crate) fn new(topo: FatTree, link_latency: SimDuration, devices: D) -> Self {
        Fabric {
            topo,
            link_latency,
            devices,
            hop_log: None,
            pending_hops: HashMap::new(),
            dead: LinkSet::new(),
            degraded: BTreeMap::new(),
        }
    }

    pub(crate) fn enable_hop_tracing(&mut self) {
        self.hop_log = Some(HashMap::new());
    }

    /// Whether packet paths need to be walked for observation. With the
    /// default probe and hop tracing off this is `false` and every
    /// observation site reduces to an untaken branch.
    pub(crate) fn observing(&self) -> bool {
        D::ENABLED || self.hop_log.is_some()
    }

    // ---- link faults ----------------------------------------------------

    /// Marks `link` failed: ECMP reroutes around it, and copies whose only
    /// path crosses it are dropped by the caller (the `try_*` timing
    /// helpers return `None`).
    pub(crate) fn fail_link(&mut self, link: Link) {
        self.degraded.remove(&link);
        self.dead.insert(link);
    }

    /// Multiplies the latency of `link` by `factor`.
    pub(crate) fn degrade_link(&mut self, link: Link, factor: f64) {
        self.degraded.insert(link, factor);
    }

    /// Clears any failure or degradation of `link`.
    pub(crate) fn recover_link(&mut self, link: Link) {
        self.dead.remove(&link);
        self.degraded.remove(&link);
    }

    fn links_healthy(&self) -> bool {
        self.dead.is_empty() && self.degraded.is_empty()
    }

    /// Latency of one traversal of `link`, honouring degradation.
    fn edge(&self, link: Link) -> SimDuration {
        match self.degraded.get(&link) {
            Some(&f) => self.link_latency.mul_f64(f),
            None => self.link_latency,
        }
    }

    fn cost_host_to_host(&self, a: HostId, p: &[SwitchId], b: HostId) -> SimDuration {
        if p.is_empty() {
            return self.edge(Link::uplink(a));
        }
        let mut t = self.edge(Link::uplink(a));
        for w in p.windows(2) {
            t += self.edge(Link::between(w[0], w[1]));
        }
        t + self.edge(Link::uplink(b))
    }

    fn cost_host_to_switch(&self, a: HostId, p: &[SwitchId]) -> SimDuration {
        if p.is_empty() {
            return SimDuration::ZERO;
        }
        let mut t = self.edge(Link::uplink(a));
        for w in p.windows(2) {
            t += self.edge(Link::between(w[0], w[1]));
        }
        t
    }

    fn cost_switch_to_host(&self, sw: SwitchId, p: &[SwitchId], b: HostId) -> SimDuration {
        let mut t = SimDuration::ZERO;
        let mut prev = sw;
        for &s in p {
            t += self.edge(Link::between(prev, s));
            prev = s;
        }
        t + self.edge(Link::uplink(b))
    }

    /// Fault-aware [`Fabric::host_to_host`]: `None` when every candidate
    /// path crosses a failed link (the copy is lost).
    pub(crate) fn try_host_to_host(&self, a: HostId, b: HostId, hash: u64) -> Option<SimDuration> {
        if self.links_healthy() {
            return Some(self.host_to_host(a, b));
        }
        let p = self.topo.path_avoiding(a, b, hash, &self.dead).ok()?;
        Some(self.cost_host_to_host(a, &p, b))
    }

    /// The (possibly rerouted) host-to-switch path, or `None` when severed.
    pub(crate) fn host_to_switch_path(
        &self,
        a: HostId,
        sw: SwitchId,
        hash: u64,
    ) -> Option<Vec<SwitchId>> {
        if self.dead.is_empty() {
            Some(self.topo.path_host_to_switch(a, sw, hash))
        } else {
            self.topo
                .path_host_to_switch_avoiding(a, sw, hash, &self.dead)
                .ok()
        }
    }

    /// Fault-aware [`Fabric::host_to_switch`].
    pub(crate) fn try_host_to_switch(
        &self,
        a: HostId,
        sw: SwitchId,
        hash: u64,
    ) -> Option<SimDuration> {
        if self.links_healthy() {
            return Some(self.host_to_switch(a, sw));
        }
        let p = self.host_to_switch_path(a, sw, hash)?;
        Some(self.cost_host_to_switch(a, &p))
    }

    /// Fault-aware [`Fabric::switch_to_host`].
    pub(crate) fn try_switch_to_host(
        &self,
        sw: SwitchId,
        b: HostId,
        hash: u64,
    ) -> Option<SimDuration> {
        if self.links_healthy() {
            return Some(self.switch_to_host(sw, b));
        }
        let p = self
            .topo
            .path_switch_to_host_avoiding(sw, b, hash, &self.dead)
            .ok()?;
        Some(self.cost_switch_to_host(sw, &p, b))
    }

    // ---- timing ---------------------------------------------------------

    pub(crate) fn link(&self, edges: u32) -> SimDuration {
        self.link_latency * u64::from(edges)
    }

    // Every ECMP candidate between two endpoints has the same hop count,
    // so healthy-fabric timing is hash-independent and allocation-free
    // (`hops_agree_with_path_lengths` in netrs-topology pins this).

    pub(crate) fn host_to_host(&self, a: HostId, b: HostId) -> SimDuration {
        self.link(self.topo.hops(a, b) + 1)
    }

    pub(crate) fn host_to_switch(&self, a: HostId, sw: SwitchId) -> SimDuration {
        self.link(self.topo.hops_host_to_switch(a, sw))
    }

    pub(crate) fn switch_to_host(&self, sw: SwitchId, b: HostId) -> SimDuration {
        self.link(self.topo.hops_switch_to_host(sw, b) + 1)
    }

    // ---- observation ----------------------------------------------------

    fn push_hops(&mut self, sink: HopSink, hops: Vec<HopSpan>) {
        let Some(log) = self.hop_log.as_mut() else {
            return;
        };
        match sink {
            HopSink::Pending(req) => self.pending_hops.entry(req).or_default().extend(hops),
            HopSink::Copy(req, server) => log.entry((req, server)).or_default().extend(hops),
        }
    }

    /// Records the copy occupying `dev` over `[arrive, depart]` (client
    /// hold, accelerator selection, server queue + service).
    pub(crate) fn push_residency_hop(
        &mut self,
        sink: HopSink,
        dev: DeviceId,
        arrive: SimTime,
        depart: SimTime,
    ) {
        if self.hop_log.is_none() {
            return;
        }
        let hop = HopSpan {
            dev: dev.to_string(),
            arrive_ns: arrive.as_nanos(),
            depart_ns: depart.as_nanos(),
        };
        self.push_hops(sink, vec![hop]);
    }

    /// Walks one network segment (consecutive `nodes`, one link latency
    /// per edge, free switch forwarding) starting at `t0`: counts a
    /// tier-`tier` packet of `bytes` bytes at every link and switch it
    /// crosses, and logs the covering hop spans.
    fn observe_nodes(
        &mut self,
        t0: SimTime,
        nodes: &[NodeId],
        tier: usize,
        sink: HopSink,
        bytes: u64,
    ) {
        let link_latency = self.link_latency;
        let logging = self.hop_log.is_some();
        let mut hops: Vec<HopSpan> = Vec::new();
        let mut t = t0;
        for pair in nodes.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            self.devices.packet(DeviceId::Link(a, b), tier, bytes);
            // A packet occupies the (serialized) link for one traversal.
            self.devices.busy(DeviceId::Link(a, b), link_latency);
            let arrived = t + link_latency;
            if logging {
                hops.push(HopSpan {
                    dev: DeviceId::Link(a, b).to_string(),
                    arrive_ns: t.as_nanos(),
                    depart_ns: arrived.as_nanos(),
                });
            }
            t = arrived;
            if let NodeId::Switch(s) = b {
                self.devices.packet(DeviceId::Switch(s), tier, bytes);
                if logging {
                    // Forwarding is free in the timing model: zero-width.
                    hops.push(HopSpan {
                        dev: DeviceId::Switch(s).to_string(),
                        arrive_ns: t.as_nanos(),
                        depart_ns: t.as_nanos(),
                    });
                }
            }
        }
        if logging {
            self.push_hops(sink, hops);
        }
    }

    /// Observes a host-to-host packet leaving at `t0` along the same ECMP
    /// path the timing helper charged for.
    pub(crate) fn observe_host_to_host(
        &mut self,
        t0: SimTime,
        a: HostId,
        b: HostId,
        hash: u64,
        sink: HopSink,
        bytes: u64,
    ) {
        let p = if self.dead.is_empty() {
            self.topo.path(a, b, hash)
        } else {
            self.topo
                .path_avoiding(a, b, hash, &self.dead)
                .expect("observed copy must have had a live path")
        };
        let tier = self.topo.path_tier(&p).id() as usize;
        let mut nodes = Vec::with_capacity(p.len() + 2);
        nodes.push(NodeId::Host(a.0));
        nodes.extend(p.iter().map(|s| NodeId::Switch(s.0)));
        nodes.push(NodeId::Host(b.0));
        self.observe_nodes(t0, &nodes, tier, sink, bytes);
    }

    /// Observes a host-to-switch packet along `path` (which includes the
    /// destination switch, matching [`FatTree::path_host_to_switch`]).
    pub(crate) fn observe_host_to_switch(
        &mut self,
        t0: SimTime,
        a: HostId,
        path: &[SwitchId],
        sink: HopSink,
        bytes: u64,
    ) {
        let tier = self.topo.path_tier(path).id() as usize;
        let mut nodes = Vec::with_capacity(path.len() + 1);
        nodes.push(NodeId::Host(a.0));
        nodes.extend(path.iter().map(|s| NodeId::Switch(s.0)));
        self.observe_nodes(t0, &nodes, tier, sink, bytes);
    }

    /// Observes a switch-to-host packet (the starting switch is part of
    /// the segment for tier classification but was already counted on
    /// arrival there).
    pub(crate) fn observe_switch_to_host(
        &mut self,
        t0: SimTime,
        sw: SwitchId,
        b: HostId,
        hash: u64,
        sink: HopSink,
        bytes: u64,
    ) {
        let p = if self.dead.is_empty() {
            self.topo.path_switch_to_host(sw, b, hash)
        } else {
            self.topo
                .path_switch_to_host_avoiding(sw, b, hash, &self.dead)
                .expect("observed copy must have had a live path")
        };
        let tier = self.topo.path_tier(&p).min(self.topo.tier(sw)).id() as usize;
        let mut nodes = Vec::with_capacity(p.len() + 2);
        nodes.push(NodeId::Switch(sw.0));
        nodes.extend(p.iter().map(|s| NodeId::Switch(s.0)));
        nodes.push(NodeId::Host(b.0));
        self.observe_nodes(t0, &nodes, tier, sink, bytes);
    }

    /// Closes the steer phase of an in-network request: appends the
    /// residency at `dev` (the accelerator, or the retired operator's
    /// switch) ending at `until`, and moves the request's pending hops
    /// into the copy log under `(req, server)`.
    pub(crate) fn seal_steer_hops(&mut self, req: u64, server: u32, dev: DeviceId, until: SimTime) {
        if self.hop_log.is_none() {
            return;
        }
        let mut hops = self.pending_hops.remove(&req).unwrap_or_default();
        let arrive_ns = hops.last().map_or(until.as_nanos(), |h| h.depart_ns);
        hops.push(HopSpan {
            dev: dev.to_string(),
            arrive_ns,
            depart_ns: until.as_nanos(),
        });
        self.push_hops(HopSink::Copy(req, server), hops);
    }

    /// Drains the hop timeline of one received copy.
    pub(crate) fn take_copy_hops(&mut self, req: u64, server: u32) -> Vec<HopSpan> {
        self.hop_log
            .as_mut()
            .and_then(|log| log.remove(&(req, server)))
            .unwrap_or_default()
    }

    /// Takes the accumulated per-device statistics as export-ready
    /// records, if a recording probe was compiled in. Call after the run
    /// drains; `now` is the utilization / mean-depth denominator.
    pub(crate) fn take_device_report(
        &mut self,
        now: SimTime,
        caps: &DeviceCapacities,
    ) -> Option<DeviceStatsReport> {
        let registry = std::mem::take(&mut self.devices).into_registry()?;
        let node_tier = |n: NodeId| match n {
            NodeId::Host(_) => 3,
            NodeId::Switch(s) => self.topo.tier(SwitchId(s)).id(),
        };
        let records = registry
            .iter()
            .map(|(&dev, s)| {
                let (kind, tier, capacity) = match dev {
                    DeviceId::Switch(s) => ("switch", self.topo.tier(SwitchId(s)).id(), 1),
                    DeviceId::Accelerator(s) => (
                        "accel",
                        self.topo.tier(SwitchId(s)).id(),
                        caps.accelerator_cores,
                    ),
                    DeviceId::Server(_) => ("server", 3, caps.server_slots),
                    DeviceId::Client(_) => ("client", 3, 1),
                    DeviceId::Link(a, b) => ("link", node_tier(a).min(node_tier(b)), 1),
                };
                DeviceRecord {
                    dev: dev.to_string(),
                    kind: kind.to_string(),
                    tier,
                    packets: s.packets,
                    bytes: s.bytes,
                    ops: s.ops,
                    selections: s.selections,
                    mean_selection_wait_ns: s.mean_selection_wait().as_nanos(),
                    clone_updates: s.clone_updates,
                    busy_ns: u64::try_from(s.busy_ns).unwrap_or(u64::MAX),
                    utilization: s.utilization(now, capacity),
                    mean_queue_depth: s.mean_queue_depth(now),
                    max_queue_depth: s.max_depth,
                    drops: s.drops,
                    clamps: s.clamps,
                    cache_hits: s.cache_hits,
                    cache_misses: s.cache_misses,
                    cache_stale_hits: s.cache_stale_hits,
                    cache_evictions: s.cache_evictions,
                    cache_invalidations: s.cache_invalidations,
                }
            })
            .collect();
        Some(DeviceStatsReport {
            records,
            sim_end_ns: now.as_nanos(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netrs_simcore::NoDeviceProbe;

    #[test]
    fn faulted_timing_matches_path_walk() {
        // Once a link dies the slow path walks real (rerouted) paths;
        // spot-check it against the closed-form fast path on a healthy
        // twin for endpoints the fault cannot affect.
        let topo = FatTree::new(4).unwrap();
        let mut faulted = Fabric::new(topo.clone(), SimDuration::from_micros(30), NoDeviceProbe);
        let healthy = Fabric::new(topo, SimDuration::from_micros(30), NoDeviceProbe);
        faulted.fail_link(Link::uplink(HostId(15)));
        for h in 0..32u64 {
            let (a, b) = (HostId(0), HostId(9));
            assert_eq!(
                faulted.try_host_to_host(a, b, h),
                Some(healthy.host_to_host(a, b)),
                "reroute-free pairs must keep fast-path timing"
            );
        }
        assert_eq!(
            faulted.try_host_to_host(HostId(15), HostId(0), 1),
            None,
            "a severed host has no path"
        );
    }
}
