//! Full-cluster simulation of the NetRS evaluation (§V).
//!
//! This crate assembles every substrate of the workspace — the
//! discrete-event engine, the fat-tree network, the NetRS switch rules
//! and accelerators, the key-value servers and the C3 selector — into the
//! experiment the paper runs: an open-loop, Zipf-keyed, Poisson-arrival
//! read workload against a replicated key-value store, under four
//! replica-selection schemes:
//!
//! * [`Scheme::CliRs`] — clients select replicas (conventional),
//! * [`Scheme::CliRsR95`] — CliRS plus redundant requests after the 95th
//!   percentile expected latency,
//! * [`Scheme::NetRsToR`] — NetRS with RSNodes fixed at rack ToRs,
//! * [`Scheme::NetRsIlp`] — NetRS with ILP-placed RSNodes.
//!
//! # Examples
//!
//! ```
//! use netrs_sim::{run, Scheme, SimConfig};
//!
//! let mut cfg = SimConfig::small();
//! cfg.requests = 1_000;
//! cfg.scheme = Scheme::NetRsToR;
//! let stats = run(cfg);
//! assert_eq!(stats.completed, 1_000);
//! println!("mean latency: {}", stats.latency.mean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod config;
mod dense;
mod fabric;
mod obs;
pub mod perf;
mod policy;
mod runner;
mod server;
mod state;
mod stats;
pub mod sweep;
#[doc(hidden)]
pub mod testhooks;

pub use cluster::{Cluster, Ev, ReqId};
pub use config::{OverloadPolicy, PlanSource, R95Config, Scheme, SimConfig, WriteConsistency};
pub use netrs_faults::{
    AvailabilityStats, FaultEvent, FaultPlan, LinkRef, RetryPolicy, TimedFault,
};
pub use netrs_netdev::{CacheAdmission, CacheStats, CacheWritePolicy, HotCacheConfig};
pub use netrs_simcore::EngineProfile;
pub use obs::{
    CacheRecord, ControlRecord, DeviceRecord, DeviceStatsReport, DisplacedGroup, DrsSpanRecord,
    HopSpan, ObsOptions, PerfOptions, PlanEventRecord, SamplePoint, SamplerSpec, SnapshotGroup,
    SnapshotRecord, SolveRecord, TimeSeries, TraceRecord,
};
pub use perf::{
    AllocStats, HostMeta, HostProfile, KindRecord, ParallelPerf, PerfArtifact, QueueStats,
    PERF_SCHEMA_VERSION,
};
pub use policy::NotInNetwork;
pub use runner::{
    run, run_all_schemes, run_observed, run_observed_sharded, run_observed_sharded_parallel,
    run_seeds, run_seeds_sharded, run_sharded, run_sharded_parallel, ParallelOptions, RunOutput,
};
pub use server::ServerToken;
pub use stats::{LatencyBreakdown, MeanStats, ParallelStats, RunStats, RwStats};
pub use sweep::{
    run_grid, run_grid_with_cell_threads, run_sweep, run_sweep_with_cell_threads, SweepCell,
    SweepJob, SweepReport, SWEEP_SCHEMA_VERSION,
};
