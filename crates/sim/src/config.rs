//! Simulation configuration: every §V-A parameter, with the paper's
//! defaults.

use netrs::{Granularity, PlanConstraints, PlanSolver};
use netrs_faults::{FaultEvent, FaultPlan, LinkRef};
use netrs_kvstore::ServerConfig;
use netrs_netdev::{AcceleratorConfig, CacheAdmission, HotCacheConfig};
use netrs_selection::{C3Config, CubicConfig, SelectorKind};
use netrs_simcore::SimDuration;
use serde::{Deserialize, Serialize};

/// The replica-selection scheme under evaluation (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Scheme {
    /// Clients select replicas (the conventional scheme).
    #[default]
    CliRs,
    /// CliRS plus a redundant request once a primary has been outstanding
    /// longer than the client's 95th-percentile expected latency.
    CliRsR95,
    /// NetRS with the straightforward plan: each rack's ToR operator is
    /// the RSNode for the rack's requests.
    NetRsToR,
    /// NetRS with the RSNode placement determined by the ILP.
    NetRsIlp,
}

impl Scheme {
    /// All four evaluated schemes, in the paper's order.
    pub const ALL: [Scheme; 4] = [
        Scheme::CliRs,
        Scheme::CliRsR95,
        Scheme::NetRsToR,
        Scheme::NetRsIlp,
    ];

    /// The label used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Scheme::CliRs => "CliRS",
            Scheme::CliRsR95 => "CliRS-R95",
            Scheme::NetRsToR => "NetRS-ToR",
            Scheme::NetRsIlp => "NetRS-ILP",
        }
    }

    /// Whether the scheme performs replica selection in the network.
    #[must_use]
    pub fn is_in_network(self) -> bool {
        matches!(self, Scheme::NetRsToR | Scheme::NetRsIlp)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for Scheme {
    type Err = String;

    /// Parses a paper label case-insensitively (`"CliRS"`, `"clirs-r95"`,
    /// `"netrs-tor"`, `"NetRS-ILP"`, …), round-tripping with
    /// [`Scheme::label`] / [`std::fmt::Display`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Scheme::ALL
            .into_iter()
            .find(|scheme| scheme.label().eq_ignore_ascii_case(s))
            .ok_or_else(|| {
                format!(
                    "unknown scheme '{s}' (expected one of: {})",
                    Scheme::ALL.map(Scheme::label).join(", ")
                )
            })
    }
}

/// How the controller obtains the traffic matrix for NetRS-ILP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum PlanSource {
    /// Compute `T` analytically from the workload specification (the
    /// steady state the monitors would converge to).
    #[default]
    Oracle,
    /// Bootstrap with the ToR plan, then re-plan periodically from ToR
    /// monitor snapshots — the paper's dynamic deployment, including the
    /// transient after each new RSP.
    Monitored {
        /// Re-planning period.
        interval: SimDuration,
    },
}

/// Parameters of the CliRS-R95 redundant-request policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct R95Config {
    /// Quantile of the client's own latency distribution after which a
    /// duplicate is issued (0.95 in the paper's CliRS-R95).
    pub quantile: f64,
    /// Minimum completed samples before duplicates are armed.
    pub min_samples: u64,
}

impl Default for R95Config {
    fn default() -> Self {
        R95Config {
            quantile: 0.95,
            min_samples: 30,
        }
    }
}

/// How a write is committed across its replica group before the client
/// counts it done.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WriteConsistency {
    /// Fan out to every replica; the write completes when the *last*
    /// replica responds (the historical behavior — fixed-seed runs
    /// predating consistency modes reproduce byte-identically).
    #[default]
    All,
    /// Fan out to every replica; the write is acknowledged at the `w`-th
    /// replica response (`w` is clamped to `[1, replication]`). Straggler
    /// replicas still drain in the background.
    Quorum {
        /// Replica responses required before the ack.
        w: u32,
    },
    /// Chain replication: the write visits the replicas serially
    /// (head → … → tail) and the tail's response acknowledges it. One
    /// copy is ever in flight.
    Chain,
}

impl WriteConsistency {
    /// The effective quorum for a group of `n` replicas: how many
    /// replica commits precede the ack.
    #[must_use]
    pub fn required_acks(self, n: u32) -> u32 {
        match self {
            WriteConsistency::All | WriteConsistency::Chain => n,
            WriteConsistency::Quorum { w } => w.clamp(1, n),
        }
    }
}

/// When the controller treats an operator as overloaded (§III-C(ii)).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverloadPolicy {
    /// How often accelerator utilization is checked.
    pub interval: SimDuration,
    /// Windowed core-utilization threshold above which the operator's
    /// traffic groups degrade to DRS.
    pub utilization_limit: f64,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        OverloadPolicy {
            interval: SimDuration::from_millis(100),
            utilization_limit: 0.9,
        }
    }
}

/// The full simulation configuration. [`SimConfig::paper`] reproduces the
/// §V-A defaults; [`SimConfig::small`] is a laptop-scale setup for tests
/// and examples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Fat-tree arity `k` (paper: 16 → 1024 hosts).
    pub arity: u32,
    /// Number of storage servers `Ns` (paper: 100).
    pub servers: u32,
    /// Number of client hosts (paper default: 500).
    pub clients: u32,
    /// Number of Poisson workload generators (paper: 200).
    pub generators: u32,
    /// Replication factor (paper: 3).
    pub replication: u32,
    /// Virtual nodes per server on the consistent-hash ring.
    pub vnodes: u32,
    /// Key-space size (paper: 100 million).
    pub keys: u64,
    /// Zipf exponent of key popularity (paper: 0.99).
    pub zipf: f64,
    /// Server queueing model (Np, tkv, fluctuation).
    pub server: ServerConfig,
    /// Nominal system utilization `tkv·A/(Ns·Np)` (paper default: 90 %).
    pub utilization: f64,
    /// Demand skew: fraction of requests issued by the top 20 % of
    /// clients (`None` = uniform demand).
    pub demand_skew: Option<f64>,
    /// Total requests to issue (paper: 6 million).
    pub requests: u64,
    /// Leading fraction of requests excluded from latency statistics.
    pub warmup_fraction: f64,
    /// Latency of each network link traversal (paper: 30 µs between
    /// directly connected switches).
    pub link_latency: SimDuration,
    /// The scheme under test.
    pub scheme: Scheme,
    /// Replica-selection algorithm run at RSNodes (paper: C3 throughout).
    pub selector: SelectorKind,
    /// C3 parameters (concurrency compensation is filled in per scheme).
    pub c3: C3Config,
    /// Cubic rate control at CliRS clients (`None` = scoring only; the
    /// ABL-B ablation turns this on).
    pub rate_control: Option<CubicConfig>,
    /// Redundant-request policy for CliRS-R95.
    pub r95: R95Config,
    /// Accelerator model on each NetRS operator.
    pub accelerator: AcceleratorConfig,
    /// Placement constraints for NetRS-ILP (U, E, capacities).
    pub plan: PlanConstraints,
    /// Placement solver for NetRS-ILP.
    pub plan_solver: PlanSolver,
    /// Where the controller's traffic matrix comes from.
    pub plan_source: PlanSource,
    /// Traffic-group granularity (paper evaluates rack-level).
    pub granularity: Granularity,
    /// Fraction of requests that are writes (extension; the paper's
    /// workload is read-only). Writes go to the replica group as plain
    /// traffic — no replica selection — and complete per
    /// [`SimConfig::write_consistency`].
    pub write_fraction: f64,
    /// When a write is acknowledged: last replica (`All`, the default),
    /// a `W`-of-`N` quorum, or chain replication.
    pub write_consistency: WriteConsistency,
    /// In-switch hot-key cache at each RSNode operator (`None` = off;
    /// client schemes never consult it either way).
    pub hot_cache: Option<HotCacheConfig>,
    /// Overload detection at NetRS operators (§III-C(ii)); `None`
    /// disables the check.
    pub overload: Option<OverloadPolicy>,
    /// Scripted fault plan (crashes, link failures, operator fail-stops,
    /// loss bursts) with its retry and recovery-detection policies.
    /// `None` — or a plan with no events — leaves the run byte-identical
    /// to the fault-free simulation.
    pub faults: Option<FaultPlan>,
    /// Root random seed (placement, workload, service times).
    pub seed: u64,
}

impl SimConfig {
    /// The §V-A parameters: 16-ary fat-tree, 100 servers, 500 clients,
    /// 200 generators, 6 M requests, 90 % utilization.
    #[must_use]
    pub fn paper() -> Self {
        SimConfig {
            arity: 16,
            servers: 100,
            clients: 500,
            generators: 200,
            replication: 3,
            vnodes: 64,
            keys: 100_000_000,
            zipf: 0.99,
            server: ServerConfig::default(),
            utilization: 0.9,
            demand_skew: None,
            requests: 6_000_000,
            warmup_fraction: 0.05,
            link_latency: SimDuration::from_micros(30),
            scheme: Scheme::CliRs,
            selector: SelectorKind::C3,
            c3: C3Config::default(),
            rate_control: None,
            r95: R95Config::default(),
            accelerator: AcceleratorConfig::default(),
            plan: PlanConstraints {
                // E = 20%·A is filled in by `finalize_hop_budget`.
                ..PlanConstraints::default()
            },
            plan_solver: PlanSolver::default(),
            plan_source: PlanSource::Oracle,
            granularity: Granularity::Rack,
            write_fraction: 0.0,
            write_consistency: WriteConsistency::All,
            hot_cache: None,
            overload: None,
            faults: None,
            seed: 1,
        }
    }

    /// A small configuration (4-ary tree, 6 servers, 8 clients) for
    /// tests, examples and doc runs.
    #[must_use]
    pub fn small() -> Self {
        SimConfig {
            arity: 4,
            servers: 6,
            clients: 8,
            generators: 4,
            vnodes: 16,
            keys: 10_000,
            requests: 5_000,
            ..SimConfig::paper()
        }
    }

    /// The fixed mid-size configuration the `repro perf` subcommand times
    /// (8-ary tree, 32 servers, 64 clients, 1 M keys, 600 k requests).
    /// Large enough that per-event constant factors dominate, small
    /// enough that all four schemes finish in seconds. Change it only
    /// together with a re-baseline of `BENCH_PERF.json` (see DESIGN.md
    /// "Performance").
    #[must_use]
    pub fn perf() -> Self {
        SimConfig {
            arity: 8,
            servers: 32,
            clients: 64,
            generators: 32,
            vnodes: 32,
            keys: 1_000_000,
            requests: 600_000,
            ..SimConfig::paper()
        }
    }

    /// The aggregate request arrival rate `A` (requests/second) implied
    /// by the configured nominal utilization: `A = u·Ns·Np / tkv`.
    #[must_use]
    pub fn arrival_rate(&self) -> f64 {
        self.utilization * f64::from(self.servers) * f64::from(self.server.slots)
            / self.server.base_service_time.as_secs_f64()
    }

    /// Fills the paper's `E = 20%·A` extra-hop budget (and leaves an
    /// explicitly set finite budget alone).
    #[must_use]
    pub fn finalize(mut self) -> Self {
        if self.plan.extra_hop_budget.is_infinite() {
            self.plan.extra_hop_budget = 0.2 * self.arrival_rate();
        }
        self
    }

    /// Validates cross-field invariants.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// invariant.
    pub fn validate(&self) -> Result<(), String> {
        let hosts = self.arity * self.arity * self.arity / 4;
        if self.servers + self.clients > hosts {
            return Err(format!(
                "{} servers + {} clients exceed {} hosts (each host has one role)",
                self.servers, self.clients, hosts
            ));
        }
        if self.servers == 0 {
            return Err("need at least one server".into());
        }
        if self.replication == 0 {
            return Err("replication factor must be at least 1".into());
        }
        if self.servers < self.replication {
            return Err(format!(
                "replication factor {} exceeds server count {}",
                self.replication, self.servers
            ));
        }
        if self.generators == 0 || self.clients == 0 {
            return Err("need at least one generator and one client".into());
        }
        if !(0.0..=1.0).contains(&self.warmup_fraction) {
            return Err("warmup fraction must be in [0, 1]".into());
        }
        if let Some(s) = self.demand_skew {
            if !(0.0..=1.0).contains(&s) {
                return Err("demand skew must be in [0, 1]".into());
            }
        }
        if self.utilization <= 0.0 {
            return Err("utilization must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.write_fraction) {
            return Err("write fraction must be in [0, 1]".into());
        }
        if let WriteConsistency::Quorum { w } = self.write_consistency {
            if w == 0 || w > self.replication {
                return Err(format!(
                    "write quorum {w} must be in [1, replication factor {}]",
                    self.replication
                ));
            }
        }
        if let Some(cache) = self.hot_cache {
            if cache.capacity == 0 {
                return Err("hot-key cache capacity must be at least 1".into());
            }
            if let CacheAdmission::Frequency { threshold } = cache.admission {
                if threshold == 0 {
                    return Err("frequency admission threshold must be at least 1".into());
                }
            }
        }
        if let Some(policy) = self.overload {
            if policy.utilization_limit <= 0.0 || policy.interval == SimDuration::ZERO {
                return Err("overload policy needs a positive limit and interval".into());
            }
        }
        if self.r95.quantile <= 0.0 || self.r95.quantile >= 1.0 || self.r95.min_samples == 0 {
            return Err(format!(
                "inconsistent R95 config: quantile {} must be in (0, 1) and \
                 min_samples {} must be at least 1",
                self.r95.quantile, self.r95.min_samples
            ));
        }
        if let Some(plan) = &self.faults {
            plan.validate()?;
            self.validate_fault_targets(plan)?;
        }
        Ok(())
    }

    /// Checks every fault target against this configuration's topology
    /// and server count (the plan's own invariants are
    /// [`FaultPlan::validate`]'s job).
    fn validate_fault_targets(&self, plan: &FaultPlan) -> Result<(), String> {
        let hosts = self.arity * self.arity * self.arity / 4;
        // ToRs + aggs + cores of a k-ary fat-tree.
        let switches =
            self.arity * self.arity / 2 + self.arity * self.arity / 2 + self.arity * self.arity / 4;
        let check_link = |i: usize, link: LinkRef| match link {
            LinkRef::HostUplink { host } if host >= hosts => {
                Err(format!("fault {i}: host {host} out of range (< {hosts})"))
            }
            LinkRef::SwitchLink { a, b } if a >= switches || b >= switches => Err(format!(
                "fault {i}: switch link {a}-{b} out of range (< {switches})"
            )),
            _ => Ok(()),
        };
        for (i, ev) in plan.events.iter().enumerate() {
            match ev.fault {
                FaultEvent::ServerCrash { server }
                | FaultEvent::ServerRecover { server }
                | FaultEvent::ServerSlowdown { server, .. } => {
                    if server >= self.servers {
                        return Err(format!(
                            "fault {i}: server {server} out of range (< {})",
                            self.servers
                        ));
                    }
                }
                FaultEvent::LinkFail { link }
                | FaultEvent::LinkDegrade { link, .. }
                | FaultEvent::LinkRecover { link } => check_link(i, link)?,
                FaultEvent::OperatorFail { switch } | FaultEvent::OperatorRecover { switch } => {
                    if switch >= switches {
                        return Err(format!(
                            "fault {i}: switch {switch} out of range (< {switches})"
                        ));
                    }
                }
                FaultEvent::PacketLossBurst { .. } => {}
            }
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arrival_rate_matches_formula() {
        // A = 0.9 * 100 * 4 / 4ms = 90,000 requests/second.
        let cfg = SimConfig::paper();
        assert!((cfg.arrival_rate() - 90_000.0).abs() < 1e-6);
    }

    #[test]
    fn finalize_sets_hop_budget_to_20_percent() {
        let cfg = SimConfig::paper().finalize();
        assert!((cfg.plan.extra_hop_budget - 18_000.0).abs() < 1e-6);
        // An explicit budget is preserved.
        let mut cfg = SimConfig::paper();
        cfg.plan.extra_hop_budget = 5.0;
        assert_eq!(cfg.finalize().plan.extra_hop_budget, 5.0);
    }

    #[test]
    fn validation_catches_bad_configs() {
        assert!(SimConfig::paper().validate().is_ok());
        assert!(SimConfig::small().validate().is_ok());

        let mut too_many = SimConfig::small();
        too_many.clients = 100;
        assert!(too_many.validate().unwrap_err().contains("hosts"));

        let mut low_rep = SimConfig::small();
        low_rep.servers = 2;
        assert!(low_rep.validate().unwrap_err().contains("replication"));

        let mut bad_skew = SimConfig::small();
        bad_skew.demand_skew = Some(1.5);
        assert!(bad_skew.validate().is_err());

        let mut bad_warm = SimConfig::small();
        bad_warm.warmup_fraction = 2.0;
        assert!(bad_warm.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_servers() {
        let mut cfg = SimConfig::small();
        cfg.servers = 0;
        cfg.replication = 0; // slip past the replication-vs-servers check
        assert!(cfg.validate().is_err());
        let mut cfg = SimConfig::small();
        cfg.servers = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_zero_replication() {
        let mut cfg = SimConfig::small();
        cfg.replication = 0;
        assert!(cfg
            .validate()
            .unwrap_err()
            .contains("replication factor must be at least 1"));
    }

    #[test]
    fn validation_rejects_zero_generators_and_clients() {
        let mut cfg = SimConfig::small();
        cfg.generators = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SimConfig::small();
        cfg.clients = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_rejects_inconsistent_r95() {
        for (quantile, min_samples) in [(0.0, 30), (1.0, 30), (-0.5, 30), (1.5, 30), (0.95, 0)] {
            let mut cfg = SimConfig::small();
            cfg.r95 = R95Config {
                quantile,
                min_samples,
            };
            assert!(
                cfg.validate().unwrap_err().contains("R95"),
                "quantile {quantile} / min_samples {min_samples} should be rejected"
            );
        }
    }

    #[test]
    fn validation_rejects_bad_overload_policy() {
        let mut cfg = SimConfig::small();
        cfg.overload = Some(OverloadPolicy {
            interval: SimDuration::ZERO,
            utilization_limit: 0.9,
        });
        assert!(cfg.validate().is_err());
        let mut cfg = SimConfig::small();
        cfg.overload = Some(OverloadPolicy {
            interval: SimDuration::from_millis(100),
            utilization_limit: 0.0,
        });
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn scheme_parse_round_trips_with_display() {
        for scheme in Scheme::ALL {
            let parsed: Scheme = scheme.to_string().parse().unwrap();
            assert_eq!(parsed, scheme);
            // CLI-style lowercase labels parse too.
            let parsed: Scheme = scheme.label().to_ascii_lowercase().parse().unwrap();
            assert_eq!(parsed, scheme);
        }
        assert_eq!("netrs-tor".parse::<Scheme>(), Ok(Scheme::NetRsToR));
        let err = "paxos".parse::<Scheme>().unwrap_err();
        assert!(err.contains("unknown scheme 'paxos'"));
        assert!(err.contains("CliRS-R95"), "error lists valid labels: {err}");
    }

    #[test]
    fn scheme_labels_match_paper() {
        assert_eq!(Scheme::CliRs.label(), "CliRS");
        assert_eq!(Scheme::CliRsR95.label(), "CliRS-R95");
        assert_eq!(Scheme::NetRsToR.to_string(), "NetRS-ToR");
        assert_eq!(Scheme::NetRsIlp.to_string(), "NetRS-ILP");
        assert!(Scheme::NetRsIlp.is_in_network());
        assert!(!Scheme::CliRsR95.is_in_network());
    }

    #[test]
    fn config_serializes_round_trip() {
        let cfg = SimConfig::paper().finalize();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        // The RW extension fields round-trip too. (Base on the finalized
        // paper config: `small()` leaves `extra_hop_budget` infinite, and
        // JSON has no representation of non-finite floats.)
        let mut cfg = SimConfig::paper().finalize();
        cfg.write_fraction = 0.1;
        cfg.write_consistency = WriteConsistency::Quorum { w: 2 };
        cfg.hot_cache = Some(HotCacheConfig {
            capacity: 64,
            admission: CacheAdmission::Frequency { threshold: 2 },
            ..HotCacheConfig::default()
        });
        let json = serde_json::to_string(&cfg).unwrap();
        let back: SimConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn validation_rejects_bad_quorum_and_cache() {
        let mut cfg = SimConfig::small(); // replication 3
        cfg.write_consistency = WriteConsistency::Quorum { w: 0 };
        assert!(cfg.validate().unwrap_err().contains("quorum"));
        cfg.write_consistency = WriteConsistency::Quorum { w: 4 };
        assert!(cfg.validate().unwrap_err().contains("quorum"));
        cfg.write_consistency = WriteConsistency::Quorum { w: 3 };
        assert!(cfg.validate().is_ok());

        let mut cfg = SimConfig::small();
        cfg.hot_cache = Some(HotCacheConfig {
            capacity: 0,
            ..HotCacheConfig::default()
        });
        assert!(cfg.validate().unwrap_err().contains("capacity"));
        let mut cfg = SimConfig::small();
        cfg.hot_cache = Some(HotCacheConfig {
            admission: CacheAdmission::Frequency { threshold: 0 },
            ..HotCacheConfig::default()
        });
        assert!(cfg.validate().unwrap_err().contains("threshold"));
    }

    #[test]
    fn required_acks_clamps_to_group_size() {
        assert_eq!(WriteConsistency::All.required_acks(3), 3);
        assert_eq!(WriteConsistency::Chain.required_acks(3), 3);
        assert_eq!(WriteConsistency::Quorum { w: 2 }.required_acks(3), 2);
        assert_eq!(WriteConsistency::Quorum { w: 9 }.required_acks(3), 3);
        assert_eq!(WriteConsistency::Quorum { w: 0 }.required_acks(3), 1);
    }

    #[test]
    fn validation_checks_fault_targets_against_topology() {
        use netrs_faults::TimedFault;

        let with_fault = |fault: FaultEvent| {
            let mut cfg = SimConfig::small(); // arity 4: 16 hosts, 20 switches
            cfg.faults = Some(FaultPlan {
                events: vec![TimedFault {
                    at: SimDuration::from_millis(1),
                    fault,
                }],
                ..FaultPlan::default()
            });
            cfg
        };
        assert!(with_fault(FaultEvent::ServerCrash { server: 0 })
            .validate()
            .is_ok());
        assert!(with_fault(FaultEvent::ServerCrash { server: 6 })
            .validate()
            .unwrap_err()
            .contains("server 6"));
        assert!(with_fault(FaultEvent::LinkFail {
            link: LinkRef::HostUplink { host: 16 }
        })
        .validate()
        .unwrap_err()
        .contains("host 16"));
        assert!(with_fault(FaultEvent::LinkDegrade {
            link: LinkRef::SwitchLink { a: 0, b: 20 },
            factor: 2.0,
        })
        .validate()
        .unwrap_err()
        .contains("out of range"));
        assert!(with_fault(FaultEvent::OperatorFail { switch: 20 })
            .validate()
            .unwrap_err()
            .contains("switch 20"));
        // The plan's own invariants are checked through the same path.
        let mut cfg = SimConfig::small();
        cfg.faults = Some(FaultPlan {
            recovery_tolerance: 0.5,
            ..FaultPlan::default()
        });
        assert!(cfg.validate().unwrap_err().contains("tolerance"));
    }
}
