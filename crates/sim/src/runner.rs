//! Experiment execution: single runs, multi-seed repetition, and scheme
//! sweeps.

use crossbeam::thread;

use netrs_simcore::Engine;

use crate::cluster::Cluster;
use crate::config::{Scheme, SimConfig};
use crate::stats::RunStats;

/// Runs one configuration to completion and returns its statistics.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`SimConfig::validate`]).
///
/// # Examples
///
/// ```
/// use netrs_sim::{run, SimConfig};
///
/// let mut cfg = SimConfig::small();
/// cfg.requests = 500;
/// let stats = run(cfg);
/// assert_eq!(stats.completed, 500);
/// ```
#[must_use]
pub fn run(cfg: SimConfig) -> RunStats {
    let mut engine = Engine::new(Cluster::new(cfg));
    {
        // Split borrows: prime needs the world and the queue.
        let engine = &mut engine;
        let mut queue = std::mem::take(engine.queue_mut());
        engine.world_mut().prime(&mut queue);
        *engine.queue_mut() = queue;
    }
    engine.run();
    let now = engine.now();
    let events = engine.processed();
    let cluster = engine.into_world();
    debug_assert!(cluster.drained(), "simulation ended with work outstanding");
    cluster.stats(now, events)
}

/// Runs the same configuration under `seeds.len()` different seeds (the
/// paper repeats every experiment 3 times with different random
/// deployments), in parallel threads.
#[must_use]
pub fn run_seeds(cfg: &SimConfig, seeds: &[u64]) -> Vec<RunStats> {
    thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let mut cfg = cfg.clone();
                cfg.seed = seed;
                scope.spawn(move |_| run(cfg))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("simulation thread panicked"))
            .collect()
    })
    .expect("crossbeam scope")
}

/// Runs every scheme of the paper's comparison under the same base
/// configuration and seeds. Returns `(scheme, per-seed stats)` in the
/// paper's ordering.
#[must_use]
pub fn run_all_schemes(base: &SimConfig, seeds: &[u64]) -> Vec<(Scheme, Vec<RunStats>)> {
    Scheme::ALL
        .iter()
        .map(|&scheme| {
            let mut cfg = base.clone();
            cfg.scheme = scheme;
            (scheme, run_seeds(&cfg, seeds))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(scheme: Scheme) -> SimConfig {
        let mut cfg = SimConfig::small();
        cfg.requests = 2_000;
        cfg.scheme = scheme;
        cfg.seed = 7;
        cfg
    }

    #[test]
    fn clirs_run_completes_all_requests() {
        let stats = run(tiny(Scheme::CliRs));
        assert_eq!(stats.issued, 2_000);
        assert_eq!(stats.completed, 2_000);
        assert!(stats.latency.count > 0);
        assert!(stats.latency.mean > netrs_simcore::SimDuration::ZERO);
        assert_eq!(stats.rsnode_count, 0);
        assert_eq!(stats.duplicates, 0);
    }

    #[test]
    fn netrs_tor_run_completes_with_rsnodes() {
        let stats = run(tiny(Scheme::NetRsToR));
        assert_eq!(stats.completed, 2_000);
        assert!(stats.rsnode_count > 0);
        assert_eq!(
            stats.rsnode_census[2], stats.rsnode_count,
            "NetRS-ToR places every RSNode on a ToR: {:?}",
            stats.rsnode_census
        );
        assert!(stats.mean_accel_utilization > 0.0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run(tiny(Scheme::NetRsIlp));
        let b = run(tiny(Scheme::NetRsIlp));
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.events, b.events);
        let mut other = tiny(Scheme::NetRsIlp);
        other.seed = 8;
        let c = run(other);
        assert_ne!(a.latency, c.latency, "different seeds should differ");
    }

    #[test]
    fn run_seeds_spawns_one_run_per_seed() {
        let runs = run_seeds(&tiny(Scheme::CliRs), &[1, 2, 3]);
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.completed == 2_000));
        let means: std::collections::HashSet<u64> = runs
            .iter()
            .map(|r| r.latency.mean.as_nanos())
            .collect();
        assert!(means.len() > 1, "seeds should differ");
    }
}
