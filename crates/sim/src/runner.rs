//! Experiment execution: single runs (instrumented or not), multi-seed
//! repetition, and scheme sweeps.

use std::time::{Duration, Instant};

use netrs_simcore::{
    DeviceProbe, DeviceStatsRegistry, Engine, EngineProfile, NoDeviceProbe, NoProbe, PerfProbe,
    PerfReport, Probe, ShardedEngine,
};

use crate::cluster::Cluster;
use crate::config::{Scheme, SimConfig};
use crate::obs::{DeviceStatsReport, ObsOptions, TimeSeries};
use crate::perf::{self, AllocStats, HostMeta, HostProfile, QueueStats, PERF_SCHEMA_VERSION};
use crate::stats::{ParallelStats, RunStats};
use netrs_simcore::ParallelShardedEngine;

/// Everything an observed run produces.
#[derive(Debug)]
pub struct RunOutput {
    /// The run's statistics (identical to what [`run`] returns).
    pub stats: RunStats,
    /// The engine's self-measurement.
    pub profile: EngineProfile,
    /// The sampler's time series, if [`ObsOptions::timeseries`] was set.
    pub timeseries: Option<TimeSeries>,
    /// Per-device telemetry, if [`ObsOptions::device_stats`] was set.
    pub devices: Option<DeviceStatsReport>,
    /// The host-performance profile, if [`ObsOptions::perf`] was set.
    pub perf: Option<HostProfile>,
    /// Per-shard busy wall-time (ns) from the replica engine's worker
    /// pool; `None` on every other path. Wall-clock data — never folded
    /// into [`RunStats`].
    pub busy_ns: Option<Vec<u64>>,
}

/// Runs one configuration to completion and returns its statistics.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`SimConfig::validate`]).
///
/// # Examples
///
/// ```
/// use netrs_sim::{run, SimConfig};
///
/// let mut cfg = SimConfig::small();
/// cfg.requests = 500;
/// let stats = run(cfg);
/// assert_eq!(stats.completed, 500);
/// ```
#[must_use]
pub fn run(cfg: SimConfig) -> RunStats {
    run_observed(cfg, ObsOptions::default()).stats
}

/// Runs one configuration with observability attached: an optional JSONL
/// request tracer, the virtual-time sampler, and a stderr progress
/// heartbeat. With default options this is exactly [`run`].
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`SimConfig::validate`]).
#[must_use]
pub fn run_observed(cfg: SimConfig, obs: ObsOptions) -> RunOutput {
    // Dispatch once on the probe type so the default path keeps the
    // monomorphized no-op probe (acceptance: disabled telemetry is
    // byte-for-byte the uninstrumented simulation).
    if obs.device_stats {
        run_observed_with(cfg, obs, DeviceStatsRegistry::default())
    } else {
        run_observed_with(cfg, obs, NoDeviceProbe)
    }
}

fn run_observed_with<D: DeviceProbe>(cfg: SimConfig, mut obs: ObsOptions, devices: D) -> RunOutput {
    // Second dispatch: the perf probe is monomorphized in exactly like
    // the device probe, so a non-profiled run keeps NoProbe and its
    // compiled-away hooks.
    match obs.perf.take() {
        Some(popt) => {
            let scheme = cfg.scheme;
            let seed = cfg.seed;
            let requests = cfg.requests;
            let alloc_before = alloc_mark();
            let probe = PerfProbe::new(perf::kind_names(), popt.stride);
            let (mut out, probe) = run_engine(cfg, obs, devices, probe);
            out.perf = Some(host_profile(
                scheme,
                seed,
                requests,
                &out.profile,
                &probe.report(),
                alloc_since(alloc_before),
            ));
            out
        }
        None => run_engine(cfg, obs, devices, NoProbe).0,
    }
}

fn run_engine<D: DeviceProbe, P: Probe>(
    cfg: SimConfig,
    obs: ObsOptions,
    devices: D,
    probe: P,
) -> (RunOutput, P) {
    let total_requests = cfg.requests;
    let mut cluster = Cluster::with_device_probe(cfg, devices);
    if let Some(w) = obs.trace {
        cluster.set_tracer(w);
    }
    if let Some(spec) = obs.timeseries {
        cluster.enable_sampler(spec);
    }
    if obs.trace_hops {
        cluster.enable_hop_tracing();
    }
    if let Some(w) = obs.control {
        cluster.set_control(w);
    }
    let mut engine = Engine::with_probe(cluster, probe);
    {
        // Split borrows: prime needs the world and the queue.
        let engine = &mut engine;
        let mut queue = std::mem::take(engine.queue_mut());
        engine.world_mut().prime(&mut queue);
        *engine.queue_mut() = queue;
    }
    if obs.progress {
        run_with_heartbeat(&mut engine, total_requests);
    } else {
        engine.run();
    }
    let profile = engine.profile();
    let now = engine.now();
    let events = engine.processed();
    let (mut cluster, probe) = engine.into_parts();
    debug_assert!(cluster.drained(), "simulation ended with work outstanding");
    cluster.flush_tracer();
    cluster.flush_control(now);
    let timeseries = cluster.take_timeseries();
    let devices = cluster.take_device_report(now);
    let stats = cluster.stats(now, events);
    (
        RunOutput {
            stats,
            profile,
            timeseries,
            devices,
            perf: None,
            busy_ns: None,
        },
        probe,
    )
}

/// Runs one configuration on the sharded engine
/// ([`ShardedEngine`]): the world is partitioned into `shards` event
/// shards (clamped to the topology's pod count) driven in conservative
/// lookahead windows with cross-shard events routed through the
/// boundary mailbox. With `shards == 1` the result is byte-identical to
/// [`run`]; with more shards it is deterministic per seed but orders
/// same-window events differently.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`SimConfig::validate`]).
#[must_use]
pub fn run_sharded(cfg: SimConfig, shards: u32) -> RunStats {
    run_observed_sharded(cfg, shards, ObsOptions::default()).stats
}

/// [`run_sharded`] with observability attached; the sharded counterpart
/// of [`run_observed`]. With default options this is exactly
/// [`run_sharded`].
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`SimConfig::validate`]).
#[must_use]
pub fn run_observed_sharded(cfg: SimConfig, shards: u32, obs: ObsOptions) -> RunOutput {
    if obs.device_stats {
        run_observed_sharded_with(cfg, shards, obs, DeviceStatsRegistry::default())
    } else {
        run_observed_sharded_with(cfg, shards, obs, NoDeviceProbe)
    }
}

fn run_observed_sharded_with<D: DeviceProbe>(
    cfg: SimConfig,
    shards: u32,
    mut obs: ObsOptions,
    devices: D,
) -> RunOutput {
    match obs.perf.take() {
        Some(popt) => {
            let scheme = cfg.scheme;
            let seed = cfg.seed;
            let requests = cfg.requests;
            let alloc_before = alloc_mark();
            let probe = PerfProbe::new(perf::kind_names(), popt.stride);
            let (mut out, probe) = run_engine_sharded(cfg, shards, obs, devices, probe);
            out.perf = Some(host_profile(
                scheme,
                seed,
                requests,
                &out.profile,
                &probe.report(),
                alloc_since(alloc_before),
            ));
            out
        }
        None => run_engine_sharded(cfg, shards, obs, devices, NoProbe).0,
    }
}

fn run_engine_sharded<D: DeviceProbe, P: Probe>(
    cfg: SimConfig,
    shards: u32,
    obs: ObsOptions,
    devices: D,
    probe: P,
) -> (RunOutput, P) {
    let total_requests = cfg.requests;
    let mut cluster = Cluster::with_shards(cfg, shards, devices);
    if let Some(w) = obs.trace {
        cluster.set_tracer(w);
    }
    if let Some(spec) = obs.timeseries {
        cluster.enable_sampler(spec);
    }
    if obs.trace_hops {
        cluster.enable_hop_tracing();
    }
    if let Some(w) = obs.control {
        cluster.set_control(w);
    }
    let mut engine = ShardedEngine::with_probe(cluster, probe);
    engine.prime_with(|world, queue| world.prime(queue));
    if obs.progress {
        run_sharded_with_heartbeat(&mut engine, total_requests);
    } else {
        engine.run();
    }
    let profile = engine.profile();
    let now = engine.now();
    let events = engine.processed();
    let window_block = (engine.num_shards() > 1).then(|| ParallelStats {
        shards: engine.num_shards(),
        windows: engine.windows(),
        mailbox_posted: engine.mailbox_posted(),
        mailbox_late: engine.mailbox_late(),
    });
    let (mut cluster, probe) = engine.into_parts();
    debug_assert!(cluster.drained(), "simulation ended with work outstanding");
    cluster.flush_tracer();
    cluster.flush_control(now);
    let timeseries = cluster.take_timeseries();
    let devices = cluster.take_device_report(now);
    let mut stats = cluster.stats(now, events);
    stats.parallel = window_block;
    (
        RunOutput {
            stats,
            profile,
            timeseries,
            devices,
            perf: None,
            busy_ns: None,
        },
        probe,
    )
}

/// Options for truly parallel sharded execution
/// ([`run_observed_sharded_parallel`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelOptions {
    /// Worker threads draining shards concurrently (clamped to the shard
    /// count; 1 executes the identical schedule on the calling thread).
    pub threads: usize,
    /// Conservative-window width in link latencies (default 1, the
    /// provably safe lookahead; wider windows mean fewer barriers but
    /// may clamp late cross-shard events, counted as `mailbox_late`).
    pub lookahead_mult: u32,
}

impl Default for ParallelOptions {
    fn default() -> Self {
        ParallelOptions {
            threads: 1,
            lookahead_mult: 1,
        }
    }
}

/// [`run_sharded`] with a real worker pool: shards drain concurrently on
/// `threads` threads under the conservative-window protocol, and the
/// deterministic merge makes the output independent of the thread count.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`SimConfig::validate`]).
#[must_use]
pub fn run_sharded_parallel(cfg: SimConfig, shards: u32, threads: usize) -> RunStats {
    run_observed_sharded_parallel(
        cfg,
        shards,
        ParallelOptions {
            threads,
            ..ParallelOptions::default()
        },
        ObsOptions::default(),
    )
    .stats
}

/// Whether a run can execute as per-shard SPMD replicas: every flow must
/// stay shard-local (token-routed replies), which holds for the
/// client-side schemes without cross-cutting machinery. In-network
/// schemes mutate operator state across pods and fall back to the
/// sequential windowed engine (where the thread count is simply unused,
/// so thread-count byte-identity holds trivially).
fn replica_eligible(cfg: &SimConfig, obs: &ObsOptions) -> bool {
    !cfg.scheme.is_in_network()
        && cfg.faults.as_ref().is_none_or(|p| !p.is_active())
        && cfg.hot_cache.is_none()
        && !obs.device_stats
        && !obs.trace_hops
        && obs.timeseries.is_none()
        && obs.perf.is_none()
}

/// [`run_observed_sharded`] with a worker pool. Runs eligible
/// configurations on the replica engine ([`ParallelShardedEngine`]);
/// everything else — in-network schemes, fault plans, device/sampler/perf
/// instrumentation — falls back to the sequential windowed engine with
/// `par.threads` ignored. Either way the output is byte-identical across
/// thread counts.
///
/// # Panics
///
/// Panics if the configuration is invalid (see [`SimConfig::validate`]).
#[must_use]
pub fn run_observed_sharded_parallel(
    cfg: SimConfig,
    shards: u32,
    par: ParallelOptions,
    obs: ObsOptions,
) -> RunOutput {
    if shards <= 1 {
        // One shard is the sequential engine's domain (and pinned
        // byte-identical to it).
        return run_observed(cfg, obs);
    }
    if !replica_eligible(&cfg, &obs) {
        return run_observed_sharded(cfg, shards, obs);
    }
    // Placement is deterministic per config, so one throwaway replica
    // answers the coverage question for all of them.
    let probe: Cluster = Cluster::with_shards(cfg.clone(), shards, NoDeviceProbe);
    if !probe.replica_coverage_ok() {
        return run_observed_sharded(cfg, shards, obs);
    }
    drop(probe);
    run_replicated(cfg, shards, par, obs)
}

/// The replica-engine run: N SPMD [`Cluster`] replicas (one per shard)
/// under the barrier/merge window driver, then the deterministic fold of
/// per-replica results (counters, histograms, owned servers, buffered
/// trace lines) into replica 0.
fn run_replicated(
    cfg: SimConfig,
    shards: u32,
    par: ParallelOptions,
    mut obs: ObsOptions,
) -> RunOutput {
    let started = Instant::now();
    // Requests split across shards in proportion to their generator
    // counts (generators round-robin to shards; shards without a
    // generator issue nothing), remainders to the lowest shards.
    let quotas = replica_quotas(cfg.requests, cfg.generators, shards);
    let mut worlds: Vec<Cluster> = Vec::with_capacity(shards as usize);
    for r in 0..shards {
        let mut cl: Cluster = Cluster::with_shards(cfg.clone(), shards, NoDeviceProbe);
        cl.enable_replica(r, quotas[r as usize], par.lookahead_mult);
        if obs.trace.is_some() {
            cl.buffer_trace();
        }
        worlds.push(cl);
    }
    if let Some(w) = obs.control.take() {
        // Eligible runs emit no mid-run control records; the end-of-run
        // flush happens on replica 0 after the merge.
        worlds[0].set_control(w);
    }
    let mut engine = ParallelShardedEngine::new(worlds, par.threads);
    engine.prime_each(|_, world, queue| world.prime(queue));
    engine.run();
    let wstats = engine.stats();
    let busy = engine.busy_ns();
    let now = engine.now();
    let threads = engine.threads();
    let mut rest = engine.into_worlds();
    let mut first = rest.remove(0);
    debug_assert!(
        first.drained() && rest.iter().all(Cluster::drained),
        "replica ended with work outstanding"
    );
    if let Some(mut sink) = obs.trace.take() {
        use std::io::Write as _;
        // Canonical trace order: (receive time, shard), with each
        // shard's own processing order preserved by the stable sort —
        // the same total order however many threads drained the shards.
        let mut lines: Vec<(u64, u32, String)> = first
            .take_trace_buf()
            .into_iter()
            .map(|(t, l)| (t, 0, l))
            .collect();
        for (i, w) in rest.iter_mut().enumerate() {
            lines.extend(
                w.take_trace_buf()
                    .into_iter()
                    .map(|(t, l)| (t, i as u32 + 1, l)),
            );
        }
        lines.sort_by_key(|l| (l.0, l.1));
        for (_, _, l) in &lines {
            let _ = writeln!(sink, "{l}");
        }
        let _ = sink.flush();
    }
    for other in rest.iter_mut() {
        first.absorb_replica(other);
    }
    first.flush_control(now);
    let events = wstats.processed;
    let mut stats = first.stats(now, events);
    stats.parallel = Some(ParallelStats {
        shards,
        windows: wstats.windows,
        mailbox_posted: wstats.mailbox_posted,
        mailbox_late: wstats.mailbox_late,
    });
    if obs.progress {
        // The end-of-run heartbeat: the intra-run parallelism diagnosis
        // (windows, batch size, late posts, busy-time imbalance).
        let busy_max = busy.iter().copied().max().unwrap_or(0) as f64;
        let busy_mean = busy.iter().copied().sum::<u64>() as f64 / busy.len().max(1) as f64;
        let imbalance = if busy_mean > 0.0 {
            busy_max / busy_mean
        } else {
            0.0
        };
        let wall = started.elapsed().as_secs_f64();
        eprintln!(
            "[simulate] parallel run: {} shards × {} threads · {} events in {:.2}s \
             ({:.0}/s) · {} windows ({:.1} events/window) · {} mailbox posts / {} late · \
             busy imbalance {:.2}× · peak RSS {} kB",
            shards,
            threads,
            events,
            wall,
            events as f64 / wall.max(1e-9),
            wstats.windows,
            wstats.events_per_window(),
            wstats.mailbox_posted,
            wstats.mailbox_late,
            imbalance,
            netrs_simcore::peak_rss_kb(),
        );
    }
    let profile = EngineProfile::capture(events, 0, 0, 0, started);
    RunOutput {
        stats,
        profile,
        timeseries: None,
        devices: None,
        perf: None,
        busy_ns: Some(busy),
    }
}

/// Splits `requests` across `shards` in proportion to each shard's
/// generator count, distributing the remainder to the lowest generator-
/// bearing shards so the quotas sum exactly to `requests`.
fn replica_quotas(requests: u64, generators: u32, shards: u32) -> Vec<u64> {
    let g_total = u64::from(generators);
    let gens_of = |r: u32| u64::from(generators / shards + u32::from(r < generators % shards));
    let mut quotas: Vec<u64> = (0..shards)
        .map(|r| requests * gens_of(r) / g_total)
        .collect();
    let mut rem = requests - quotas.iter().sum::<u64>();
    let mut r = 0usize;
    while rem > 0 {
        if gens_of(r as u32) > 0 {
            quotas[r] += 1;
            rem -= 1;
        }
        r = (r + 1) % shards as usize;
    }
    quotas
}

/// Drains the sharded engine window by window while printing a
/// once-per-second progress line to stderr (the sharded counterpart of
/// [`run_with_heartbeat`]; granularity is one lookahead window).
fn run_sharded_with_heartbeat<D: DeviceProbe, P: Probe>(
    engine: &mut ShardedEngine<Cluster<D>, P>,
    total_requests: u64,
) {
    let start = Instant::now();
    let mut last_beat = Instant::now();
    while engine.advance_window() {
        if last_beat.elapsed() >= Duration::from_secs(1) {
            last_beat = Instant::now();
            let rate = engine.processed() as f64 / start.elapsed().as_secs_f64().max(1e-9);
            eprintln!(
                "[simulate] issued {}/{} · completed {} · sim {} · {} events ({:.0}/s) · \
                 {} shards · {} windows ({} mailbox posts / {} late) · peak RSS {} kB",
                engine.world().issued(),
                total_requests,
                engine.world().completed(),
                engine.now(),
                engine.processed(),
                rate,
                engine.num_shards(),
                engine.windows(),
                engine.mailbox_posted(),
                engine.mailbox_late(),
                netrs_simcore::peak_rss_kb(),
            );
        }
    }
}

/// Assembles the versioned run profile from the engine's
/// self-measurement and the perf probe's report.
fn host_profile(
    scheme: Scheme,
    seed: u64,
    requests: u64,
    profile: &EngineProfile,
    report: &PerfReport,
    alloc: Option<AllocStats>,
) -> HostProfile {
    HostProfile {
        label: scheme.label().into(),
        schema_version: PERF_SCHEMA_VERSION,
        scheme: scheme.label().into(),
        seed,
        requests,
        events: profile.events,
        wall_s: profile.wall_seconds,
        events_per_sec: profile.events_per_sec,
        peak_rss_kb: profile.peak_rss_kb,
        stride: u64::from(report.stride),
        attributed_ns: report.attributed_ns(),
        host: HostMeta::detect(),
        queue: QueueStats {
            pushes: profile.pushes,
            pops: profile.pops,
            high_water: profile.queue_high_water as u64,
            depth_hist: HostProfile::trim_depth_hist(&report.depth_hist),
        },
        alloc,
        parallel: None,
        kinds: HostProfile::kinds_from_report(report),
    }
}

#[cfg(feature = "alloc-profile")]
fn alloc_mark() -> netrs_allocprobe::AllocSnapshot {
    netrs_allocprobe::snapshot()
}

/// Allocation activity since `mark`, or `None` when the counting
/// allocator was never registered (all counters zero — a real process
/// always allocates at startup).
#[cfg(feature = "alloc-profile")]
fn alloc_since(mark: netrs_allocprobe::AllocSnapshot) -> Option<AllocStats> {
    let now = netrs_allocprobe::snapshot();
    if now.is_empty() {
        return None;
    }
    let delta = now.delta(&mark);
    Some(AllocStats {
        allocs: delta.allocs,
        deallocs: delta.deallocs,
        peak_bytes: delta.peak_bytes,
    })
}

#[cfg(not(feature = "alloc-profile"))]
struct AllocMark;

#[cfg(not(feature = "alloc-profile"))]
fn alloc_mark() -> AllocMark {
    AllocMark
}

#[cfg(not(feature = "alloc-profile"))]
fn alloc_since(_mark: AllocMark) -> Option<AllocStats> {
    None
}

/// Drains the engine while printing a once-per-second progress line to
/// stderr (issued/completed counts, sim time, wall-clock event rate,
/// queue churn and peak RSS).
fn run_with_heartbeat<D: DeviceProbe, P: Probe>(
    engine: &mut Engine<Cluster<D>, P>,
    total_requests: u64,
) {
    const CHUNK: u32 = 16_384;
    let start = Instant::now();
    let mut last_beat = Instant::now();
    loop {
        let mut exhausted = false;
        for _ in 0..CHUNK {
            if engine.step().is_none() {
                exhausted = true;
                break;
            }
        }
        if last_beat.elapsed() >= Duration::from_secs(1) {
            last_beat = Instant::now();
            let w = engine.world();
            let q = engine.queue();
            let rate = engine.processed() as f64 / start.elapsed().as_secs_f64().max(1e-9);
            eprintln!(
                "[simulate] issued {}/{} · completed {} · sim {} · {} events ({:.0}/s) · \
                 queue {} ({} pushes / {} pops) · peak RSS {} kB",
                w.issued(),
                total_requests,
                w.completed(),
                engine.now(),
                engine.processed(),
                rate,
                q.len(),
                q.pushes(),
                q.pops(),
                netrs_simcore::peak_rss_kb(),
            );
        }
        if exhausted {
            break;
        }
    }
}

/// Runs the same configuration under `seeds.len()` different seeds (the
/// paper repeats every experiment 3 times with different random
/// deployments), fanned across cores by the sweep executor
/// ([`crate::sweep::run_grid`]). Results come back in `seeds` order.
#[must_use]
pub fn run_seeds(cfg: &SimConfig, seeds: &[u64]) -> Vec<RunStats> {
    seed_grid(cfg, 1, seeds)
}

/// [`run_seeds`] on the sharded engine: the same per-seed fan-out with
/// every run partitioned into `shards` event shards.
#[must_use]
pub fn run_seeds_sharded(cfg: &SimConfig, shards: u32, seeds: &[u64]) -> Vec<RunStats> {
    seed_grid(cfg, shards, seeds)
}

fn seed_grid(cfg: &SimConfig, shards: u32, seeds: &[u64]) -> Vec<RunStats> {
    let jobs: Vec<crate::sweep::SweepJob> = seeds
        .iter()
        .map(|&seed| crate::sweep::SweepJob {
            label: cfg.scheme.label().into(),
            cfg: cfg.clone(),
            seed,
            shards,
        })
        .collect();
    crate::sweep::run_grid(&jobs, 0)
        .into_iter()
        .map(|cell| cell.stats)
        .collect()
}

/// Runs every scheme of the paper's comparison under the same base
/// configuration and seeds. Returns `(scheme, per-seed stats)` in the
/// paper's ordering.
#[must_use]
pub fn run_all_schemes(base: &SimConfig, seeds: &[u64]) -> Vec<(Scheme, Vec<RunStats>)> {
    Scheme::ALL
        .iter()
        .map(|&scheme| {
            let mut cfg = base.clone();
            cfg.scheme = scheme;
            (scheme, run_seeds(&cfg, seeds))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(scheme: Scheme) -> SimConfig {
        let mut cfg = SimConfig::small();
        cfg.requests = 2_000;
        cfg.scheme = scheme;
        cfg.seed = 7;
        cfg
    }

    #[test]
    fn clirs_run_completes_all_requests() {
        let stats = run(tiny(Scheme::CliRs));
        assert_eq!(stats.issued, 2_000);
        assert_eq!(stats.completed, 2_000);
        assert!(stats.latency.count > 0);
        assert!(stats.latency.mean > netrs_simcore::SimDuration::ZERO);
        assert_eq!(stats.rsnode_count, 0);
        assert_eq!(stats.duplicates, 0);
    }

    #[test]
    fn netrs_tor_run_completes_with_rsnodes() {
        let stats = run(tiny(Scheme::NetRsToR));
        assert_eq!(stats.completed, 2_000);
        assert!(stats.rsnode_count > 0);
        assert_eq!(
            stats.rsnode_census[2], stats.rsnode_count,
            "NetRS-ToR places every RSNode on a ToR: {:?}",
            stats.rsnode_census
        );
        assert!(stats.mean_accel_utilization > 0.0);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run(tiny(Scheme::NetRsIlp));
        let b = run(tiny(Scheme::NetRsIlp));
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.events, b.events);
        let mut other = tiny(Scheme::NetRsIlp);
        other.seed = 8;
        let c = run(other);
        assert_ne!(a.latency, c.latency, "different seeds should differ");
    }

    #[test]
    fn run_seeds_parallel_matches_sequential_runs() {
        // Thread scheduling must not leak into results: each seed's run
        // is self-contained, so the parallel fan-out serializes to the
        // same bytes as running the seeds one after another.
        let cfg = tiny(Scheme::NetRsToR);
        let seeds = [11u64, 12, 13];
        let parallel = run_seeds(&cfg, &seeds);
        for (&seed, p) in seeds.iter().zip(&parallel) {
            let mut one = cfg.clone();
            one.seed = seed;
            let s = run(one);
            assert_eq!(
                serde_json::to_string_pretty(p).expect("stats serialize"),
                serde_json::to_string_pretty(&s).expect("stats serialize"),
                "seed {seed}: parallel and sequential runs diverged"
            );
        }
    }

    #[test]
    fn perf_profile_counts_sum_to_total_events() {
        let obs = ObsOptions {
            perf: Some(crate::obs::PerfOptions::default()),
            ..ObsOptions::default()
        };
        let out = run_observed(tiny(Scheme::NetRsToR), obs);
        let perf = out.perf.expect("perf requested");
        assert_eq!(perf.events, out.stats.events);
        assert_eq!(perf.kind_count_sum(), out.stats.events);
        assert_eq!(perf.queue.pops, out.stats.events);
        assert!(perf.queue.pushes >= perf.queue.pops);
        assert_eq!(perf.schema_version, PERF_SCHEMA_VERSION);
        // The profiler observes; it must not perturb the simulation.
        let plain = run(tiny(Scheme::NetRsToR));
        assert_eq!(out.stats.latency, plain.latency);
        assert_eq!(out.stats.events, plain.events);
    }

    #[test]
    fn run_seeds_spawns_one_run_per_seed() {
        let runs = run_seeds(&tiny(Scheme::CliRs), &[1, 2, 3]);
        assert_eq!(runs.len(), 3);
        assert!(runs.iter().all(|r| r.completed == 2_000));
        let means: std::collections::HashSet<u64> =
            runs.iter().map(|r| r.latency.mean.as_nanos()).collect();
        assert!(means.len() > 1, "seeds should differ");
    }
}
