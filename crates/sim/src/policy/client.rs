//! Client-side replica selection: the CliRS and CliRS-R95 baselines.
//!
//! Every client runs its own selector instance (its partial, possibly
//! stale view of server state — the situation §II argues against) and,
//! optionally, a cubic rate controller. CliRS-R95 adds the
//! redundant-request mitigation: if a response is slower than the
//! client's observed 95th percentile, a duplicate goes to the next-best
//! replica.

use netrs_kvstore::ServerId;
use netrs_selection::{CubicRateController, Feedback, ReplicaSelector};
use netrs_simcore::{
    DeviceCounter, DeviceId, DeviceProbe, EventQueue, SimDuration, SimRng, SimTime,
};

use crate::cluster::{Ev, ReqId};
use crate::fabric::HopSink;
use crate::server::ServerToken;
use crate::state::{flow_hash, Core, REQ_BYTES};

use super::{ReplyInfo, SchemePolicy};

/// CliRS: per-client selectors (and optional cubic rate control), no
/// in-network state.
pub(crate) struct CliRsPolicy {
    /// One selector per client, forked from the root RNG at
    /// `10_000 + client`.
    selectors: Vec<Box<dyn ReplicaSelector + Send>>,
    rates: Vec<Option<CubicRateController>>,
}

impl CliRsPolicy {
    pub(crate) fn new<D: DeviceProbe>(core: &Core<D>, root: &SimRng) -> Self {
        let cfg = &core.cfg;
        // Each client's C3 concurrency estimate is the client count: all
        // clients contend for the same servers.
        let concurrency = f64::from(cfg.clients).max(1.0);
        let selectors = (0..cfg.clients)
            .map(|idx| {
                cfg.selector.build_with_concurrency(
                    cfg.c3,
                    concurrency,
                    root.fork(10_000 + u64::from(idx)),
                )
            })
            .collect();
        let rates = (0..cfg.clients)
            .map(|_| cfg.rate_control.map(CubicRateController::new))
            .collect();
        CliRsPolicy { selectors, rates }
    }

    /// Selects the primary replica and dispatches the first copy.
    fn select_and_send<D: DeviceProbe>(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        replicas: &[ServerId],
        queue: &mut EventQueue<Ev>,
    ) {
        let state = core.requests.get_mut(req.0).expect("request just created");
        let target = self.selectors[state.client as usize].select(replicas, now);
        state.primary = Some(target);
        self.dispatch_copy(core, now, req, target, queue);
    }

    /// Sends one request copy from the client toward `server`, honouring
    /// the optional cubic rate controller.
    fn dispatch_copy<D: DeviceProbe>(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        server: ServerId,
        queue: &mut EventQueue<Ev>,
    ) {
        let Some(state) = core.requests.get_mut(req.0) else {
            return;
        };
        let client_idx = state.client as usize;
        let gated = if let Some(ctl) = self.rates[client_idx].as_mut() {
            if ctl.try_send(server, now) {
                None
            } else {
                Some(ctl.next_permit_at(server, now))
            }
        } else {
            None
        };
        if let Some(permit_at) = gated {
            // Hold the request at the client until a send token accrues.
            core.fabric
                .devices
                .bump(DeviceId::Client(client_idx as u32), DeviceCounter::Clamp, 1);
            let at = permit_at.max(now + SimDuration::from_nanos(1));
            queue.schedule_at(at, Ev::GatedSend { req, server });
            return;
        }
        state.copies += 1;
        let issued_at = state.sent_at;
        let rgid = state.rgid;
        self.selectors[client_idx].on_send(server, now);
        // Client-side selection has no steering hop: the interval from
        // issue to departure (rate gating, duplicate timers) is the
        // "selection" phase of the breakdown.
        let token = ServerToken::new(
            req,
            server,
            client_idx as u32,
            rgid,
            false,
            issued_at,
            issued_at,
            SimDuration::ZERO,
            now,
            None,
        );
        let hash = flow_hash(req, u64::from(server.0));
        let client_host = core.clients[client_idx].host;
        let Some(latency) =
            core.fabric
                .try_host_to_host(client_host, core.server_hosts[server.0 as usize], hash)
        else {
            core.drop_copy(req.0); // partitioned by link faults
            return;
        };
        queue.schedule_after(latency, Ev::ServerArrive { token });
        if core.fabric.observing() {
            let sink = HopSink::Copy(req.0, server.0);
            // The copy sat at the client from issue to departure.
            core.fabric.push_residency_hop(
                sink,
                DeviceId::Client(client_idx as u32),
                issued_at,
                now,
            );
            core.fabric.observe_host_to_host(
                now,
                client_host,
                core.server_hosts[server.0 as usize],
                hash,
                sink,
                REQ_BYTES,
            );
        }
    }

    /// Lets the issuing client's selector penalize the replica whose
    /// answer never came (fault runs only).
    fn note_timeout<D: DeviceProbe>(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        primary: Option<ServerId>,
    ) {
        let Some(state) = core.requests.get(req.0) else {
            return;
        };
        if let Some(server) = primary {
            self.selectors[state.client as usize].on_timeout(server, now);
        }
    }

    /// Feeds one received copy back into the issuing client's selector
    /// and rate controller (CliRS schemes observe every copy's response).
    fn feed_back(&mut self, now: SimTime, info: &ReplyInfo) {
        let idx = info.client as usize;
        let copy_latency = now - info.token.copy_sent_at;
        self.selectors[idx].on_response(
            &Feedback {
                server: info.token.server,
                queue_len: info.status.queue_len,
                service_time: info.status.service_time(),
                latency: copy_latency,
            },
            now,
        );
        if let Some(ctl) = self.rates[idx].as_mut() {
            ctl.on_response(info.token.server, now);
        }
    }
}

impl<D: DeviceProbe> SchemePolicy<D> for CliRsPolicy {
    fn steer_read(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        replicas: &[ServerId],
        queue: &mut EventQueue<Ev>,
    ) {
        self.select_and_send(core, now, req, replicas, queue);
    }

    fn on_gated_send(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        server: ServerId,
        queue: &mut EventQueue<Ev>,
    ) {
        self.dispatch_copy(core, now, req, server, queue);
    }

    fn on_reply(&mut self, _core: &mut Core<D>, now: SimTime, info: &ReplyInfo) {
        self.feed_back(now, info);
    }

    fn on_request_timeout(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        primary: Option<ServerId>,
    ) {
        self.note_timeout(core, now, req, primary);
    }
}

/// CliRS-R95: CliRS plus the paper's redundant-request baseline — a
/// duplicate to the next-best replica whenever a request outlives the
/// client's observed 95th-percentile latency.
pub(crate) struct CliRsR95Policy {
    inner: CliRsPolicy,
}

impl CliRsR95Policy {
    pub(crate) fn new<D: DeviceProbe>(core: &Core<D>, root: &SimRng) -> Self {
        CliRsR95Policy {
            inner: CliRsPolicy::new(core, root),
        }
    }
}

impl<D: DeviceProbe> SchemePolicy<D> for CliRsR95Policy {
    fn steer_read(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        replicas: &[ServerId],
        queue: &mut EventQueue<Ev>,
    ) {
        self.inner.select_and_send(core, now, req, replicas, queue);
        // Arm the duplicate timer once the client has a usable quantile
        // estimate.
        let state = core.requests.get(req.0).expect("request still in flight");
        let client = &core.clients[state.client as usize];
        if client.hist.count() >= core.cfg.r95.min_samples {
            let deadline = client.hist.value_at_quantile(core.cfg.r95.quantile);
            queue.schedule_after(deadline, Ev::R95Check { req });
        }
    }

    fn on_gated_send(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        server: ServerId,
        queue: &mut EventQueue<Ev>,
    ) {
        self.inner.dispatch_copy(core, now, req, server, queue);
    }

    fn on_r95_check(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        queue: &mut EventQueue<Ev>,
    ) {
        let Some(state) = core.requests.get_mut(req.0) else {
            return; // long since completed and cleaned up
        };
        if state.completed || state.dup_sent {
            return;
        }
        state.dup_sent = true;
        let rgid = state.rgid;
        let primary = state.primary;
        let client_idx = state.client as usize;
        let replicas = core.ring.groups().replicas(rgid).to_vec();
        let ranked = self.inner.selectors[client_idx].rank(&replicas, now);
        let Some(dup) = ranked.into_iter().find(|&s| Some(s) != primary) else {
            return; // replication factor 1: nowhere else to go
        };
        core.duplicates += 1;
        self.inner.dispatch_copy(core, now, req, dup, queue);
    }

    fn on_reply(&mut self, _core: &mut Core<D>, now: SimTime, info: &ReplyInfo) {
        self.inner.feed_back(now, info);
    }

    fn on_request_timeout(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        primary: Option<ServerId>,
    ) {
        self.inner.note_timeout(core, now, req, primary);
    }
}
