//! The policy layer: per-scheme decision points behind one trait.
//!
//! [`SchemePolicy`] captures every place the four schemes of the paper's
//! comparison differ — how a read is steered to a replica, where
//! selection state lives, how feedback propagates back to selectors, and
//! the redundant-request / control-plane timers. The fabric and server
//! layers, and the [`Core`] state they share, are scheme-blind: they call
//! into the policy object at these decision points and nowhere else
//! branch on the configured scheme.
//!
//! Adding a scheme means adding one implementation here and one arm to
//! [`build`]; see DESIGN.md for the walkthrough.

mod client;
mod netrs;

use ::netrs::Rsp;
use netrs_kvstore::{ServerId, ServerStatus};
use netrs_selection::Feedback;
use netrs_simcore::{DeviceProbe, EventQueue, SimDuration, SimRng, SimTime};
use netrs_topology::{FatTree, SwitchId};

use crate::cluster::{Ev, ReqId};
use crate::config::Scheme;
use crate::server::ServerToken;
use crate::state::Core;

pub(crate) use self::client::{CliRsPolicy, CliRsR95Policy};
pub(crate) use self::netrs::{NetRsIlpPolicy, NetRsToRPolicy};

/// Error returned by operator-fault hooks on schemes with no in-network
/// operators (CliRS, CliRS-R95).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotInNetwork;

impl std::fmt::Display for NotInNetwork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scheme has no in-network operators")
    }
}

impl std::error::Error for NotInNetwork {}

/// Scheme-owned contributions to [`crate::stats::RunStats`], all zero for
/// schemes without in-network state.
#[derive(Debug, Default)]
pub(crate) struct ControlStats {
    pub(crate) rsnode_census: [usize; 3],
    pub(crate) drs_groups: usize,
    pub(crate) mean_accel_utilization: f64,
    pub(crate) max_accel_utilization: f64,
    pub(crate) mean_selection_wait: SimDuration,
    /// Hot-key-cache counters summed over every operator that ever held
    /// a cache (live and retired); `None` when no cache was configured.
    pub(crate) cache: Option<netrs_netdev::CacheStats>,
}

/// Context of one received (non-write) response copy, handed to
/// [`SchemePolicy::on_reply`] after [`Core::receive_reply`] has done the
/// scheme-independent accounting.
pub(crate) struct ReplyInfo {
    pub(crate) token: ServerToken,
    pub(crate) status: ServerStatus,
    /// Index of the issuing client.
    pub(crate) client: u32,
    /// The request's replication group.
    pub(crate) rgid: u32,
    /// Whether this copy completed the logical request.
    pub(crate) first_completion: bool,
}

/// One scheme's decision points.
///
/// Required: [`steer_read`](SchemePolicy::steer_read) (every scheme must
/// move a read toward a replica). The event hooks default to
/// `unreachable!` because each is only ever scheduled by the policy that
/// handles it; the query hooks default to the client-scheme answer
/// (no plan, no operators, zero control stats).
pub(crate) trait SchemePolicy<D: DeviceProbe>: Send {
    /// Schedules the scheme's control-plane timers (re-plan, overload)
    /// during [`crate::Cluster::prime`]. Runs after the workload
    /// generators and server timers, before the sampler.
    fn prime(&mut self, core: &mut Core<D>, queue: &mut EventQueue<Ev>) {
        let _ = (core, queue);
    }

    /// Steers a freshly issued read toward a replica: client-side
    /// selection or in-network forwarding.
    fn steer_read(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        replicas: &[ServerId],
        queue: &mut EventQueue<Ev>,
    );

    /// A rate-gated client send retries ([`Ev::GatedSend`]).
    fn on_gated_send(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        server: ServerId,
        queue: &mut EventQueue<Ev>,
    ) {
        let _ = (core, now, req, server, queue);
        unreachable!("GatedSend is only scheduled by client policies");
    }

    /// A request reaches its RSNode's switch ([`Ev::RsnodeArrive`]).
    fn on_rsnode_arrive(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        op: SwitchId,
        queue: &mut EventQueue<Ev>,
    ) {
        let _ = (core, now, req, op, queue);
        unreachable!("RsnodeArrive is only scheduled by in-network policies");
    }

    /// The accelerator finishes a replica selection ([`Ev::Select`]).
    #[allow(clippy::too_many_arguments)]
    fn on_select(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        op: SwitchId,
        arrived: SimTime,
        waited: SimDuration,
        queue: &mut EventQueue<Ev>,
    ) {
        let _ = (core, now, req, op, arrived, waited, queue);
        unreachable!("Select is only scheduled by in-network policies");
    }

    /// An accelerator finishes folding a cloned response into its
    /// selector ([`Ev::SelectorUpdate`]).
    fn on_selector_update(&mut self, now: SimTime, op: SwitchId, fb: Feedback) {
        let _ = (now, op, fb);
        unreachable!("SelectorUpdate is only scheduled by in-network policies");
    }

    /// A write was issued and fanned out to its replica group
    /// ([`Ev::Generate`] tail). In-network schemes with a hot-key cache
    /// emit coherence messages toward their operators here; client
    /// schemes (no cache on the write path) do nothing.
    fn on_write_issued(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        key: u64,
        queue: &mut EventQueue<Ev>,
    ) {
        let _ = (core, now, req, key, queue);
    }

    /// A write's coherence message reaches an operator's hot-key cache
    /// ([`Ev::CacheInvalidate`]).
    fn on_cache_invalidate(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        op: SwitchId,
        key: u64,
        version: u64,
    ) {
        let _ = (core, now, op, key, version);
        unreachable!("CacheInvalidate is only scheduled by in-network policies");
    }

    /// Emits end-of-run per-operator cache records to the control sink
    /// (no-op for schemes without caches, and when no sink is attached).
    fn audit_caches(&mut self, core: &mut Core<D>, now: SimTime) {
        let _ = (core, now);
    }

    /// The CliRS-R95 duplicate timer fires ([`Ev::R95Check`]).
    fn on_r95_check(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        queue: &mut EventQueue<Ev>,
    ) {
        let _ = (core, now, req, queue);
        unreachable!("R95Check is only scheduled by the CliRS-R95 policy");
    }

    /// The controller checks operator utilization ([`Ev::OverloadCheck`]).
    fn on_overload_check(&mut self, core: &mut Core<D>, now: SimTime, queue: &mut EventQueue<Ev>) {
        let _ = (core, now, queue);
        unreachable!("OverloadCheck is only scheduled by in-network policies");
    }

    /// The controller re-plans from monitor statistics ([`Ev::Replan`]).
    fn on_replan(&mut self, core: &mut Core<D>, now: SimTime, queue: &mut EventQueue<Ev>) {
        let _ = (core, now, queue);
        unreachable!("Replan is only scheduled by the NetRS-ILP policy");
    }

    /// Routes a finished copy's response back to the client (the
    /// in-network schemes detour reads through their RSNode).
    fn route_reply(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        token: ServerToken,
        status: ServerStatus,
        queue: &mut EventQueue<Ev>,
    ) {
        core.send_reply_direct(now, token, status, queue);
    }

    /// Feedback when a response copy reaches the client: selector /
    /// rate-controller updates (client schemes) or ToR monitor counting
    /// (in-network schemes).
    fn on_reply(&mut self, core: &mut Core<D>, now: SimTime, info: &ReplyInfo) {
        let _ = (core, now, info);
    }

    /// The installed Replica Selection Plan, if the scheme has one.
    fn current_plan(&self) -> Option<&Rsp> {
        None
    }

    /// Injects a fail-stop operator fault (§III-C(iii)): degrade its
    /// traffic groups to DRS and redeploy. Returns the affected groups,
    /// or [`NotInNetwork`] for schemes without operators.
    fn fail_operator(&mut self, sw: SwitchId) -> Result<Vec<u32>, NotInNetwork> {
        let _ = sw;
        Err(NotInNetwork)
    }

    /// An operator fail-stops *silently* (fault plan `OperatorFail`):
    /// packets steered to it must blackhole until the controller detects
    /// the failure. Returns whether the scheme has detection to schedule.
    fn operator_crashed(&mut self, sw: SwitchId) -> bool {
        let _ = sw;
        false
    }

    /// A crashed operator comes back (fault plan `OperatorRecover`): the
    /// controller restores its traffic groups and reinstalls a fresh
    /// selector. Returns the restored groups (empty for client schemes
    /// and for operators that never failed).
    fn recover_operator(&mut self, core: &mut Core<D>, now: SimTime, sw: SwitchId) -> Vec<u32> {
        let _ = (core, now, sw);
        Vec::new()
    }

    /// A read's retry timer fired and the request is being re-steered
    /// (fault runs only): let client-side selectors penalize the replica
    /// that failed to answer.
    fn on_request_timeout(
        &mut self,
        core: &mut Core<D>,
        now: SimTime,
        req: ReqId,
        primary: Option<ServerId>,
    ) {
        let _ = (core, now, req, primary);
    }

    /// Census of operators by tier currently holding selector state.
    fn operator_tiers(&self, topo: &FatTree) -> [usize; 3] {
        let _ = topo;
        [0; 3]
    }

    /// Aggregate accelerator busy core-nanoseconds and accelerator count
    /// (live + retired), for the sampler's windowed utilization.
    fn accel_busy(&self) -> (u128, usize) {
        (0, 0)
    }

    /// Number of traffic groups currently degraded to DRS.
    fn drs_groups(&self) -> usize {
        0
    }

    /// The scheme's contribution to end-of-run statistics.
    fn control_stats(&self, now: SimTime, topo: &FatTree) -> ControlStats {
        let _ = (now, topo);
        ControlStats::default()
    }
}

/// Builds the policy object for the configured scheme. `root` is the same
/// seed-pure RNG root the [`Core`] forked its streams from; policies fork
/// their own selector streams from it.
pub(crate) fn build<D: DeviceProbe>(
    core: &Core<D>,
    root: &SimRng,
) -> Box<dyn SchemePolicy<D> + Send> {
    match core.cfg.scheme {
        Scheme::CliRs => Box::new(CliRsPolicy::new(core, root)),
        Scheme::CliRsR95 => Box::new(CliRsR95Policy::new(core, root)),
        Scheme::NetRsToR => Box::new(NetRsToRPolicy::new(core, root)),
        Scheme::NetRsIlp => Box::new(NetRsIlpPolicy::new(core, root)),
    }
}
